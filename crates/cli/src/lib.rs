//! The `iotscope` operator CLI, as a library so commands are testable.
//!
//! Workflow mirrors the paper's operational vision (§VI): produce (or
//! receive) a data directory holding an IoT inventory plus hourly
//! flowtuple files, then run the analyses over it:
//!
//! ```text
//! iotscope simulate --out data/ --tiny          # inventory + 143 hourly files
//! iotscope analyze  --data data/ --intel        # every table & figure
//! iotscope watch    --data data/                # streaming alerts
//! iotscope investigate --data data/ --intel     # §VI/§VII follow-ups
//! ```
//!
//! A data directory contains `inventory.tsv` (see
//! [`iotscope_devicedb::inventory_io`]) and `darknet/` (an
//! [`iotscope_net::store::FlowStore`]).

#![forbid(unsafe_code)]

pub mod commands;

use std::error::Error;
use std::fmt;

/// CLI-level errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Anything that went wrong while executing.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(s) => write!(f, "usage error: {s}"),
            CliError::Run(s) => write!(f, "{s}"),
        }
    }
}

impl Error for CliError {}

impl From<iotscope_net::NetError> for CliError {
    fn from(e: iotscope_net::NetError) -> Self {
        CliError::Run(format!("store error: {e}"))
    }
}

impl From<iotscope_devicedb::inventory_io::InventoryIoError> for CliError {
    fn from(e: iotscope_devicedb::inventory_io::InventoryIoError) -> Self {
        CliError::Run(format!("inventory error: {e}"))
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Run(format!("i/o error: {e}"))
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
iotscope — darknet-based IoT threat analysis (Torabi et al., DSN 2018)

USAGE:
    iotscope simulate --out DIR [--seed N] [--scale F] [--tiny]
    iotscope analyze --data DIR [--intel] [--threads N] [--stats]
    iotscope watch --data DIR
    iotscope investigate --data DIR [--intel]
    iotscope export --data DIR --out DIR [--key K]
    iotscope diff --baseline DIR --data DIR
    iotscope validate --data DIR

COMMANDS:
    simulate     build a synthetic inventory + 143 hours of telescope
                 traffic into DIR (inventory.tsv + darknet/)
    analyze      run the full pipeline over DIR and print every table
                 and figure of the paper (--intel adds Section V;
                 --threads N sizes the store reader pool, --stats
                 appends per-stage read/decode/ingest accounting)
    watch        replay DIR hour-by-hour through the near-real-time
                 analyzer, printing alerts
    investigate  run the follow-up analyses over DIR: fingerprint
                 unindexed IoT devices and cluster botnets (--intel adds
                 malware attribution)
    validate     check the pipeline's inference against the simulator's
                 ground-truth ledger (truth.tsv) in DIR
    diff         compare two data directories (e.g. yesterday vs today):
                 appeared/disappeared devices, new victims and scanners,
                 per-class packet drift
    export       write a shareable copy of DIR's darknet traffic with
                 prefix-preserving address anonymization (Crypto-PAn
                 style), for the paper's §VI data-sharing vision
";

/// Run the CLI on the given arguments (without the program name).
/// Returns the text to print on success.
///
/// # Errors
///
/// [`CliError::Usage`] for bad invocations, [`CliError::Run`] otherwise.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".to_owned()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "simulate" => commands::simulate(rest),
        "analyze" => commands::analyze(rest),
        "watch" => commands::watch(rest),
        "investigate" => commands::investigate(rest),
        "export" => commands::export(rest),
        "diff" => commands::diff(rest),
        "validate" => commands::validate(rest),
        "--help" | "-h" | "help" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Parse `--flag value` style options; returns (map, bare flags).
pub(crate) fn parse_opts(
    args: &[String],
    value_flags: &[&str],
    bool_flags: &[&str],
) -> Result<std::collections::BTreeMap<String, String>, CliError> {
    let mut out = std::collections::BTreeMap::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if bool_flags.contains(&a.as_str()) {
            out.insert(a.clone(), "true".to_owned());
        } else if value_flags.contains(&a.as_str()) {
            let v = it
                .next()
                .ok_or_else(|| CliError::Usage(format!("{a} needs a value")))?;
            out.insert(a.clone(), v.clone());
        } else {
            return Err(CliError::Usage(format!("unknown option {a:?}")));
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&["help".to_owned()]).unwrap().contains("simulate"));
        assert!(matches!(
            run(&["frobnicate".to_owned()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    #[test]
    fn parse_opts_value_and_bool() {
        let args: Vec<String> = ["--out", "dir", "--tiny"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let opts = parse_opts(&args, &["--out"], &["--tiny"]).unwrap();
        assert_eq!(opts["--out"], "dir");
        assert_eq!(opts["--tiny"], "true");
        assert!(parse_opts(&args, &["--out"], &[]).is_err()); // --tiny unknown
        let dangling: Vec<String> = ["--out".to_owned()].to_vec();
        assert!(parse_opts(&dangling, &["--out"], &[]).is_err());
    }
}
