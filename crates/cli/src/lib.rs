//! The `iotscope` operator CLI, as a library so commands are testable.
//!
//! Workflow mirrors the paper's operational vision (§VI): produce (or
//! receive) a data directory holding an IoT inventory plus hourly
//! flowtuple files, then run the analyses over it:
//!
//! ```text
//! iotscope simulate --out data/ --tiny          # inventory + 143 hourly files
//! iotscope analyze  --data data/ --intel        # every table & figure
//! iotscope watch    --data data/                # streaming alerts
//! iotscope investigate --data data/ --intel     # §VI/§VII follow-ups
//! ```
//!
//! A data directory contains `inventory.tsv` (see
//! [`iotscope_devicedb::inventory_io`]) and `darknet/` (an
//! [`iotscope_net::store::FlowStore`]).

#![forbid(unsafe_code)]

pub mod commands;

use std::error::Error;
use std::fmt;

/// CLI-level errors.
#[derive(Debug)]
#[non_exhaustive]
pub enum CliError {
    /// Bad command line.
    Usage(String),
    /// Anything that went wrong while executing.
    Run(String),
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Usage(s) => write!(f, "usage error: {s}"),
            CliError::Run(s) => write!(f, "{s}"),
        }
    }
}

impl Error for CliError {}

impl From<iotscope_net::NetError> for CliError {
    fn from(e: iotscope_net::NetError) -> Self {
        CliError::Run(format!("store error: {e}"))
    }
}

impl From<iotscope_devicedb::inventory_io::InventoryIoError> for CliError {
    fn from(e: iotscope_devicedb::inventory_io::InventoryIoError) -> Self {
        CliError::Run(format!("inventory error: {e}"))
    }
}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError::Run(format!("i/o error: {e}"))
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
iotscope — darknet-based IoT threat analysis (Torabi et al., DSN 2018)

USAGE:
    iotscope simulate --out DIR [--seed N] [--scale F] [--tiny] [--format v2|v3] [--metrics[=FMT]]
    iotscope analyze --data DIR [--intel] [--threads N] [--stats] [--metrics[=FMT]]
    iotscope watch --data DIR [--intel] [--metrics[=FMT]]
    iotscope serve --data DIR [--port N] [--once] [--intel] [--metrics[=FMT]]
    iotscope investigate --data DIR [--intel] [--threads N]
    iotscope migrate --data DIR (--format v2|v3 | --segmented [--hours-per-segment N])
    iotscope export --data DIR --out DIR [--key K]
    iotscope diff --baseline DIR --data DIR [--threads N]
    iotscope validate --data DIR [--threads N]

COMMANDS:
    simulate     build a synthetic inventory + 143 hours of telescope
                 traffic into DIR (inventory.tsv + darknet/)
    analyze      run the full pipeline over DIR and print every table
                 and figure of the paper (--intel adds Section V;
                 --threads N sizes the store reader pool, --stats
                 appends per-stage read/decode/ingest accounting;
                 --store is accepted as an alias for --data)
    watch        replay DIR hour-by-hour through the near-real-time
                 analyzer, streaming alerts as they fire (--intel adds
                 the incremental threat-intel score stage and its
                 severity-escalation alerts)
    serve        run the resident daemon: ingest DIR's hours while
                 serving concurrent queries over HTTP/JSON (summary,
                 device/{id}, realms, countries, isps, alerts,
                 score/top, score/{id}, metrics, healthz); --port 0
                 picks an ephemeral port, --once exits after ingest
                 instead of serving forever, --intel attaches the
                 threat-intel score stage behind the score endpoints
    investigate  run the follow-up analyses over DIR: fingerprint
                 unindexed IoT devices and cluster botnets (--intel adds
                 malware attribution)
    validate     check the pipeline's inference against the simulator's
                 ground-truth ledger (truth.tsv) in DIR
    migrate      rewrite DIR/darknet's hour files in another store format
                 (v2 row-encoded, or v3 block-indexed columnar — the
                 default for new files); reads auto-detect the format, so
                 this only standardizes a directory. --segmented instead
                 compacts the per-hour files into mmap-read year-scale
                 segments (darknet/segments/) behind a checksummed
                 manifest; analysis output is unchanged either way
    diff         compare two data directories (e.g. yesterday vs today):
                 appeared/disappeared devices, new victims and scanners,
                 per-class packet drift
    export       write a shareable copy of DIR's darknet traffic with
                 prefix-preserving address anonymization (Crypto-PAn
                 style), for the paper's §VI data-sharing vision

Flags take `--flag value` or `--flag=value`. `--metrics[=FMT]` appends
an observability snapshot to the output (FMT: text (default) or json).
";

/// Run the CLI on the given arguments (without the program name).
/// Returns the text to print on success.
///
/// Long-running commands (`watch`, `serve`) buffer here; the binary
/// uses [`run_to`] so their output streams live.
///
/// # Errors
///
/// [`CliError::Usage`] for bad invocations, [`CliError::Run`] otherwise.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".to_owned()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "simulate" => commands::simulate(rest),
        "analyze" => commands::analyze(rest),
        "watch" => commands::watch(rest),
        "serve" => {
            let mut buf = Vec::new();
            commands::serve(rest, &mut buf)?;
            Ok(String::from_utf8(buf).expect("serve output is utf-8"))
        }
        "investigate" => commands::investigate(rest),
        "migrate" => commands::migrate(rest),
        "export" => commands::export(rest),
        "diff" => commands::diff(rest),
        "validate" => commands::validate(rest),
        "--help" | "-h" | "help" => Ok(USAGE.to_owned()),
        other => Err(CliError::Usage(format!("unknown command {other:?}"))),
    }
}

/// Run the CLI writing output to `out` as it is produced. `watch` and
/// `serve` stream line by line (a daemon's alert log must be live, not
/// one buffered block at exit); every other command computes its full
/// output and writes it once, identical to [`run`].
///
/// # Errors
///
/// As [`run`]; additionally surfaces write failures on `out`.
pub fn run_to(args: &[String], out: &mut dyn std::io::Write) -> Result<(), CliError> {
    let Some(command) = args.first() else {
        return Err(CliError::Usage("missing command".to_owned()));
    };
    let rest = &args[1..];
    match command.as_str() {
        "watch" => commands::watch_to(rest, out),
        "serve" => commands::serve(rest, out),
        _ => {
            let output = run(args)?;
            writeln!(out, "{output}")?;
            Ok(())
        }
    }
}

/// Declarative flag parser shared by every command.
///
/// Supports `--flag value` and `--flag=value` for value flags, bare
/// `--flag` for booleans, and `--flag[=value]` for optional-value flags
/// (only the `=` form attaches a value; a bare occurrence maps to `""`).
/// Aliases rewrite alternative spellings to a canonical flag before
/// lookup, so commands only ever query the canonical name. Unknown
/// options are usage errors.
#[derive(Debug, Default)]
pub(crate) struct ArgParser {
    value_flags: Vec<&'static str>,
    bool_flags: Vec<&'static str>,
    optional_flags: Vec<&'static str>,
    aliases: Vec<(&'static str, &'static str)>,
}

impl ArgParser {
    pub(crate) fn new() -> Self {
        ArgParser::default()
    }

    /// A flag that requires a value (`--out DIR` or `--out=DIR`).
    pub(crate) fn value(mut self, flag: &'static str) -> Self {
        self.value_flags.push(flag);
        self
    }

    /// A bare boolean flag (`--tiny`).
    pub(crate) fn boolean(mut self, flag: &'static str) -> Self {
        self.bool_flags.push(flag);
        self
    }

    /// A flag whose value is optional (`--metrics` or `--metrics=json`).
    pub(crate) fn optional_value(mut self, flag: &'static str) -> Self {
        self.optional_flags.push(flag);
        self
    }

    /// Accept `from` as another spelling of `to` (e.g. `--store` for
    /// `--data`).
    pub(crate) fn alias(mut self, from: &'static str, to: &'static str) -> Self {
        self.aliases.push((from, to));
        self
    }

    /// The analysis trio, routed identically wherever an analysis runs:
    /// `--threads N`, `--stats`, `--metrics[=json|text]`.
    pub(crate) fn analysis_flags(self) -> Self {
        self.value("--threads")
            .boolean("--stats")
            .optional_value("--metrics")
    }

    /// Parse `args` against the declared flags.
    pub(crate) fn parse(&self, args: &[String]) -> Result<ParsedArgs, CliError> {
        let mut out = std::collections::BTreeMap::new();
        let mut it = args.iter();
        while let Some(raw) = it.next() {
            let (mut flag, inline) = match raw.split_once('=') {
                Some((f, v)) => (f, Some(v.to_owned())),
                None => (raw.as_str(), None),
            };
            if let Some((_, to)) = self.aliases.iter().find(|(from, _)| *from == flag) {
                flag = to;
            }
            if self.bool_flags.contains(&flag) {
                if inline.is_some() {
                    return Err(CliError::Usage(format!("{flag} takes no value")));
                }
                out.insert(flag.to_owned(), "true".to_owned());
            } else if self.optional_flags.contains(&flag) {
                out.insert(flag.to_owned(), inline.unwrap_or_default());
            } else if self.value_flags.contains(&flag) {
                let v = match inline {
                    Some(v) => v,
                    None => it
                        .next()
                        .cloned()
                        .ok_or_else(|| CliError::Usage(format!("{flag} needs a value")))?,
                };
                out.insert(flag.to_owned(), v);
            } else {
                return Err(CliError::Usage(format!("unknown option {raw:?}")));
            }
        }
        Ok(ParsedArgs(out))
    }
}

/// Parsed flags, queried by canonical flag name.
#[derive(Debug)]
pub(crate) struct ParsedArgs(std::collections::BTreeMap<String, String>);

impl ParsedArgs {
    /// The flag's value, if present (`""` for a bare optional-value
    /// flag).
    pub(crate) fn get(&self, flag: &str) -> Option<&str> {
        self.0.get(flag).map(String::as_str)
    }

    /// Whether the flag was given at all.
    pub(crate) fn has(&self, flag: &str) -> bool {
        self.0.contains_key(flag)
    }

    /// A required value flag, with a per-command usage message.
    pub(crate) fn require(&self, flag: &str, command: &str) -> Result<&str, CliError> {
        self.get(flag)
            .ok_or_else(|| CliError::Usage(format!("{command} requires {flag}")))
    }

    /// Parse the flag's value, or return `default` when absent.
    pub(crate) fn parse_or<T: std::str::FromStr>(
        &self,
        flag: &str,
        default: T,
    ) -> Result<T, CliError> {
        match self.get(flag) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| CliError::Usage(format!("bad value for {flag}: {v:?}"))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn help_and_unknown_command() {
        assert!(run(&["help".to_owned()]).unwrap().contains("simulate"));
        assert!(matches!(
            run(&["frobnicate".to_owned()]),
            Err(CliError::Usage(_))
        ));
        assert!(matches!(run(&[]), Err(CliError::Usage(_))));
    }

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn parser_value_and_bool_flags() {
        let p = ArgParser::new().value("--out").boolean("--tiny");
        let opts = p.parse(&args(&["--out", "dir", "--tiny"])).unwrap();
        assert_eq!(opts.get("--out"), Some("dir"));
        assert!(opts.has("--tiny"));
        // --tiny unknown when not declared.
        assert!(ArgParser::new()
            .value("--out")
            .parse(&args(&["--out", "dir", "--tiny"]))
            .is_err());
        // Dangling value flag.
        assert!(p.parse(&args(&["--out"])).is_err());
        // Bool flags reject inline values.
        assert!(p.parse(&args(&["--tiny=yes"])).is_err());
    }

    #[test]
    fn parser_equals_form_and_aliases() {
        let p = ArgParser::new().value("--data").alias("--store", "--data");
        let opts = p.parse(&args(&["--data=d1"])).unwrap();
        assert_eq!(opts.get("--data"), Some("d1"));
        let opts = p.parse(&args(&["--store", "d2"])).unwrap();
        assert_eq!(opts.get("--data"), Some("d2"));
        let opts = p.parse(&args(&["--store=d3"])).unwrap();
        assert_eq!(opts.get("--data"), Some("d3"));
    }

    #[test]
    fn parser_optional_value_flags() {
        let p = ArgParser::new().analysis_flags();
        let opts = p.parse(&args(&["--metrics"])).unwrap();
        assert_eq!(opts.get("--metrics"), Some(""));
        let opts = p
            .parse(&args(&["--metrics=json", "--threads", "4"]))
            .unwrap();
        assert_eq!(opts.get("--metrics"), Some("json"));
        assert_eq!(opts.parse_or("--threads", 1usize).unwrap(), 4);
        assert!(opts.parse_or::<usize>("--threads", 1).is_ok());
        let bad = p.parse(&args(&["--threads", "many"])).unwrap();
        assert!(bad.parse_or::<usize>("--threads", 1).is_err());
    }

    #[test]
    fn parsed_args_require_names_the_command() {
        let p = ArgParser::new().value("--out");
        let opts = p.parse(&[]).unwrap();
        let err = opts.require("--out", "simulate").unwrap_err();
        assert!(format!("{err}").contains("simulate requires --out"));
    }
}
