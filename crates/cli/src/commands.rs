//! CLI command implementations.

use crate::{ArgParser, CliError, ParsedArgs};
use iotscope_core::botnet::{self, BotnetConfig};
use iotscope_core::fingerprint::{candidate_iot_devices, FingerprintModel};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions, StoreReadStats};
use iotscope_core::query::{QueryApi, QueryContext};
use iotscope_core::report::{Report, ReportContext, ReportIntel};
use iotscope_core::stream::{Alert, StreamConfig};
use iotscope_core::{attribution, behavior};
use iotscope_devicedb::inventory_io::{self, LoadedInventory};
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_intel::IntelContext;
use iotscope_net::store::{FlowStore, StoreFormat, StoreOptions};
use iotscope_net::time::AnalysisWindow;
use iotscope_obs::{Registry, Snapshot};
use iotscope_serve::http::HttpServer;
use iotscope_serve::TelescopeService;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// The `--metrics[=json|text]` output format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum MetricsFormat {
    Text,
    Json,
}

/// Interpret `--metrics[=FMT]` the same way on every command: absent →
/// `None`, bare or `=text` → text, `=json` → JSON.
fn metrics_format(opts: &ParsedArgs) -> Result<Option<MetricsFormat>, CliError> {
    match opts.get("--metrics") {
        None => Ok(None),
        Some("" | "text") => Ok(Some(MetricsFormat::Text)),
        Some("json") => Ok(Some(MetricsFormat::Json)),
        Some(other) => Err(CliError::Usage(format!(
            "bad value for --metrics: {other:?} (expected json or text)"
        ))),
    }
}

/// Render the metrics section appended when `--metrics` was given.
fn render_metrics(snapshot: &Snapshot, format: MetricsFormat) -> String {
    match format {
        MetricsFormat::Text => format!("\n== metrics ==\n{}", snapshot.to_text()),
        MetricsFormat::Json => format!("\n{}\n", snapshot.to_json()),
    }
}

/// `iotscope simulate --out DIR [--seed N] [--scale F] [--tiny] [--format v2|v3] [--metrics[=FMT]]`
pub fn simulate(args: &[String]) -> Result<String, CliError> {
    let opts = ArgParser::new()
        .value("--out")
        .value("--seed")
        .value("--scale")
        .value("--format")
        .boolean("--tiny")
        .optional_value("--metrics")
        .parse(args)?;
    let out: PathBuf = opts.require("--out", "simulate")?.into();
    let seed: u64 = opts.parse_or("--seed", 42)?;
    let tiny = opts.has("--tiny");
    let scale: f64 = opts.parse_or("--scale", if tiny { 0.008 } else { 0.01 })?;
    let store_format: StoreFormat = opts.parse_or("--format", StoreFormat::default())?;
    let format = metrics_format(&opts)?;
    let registry = Registry::new();

    let config = if tiny {
        let mut c = PaperScenarioConfig::tiny(seed);
        c.scale = scale;
        c
    } else {
        PaperScenarioConfig::paper(seed, scale)
    };
    let built = PaperScenario::build(config);

    std::fs::create_dir_all(&out)?;
    let store = FlowStore::create(
        out.join("darknet"),
        StoreOptions {
            format: store_format,
            ..StoreOptions::default()
        },
    )?
    .instrumented(&registry);
    let hours = built.scenario.generate();
    let flows: usize = hours.iter().map(|h| h.flows.len()).sum();
    for ht in &hours {
        store.write_hour(ht.hour, &ht.flows)?;
    }

    let mut meta = BTreeMap::new();
    meta.insert("seed".to_owned(), seed.to_string());
    meta.insert("scale".to_owned(), scale.to_string());
    meta.insert(
        "size".to_owned(),
        if tiny { "tiny" } else { "paper" }.to_owned(),
    );
    inventory_io::save(
        out.join("inventory.tsv"),
        &built.inventory.db,
        &built.inventory.isps,
        &meta,
    )?;
    built.truth.save(out.join("truth.tsv"))?;

    let mut text = format!(
        "simulated {} devices, {} designated compromised, {} flows over 143 hours\nwrote {}/{{inventory.tsv, truth.tsv, darknet/}}",
        built.inventory.db.len(),
        built.truth.num_designated(),
        flows,
        out.display()
    );
    if let Some(format) = format {
        text.push('\n');
        text.push_str(&render_metrics(&registry.snapshot(), format));
    }
    Ok(text)
}

/// Load the inventory + hourly traffic from a data directory.
fn load_data(dir: &Path) -> Result<(LoadedInventory, Vec<HourTraffic>), CliError> {
    let inventory = inventory_io::load(dir.join("inventory.tsv"))?;
    let store = FlowStore::open(dir.join("darknet"))?;
    let window = AnalysisWindow::paper();
    let mut traffic = Vec::new();
    for (interval, hour) in window.iter_intervals() {
        if store.has_hour(hour) {
            traffic.push(HourTraffic {
                interval,
                hour,
                flows: store.read_hour(hour)?,
            });
        }
    }
    if traffic.is_empty() {
        return Err(CliError::Run(format!(
            "no hourly flowtuple files under {}/darknet",
            dir.display()
        )));
    }
    Ok((inventory, traffic))
}

fn data_dir(opts: &ParsedArgs) -> Result<PathBuf, CliError> {
    Ok(opts
        .get("--data")
        .ok_or_else(|| CliError::Usage("command requires --data DIR".to_owned()))?
        .into())
}

fn meta_seed(inv: &LoadedInventory) -> u64 {
    inv.meta
        .get("seed")
        .and_then(|s| s.parse().ok())
        .unwrap_or(42)
}

/// Synthesize a threat-intel context for `watch --intel` /
/// `serve --intel`: batch-analyze the loaded traffic once to select
/// candidates, then build the synthetic stores the same way `analyze
/// --intel` does (seeded from the inventory metadata, so every command
/// over one data directory sees identical intel).
fn build_intel_context(
    inventory: &LoadedInventory,
    traffic: &[HourTraffic],
) -> Result<IntelContext, CliError> {
    let analysis = AnalysisPipeline::new(&inventory.db, AnalysisWindow::paper().num_hours())
        .run(traffic, &AnalyzeOptions::new())?
        .analysis;
    let api = QueryContext::batch(&analysis, &inventory.db, &inventory.isps);
    let candidates = api.candidates(4_000);
    let out = IntelBuilder::new(IntelSynthConfig::paper(meta_seed(inventory)))
        .build(&inventory.db, &candidates);
    Ok(IntelContext::from_synth(out))
}

/// `iotscope analyze --data DIR [--intel] [--threads N] [--stats] [--metrics[=FMT]]`
///
/// Runs the store-backed pipeline: hour files are read, decoded, and
/// aggregated by a pool of `--threads` workers (default 8) directly
/// from `DIR/darknet`, applying the paper's day-completeness rule.
/// `--stats` appends per-stage accounting, `--metrics` the full
/// observability snapshot. `--store` is accepted as an alias for
/// `--data`.
pub fn analyze(args: &[String]) -> Result<String, CliError> {
    let opts = ArgParser::new()
        .value("--data")
        .alias("--store", "--data")
        .boolean("--intel")
        .analysis_flags()
        .parse(args)?;
    let dir = data_dir(&opts)?;
    let threads: usize = opts.parse_or("--threads", 8)?;
    let format = metrics_format(&opts)?;
    let inventory = inventory_io::load(dir.join("inventory.tsv"))?;
    let store = FlowStore::open(dir.join("darknet"))?;
    let window = AnalysisWindow::paper();
    let pipeline = AnalysisPipeline::new(&inventory.db, window.num_hours());
    let registry = Registry::new();
    let mut options = AnalyzeOptions::new()
        .window(window)
        .threads(threads)
        .stats(true);
    if format.is_some() {
        options = options.metrics(&registry);
    }
    let outcome = pipeline.run(&store, &options)?;
    let stats = outcome.stats.as_ref().expect("stats were requested");
    if stats.hours_ingested == 0 {
        return Err(CliError::Run(format!(
            "no hourly flowtuple files under {}/darknet",
            dir.display()
        )));
    }
    let analysis = outcome.analysis;

    let intel_out;
    let intel = if opts.has("--intel") {
        let api = QueryContext::batch(&analysis, &inventory.db, &inventory.isps);
        let candidates = api.candidates(4_000);
        intel_out = IntelBuilder::new(IntelSynthConfig::paper(meta_seed(&inventory)))
            .build(&inventory.db, &candidates);
        Some(ReportIntel {
            threats: &intel_out.threats,
            malware: &intel_out.malware,
            resolver: &intel_out.resolver,
            top_n_per_realm: 4_000,
        })
    } else {
        None
    };
    let report = Report::build(&ReportContext {
        analysis: &analysis,
        db: &inventory.db,
        isps: &inventory.isps,
        intel,
    });
    let mut text = report.render();
    if opts.has("--stats") {
        text.push_str(&render_store_stats(stats, &outcome.dropped_days));
    }
    if let Some(format) = format {
        let snapshot = outcome.metrics.expect("metrics were requested");
        text.push_str(&render_metrics(&snapshot, format));
    }
    Ok(text)
}

/// Render the `--stats` section appended to the analyze report.
fn render_store_stats(stats: &StoreReadStats, dropped_days: &[u32]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "\n== store read stats ==");
    let _ = writeln!(out, "threads:         {}", stats.threads);
    let _ = writeln!(
        out,
        "hours ingested:  {} ({} missing, {} skipped; dropped days {dropped_days:?})",
        stats.hours_ingested, stats.hours_missing, stats.hours_skipped
    );
    let _ = writeln!(out, "bytes read:      {}", stats.bytes_read);
    let _ = writeln!(
        out,
        "records decoded: {} ({} blocks)",
        stats.records_decoded, stats.blocks_read
    );
    let _ = writeln!(
        out,
        "stage times:     read {:.1?}, decode {:.1?}, ingest {:.1?}, merge {:.1?} (summed across workers)",
        stats.read_time, stats.decode_time, stats.ingest_time, stats.merge_time
    );
    let _ = writeln!(out, "wall time:       {:.1?}", stats.wall_time);
    out
}

/// `iotscope watch --data DIR [--intel] [--metrics[=FMT]]`, streaming:
/// alert lines reach `out` as each hour's ingest raises them, not in
/// one buffered block at exit — the same live loop the serve daemon
/// runs. `--intel` attaches the incremental score stage, so severity
/// escalations stream interleaved with the behavioral alerts.
pub fn watch_to(args: &[String], out: &mut dyn io::Write) -> Result<(), CliError> {
    let opts = ArgParser::new()
        .value("--data")
        .boolean("--intel")
        .optional_value("--metrics")
        .parse(args)?;
    let format = metrics_format(&opts)?;
    let (inventory, traffic) = load_data(&data_dir(&opts)?)?;
    let intel = if opts.has("--intel") {
        Some(build_intel_context(&inventory, &traffic)?)
    } else {
        None
    };
    let mut service = TelescopeService::new(
        inventory.db,
        inventory.isps,
        AnalysisWindow::paper().num_hours(),
    );
    if let Some(ctx) = intel {
        service = service.with_intel(ctx);
    }
    let mut discovered = 0usize;
    let mut write_err: Option<std::io::Error> = None;
    let (analysis, alerts) = service.ingest(&traffic, StreamConfig::default(), &mut |alert| {
        if let Alert::NewDevices { count, .. } = alert {
            discovered += count;
            return;
        }
        if write_err.is_none() {
            write_err = writeln!(out, "{alert}").and_then(|()| out.flush()).err();
        }
    });
    if let Some(e) = write_err {
        return Err(e.into());
    }
    writeln!(
        out,
        "---\n{} hours replayed, {} devices discovered, {} alerts total, {} compromised devices indexed",
        traffic.len(),
        discovered,
        alerts.len(),
        analysis.device_count()
    )?;
    if let Some(scores) = &service.snapshot().scores {
        writeln!(out, "{} devices scored by threat intel", scores.len())?;
    }
    if let Some(format) = format {
        write!(
            out,
            "{}",
            render_metrics(&service.registry().snapshot(), format)
        )?;
    }
    out.flush()?;
    Ok(())
}

/// Buffered [`watch_to`] (tests and the non-streaming `run` entry).
pub fn watch(args: &[String]) -> Result<String, CliError> {
    let mut buf = Vec::new();
    watch_to(args, &mut buf)?;
    Ok(String::from_utf8(buf).expect("watch output is utf-8"))
}

/// `iotscope serve --data DIR [--port N] [--once] [--intel] [--metrics[=FMT]]`
///
/// The resident daemon: binds the HTTP endpoint first (readers see the
/// empty epoch-0 snapshot immediately), then ingests DIR's hours
/// through the shared streaming loop, publishing a snapshot per hour
/// and streaming non-discovery alerts to `out` as they fire. With
/// `--once` the process exits after ingest (the mode CI and tests
/// drive); otherwise it keeps serving until killed. `--intel` attaches
/// the threat-intel score stage: snapshots carry the live
/// [`iotscope_core::ScoreTable`] and `/score/top` + `/score/{id}`
/// serve it.
pub fn serve(args: &[String], out: &mut dyn io::Write) -> Result<(), CliError> {
    let opts = ArgParser::new()
        .value("--data")
        .value("--port")
        .boolean("--once")
        .boolean("--intel")
        .optional_value("--metrics")
        .parse(args)?;
    let format = metrics_format(&opts)?;
    let port: u16 = opts.parse_or("--port", 0)?;
    let (inventory, traffic) = load_data(&data_dir(&opts)?)?;
    let intel = if opts.has("--intel") {
        Some(build_intel_context(&inventory, &traffic)?)
    } else {
        None
    };
    let mut service = TelescopeService::new(
        inventory.db,
        inventory.isps,
        AnalysisWindow::paper().num_hours(),
    );
    if let Some(ctx) = intel {
        service = service.with_intel(ctx);
    }
    let service = Arc::new(service);
    let server = HttpServer::bind(&format!("127.0.0.1:{port}"), Arc::clone(&service))
        .map_err(|e| CliError::Run(format!("bind failed: {e}")))?;
    writeln!(out, "serving on http://{}", server.local_addr())?;
    out.flush()?;
    let mut write_err: Option<std::io::Error> = None;
    let (analysis, alerts) = service.ingest(&traffic, StreamConfig::default(), &mut |alert| {
        if matches!(alert, Alert::NewDevices { .. }) {
            return;
        }
        if write_err.is_none() {
            write_err = writeln!(out, "{alert}").and_then(|()| out.flush()).err();
        }
    });
    if let Some(e) = write_err {
        return Err(e.into());
    }
    writeln!(
        out,
        "ingest complete: {} hours, {} compromised devices indexed, {} alerts",
        traffic.len(),
        analysis.device_count(),
        alerts.len()
    )?;
    if let Some(scores) = &service.snapshot().scores {
        writeln!(out, "{} devices scored by threat intel", scores.len())?;
    }
    if let Some(format) = format {
        write!(
            out,
            "{}",
            render_metrics(&service.registry().snapshot(), format)
        )?;
    }
    out.flush()?;
    if opts.has("--once") {
        return Ok(());
    }
    writeln!(out, "serving until killed (ctrl-c to stop)")?;
    out.flush()?;
    loop {
        std::thread::park();
    }
}

/// `iotscope investigate --data DIR [--intel] [--threads N]`
pub fn investigate(args: &[String]) -> Result<String, CliError> {
    let opts = ArgParser::new()
        .value("--data")
        .boolean("--intel")
        .value("--threads")
        .parse(args)?;
    let threads: usize = opts.parse_or("--threads", 8)?;
    let (inventory, traffic) = load_data(&data_dir(&opts)?)?;
    let hours = AnalysisWindow::paper().num_hours();
    let vectors = behavior::extract(&traffic, &inventory.db, hours);
    let mut out = String::new();

    let _ = writeln!(out, "== unindexed IoT candidates (fuzzy fingerprinting) ==");
    match FingerprintModel::train(&vectors) {
        Some(model) => {
            let candidates = candidate_iot_devices(&model, &vectors, 0.55, 20);
            let _ = writeln!(
                out,
                "model: {} reference groups from {} matched devices; {} candidates:",
                model.num_groups(),
                model.trained_on(),
                candidates.len()
            );
            for c in candidates.iter().take(20) {
                let _ = writeln!(
                    out,
                    "  {:<16} score {:.2}  {:>8} pkts",
                    c.ip, c.score, c.packets
                );
            }
        }
        None => {
            let _ = writeln!(out, "no matched devices to train on");
        }
    }

    let _ = writeln!(
        out,
        "\n== coordinated scanning crews (botnet clustering) =="
    );
    let clusters = botnet::cluster(&vectors, &BotnetConfig::default());
    if clusters.is_empty() {
        let _ = writeln!(out, "no coordinated clusters found");
    }
    for (i, c) in clusters.iter().enumerate() {
        let _ = writeln!(
            out,
            "cluster {}: {} members, signature ports {:?}, peak hour {}, {} pkts",
            i + 1,
            c.size(),
            c.signature_ports,
            c.peak_interval,
            c.total_packets
        );
    }

    if opts.has("--intel") {
        let _ = writeln!(out, "\n== malware attribution ==");
        let pipeline = AnalysisPipeline::new(&inventory.db, hours);
        let analysis = pipeline
            .run(&traffic, &AnalyzeOptions::new().threads(threads))
            .map_err(|e| CliError::Run(format!("analysis error: {e}")))?
            .analysis;
        let api = QueryContext::batch(&analysis, &inventory.db, &inventory.isps);
        let candidates = api.candidates(4_000);
        let intel = IntelBuilder::new(IntelSynthConfig::paper(meta_seed(&inventory)))
            .build(&inventory.db, &candidates);
        let findings = attribution::attribute(
            &vectors,
            &inventory.db,
            &intel.malware,
            &intel.resolver,
            attribution::DEFAULT_MIN_SCORE,
        );
        for f in findings.iter().take(20) {
            let _ = writeln!(
                out,
                "dev#{:<7} {:<10} score {:.2}  direct={}  ports {:?}",
                f.device.0,
                f.family.to_string(),
                f.score,
                f.evidence.direct_contact,
                f.evidence.port_overlap
            );
        }
        let _ = writeln!(out, "{} attributions total", findings.len());
    }
    Ok(out)
}

/// `iotscope migrate --data DIR (--format v2|v3 | --segmented [--hours-per-segment N])`
///
/// With `--format`, rewrite every hour file under `DIR/darknet` in the
/// requested store format. Reads auto-detect the format from each
/// file's magic, so migration is only needed to standardize a directory
/// (e.g. recompress a v2 archive as block-indexed v3, or produce v2
/// files for an old consumer). Each hour is rewritten atomically;
/// interrupting midway leaves a mixed-format but fully readable store.
///
/// With `--segmented`, compact every per-hour file into the year-scale
/// segment layout (`segments/seg-N.seg` behind `segments/manifest.idx`)
/// and remove the per-hour copies once the manifest is durable. Reads
/// through `FlowStore` are unchanged — segment-resident hours resolve
/// through the manifest, and later `write_hour` calls shadow the
/// segment copy with a fresh per-hour file.
pub fn migrate(args: &[String]) -> Result<String, CliError> {
    let opts = ArgParser::new()
        .value("--data")
        .alias("--store", "--data")
        .value("--format")
        .boolean("--segmented")
        .value("--hours-per-segment")
        .parse(args)?;
    let dir = data_dir(&opts)?;
    let root = dir.join("darknet");
    if opts.get("--segmented").is_some() {
        if opts.get("--format").is_some() {
            return Err(CliError::Usage(
                "migrate takes --format or --segmented, not both".to_owned(),
            ));
        }
        let hours_per_segment = match opts.get("--hours-per-segment") {
            Some(v) => v.parse::<usize>().map_err(|_| {
                CliError::Usage(format!("invalid --hours-per-segment {v:?} (want a count)"))
            })?,
            None => iotscope_net::segment::DEFAULT_HOURS_PER_SEGMENT,
        };
        let store = FlowStore::open(&root)?;
        let report = store.compact_to_segments(hours_per_segment)?;
        if report.hours_compacted == 0 {
            return Err(CliError::Run(format!(
                "no hourly flowtuple files under {}",
                root.display()
            )));
        }
        return Ok(format!(
            "compacted {} hours into {} segments: {} -> {} bytes ({:+.1}%)",
            report.hours_compacted,
            report.segments_written,
            report.bytes_before,
            report.bytes_after,
            100.0 * (report.bytes_after as f64 / report.bytes_before as f64 - 1.0)
        ));
    }
    let format: StoreFormat = opts
        .require("--format", "migrate")?
        .parse()
        .map_err(CliError::Usage)?;
    let src = FlowStore::open(&root)?;
    let dst = FlowStore::create(
        &root,
        StoreOptions {
            format,
            ..StoreOptions::default()
        },
    )?;

    // Walk day-N/hour-M.ft rather than assuming the paper window, so
    // partial and non-standard stores migrate completely.
    let hours = src.hours_on_disk()?;
    if hours.is_empty() {
        return Err(CliError::Run(format!(
            "no hourly flowtuple files under {}",
            root.display()
        )));
    }

    let mut records = 0usize;
    let mut bytes_before = 0u64;
    let mut bytes_after = 0u64;
    for &hour in &hours {
        let path = src.hour_path(hour);
        bytes_before += std::fs::metadata(&path)?.len();
        let flows = src.read_hour(hour)?;
        records += flows.len();
        dst.write_hour(hour, &flows)?;
        bytes_after += std::fs::metadata(&path)?.len();
    }
    Ok(format!(
        "migrated {} hours ({records} records) to {format:?}: {bytes_before} -> {bytes_after} bytes ({:+.1}%)",
        hours.len(),
        100.0 * (bytes_after as f64 / bytes_before as f64 - 1.0)
    ))
}

/// `iotscope export --data DIR --out DIR [--key K]`
///
/// Writes a shareable copy of the darknet traffic with prefix-preserving
/// source/destination anonymization — the §VI "share IoT-relevant
/// malicious empirical data with the research community" path. The
/// inventory is *not* copied (it is the sensitive part).
pub fn export(args: &[String]) -> Result<String, CliError> {
    use iotscope_net::anon::Anonymizer;
    let opts = ArgParser::new()
        .value("--data")
        .value("--out")
        .value("--key")
        .parse(args)?;
    let data = data_dir(&opts)?;
    let out: PathBuf = opts.require("--out", "export")?.into();
    let key: u64 = opts.parse_or("--key", 0x1077_5C09)?;

    let src = FlowStore::open(data.join("darknet"))?;
    let dst = FlowStore::create(out.join("darknet"), StoreOptions::default())?;
    let anonymizer = Anonymizer::new(key);
    let window = AnalysisWindow::paper();
    let mut hours = 0usize;
    let mut flows = 0usize;
    for (_, hour) in window.iter_intervals() {
        if !src.has_hour(hour) {
            continue;
        }
        let anonymized: Vec<_> = src
            .read_hour(hour)?
            .iter()
            .map(|f| anonymizer.anonymize_flow(f))
            .collect();
        flows += anonymized.len();
        dst.write_hour(hour, &anonymized)?;
        hours += 1;
    }
    if hours == 0 {
        return Err(CliError::Run(format!(
            "no hourly flowtuple files under {}/darknet",
            data.display()
        )));
    }
    Ok(format!(
        "exported {hours} anonymized hours ({flows} flows) to {}/darknet/\nprefix structure preserved; identities keyed to --key",
        out.display()
    ))
}

/// `iotscope diff --baseline DIR --data DIR [--threads N]`
pub fn diff(args: &[String]) -> Result<String, CliError> {
    let opts = ArgParser::new()
        .value("--baseline")
        .value("--data")
        .value("--threads")
        .parse(args)?;
    let baseline: PathBuf = opts.require("--baseline", "diff")?.into();
    let threads: usize = opts.parse_or("--threads", 8)?;
    let (inv_a, traffic_a) = load_data(&baseline)?;
    let (inv_b, traffic_b) = load_data(&data_dir(&opts)?)?;
    let hours = AnalysisWindow::paper().num_hours();
    let options = AnalyzeOptions::new().threads(threads);
    let before = AnalysisPipeline::new(&inv_a.db, hours)
        .run(&traffic_a, &options)
        .map_err(|e| CliError::Run(format!("analysis error: {e}")))?
        .analysis;
    let after = AnalysisPipeline::new(&inv_b.db, hours)
        .run(&traffic_b, &options)
        .map_err(|e| CliError::Run(format!("analysis error: {e}")))?
        .analysis;
    let d = iotscope_core::diff::diff(&before, &after);

    let mut out = String::new();
    // Head the diff with each side's headline aggregates, read through
    // the same QueryApi surface the daemon serves.
    for (label, analysis, inv) in [("baseline", &before, &inv_a), ("current ", &after, &inv_b)] {
        let s = QueryContext::batch(analysis, &inv.db, &inv.isps).summary();
        let _ = writeln!(
            out,
            "{label}: {} compromised ({} consumer, {} CPS) across {} countries, {} pkts",
            s.devices, s.consumer, s.cps, s.countries, s.total_packets
        );
    }
    let _ = writeln!(
        out,
        "devices: {} persisted, {} appeared, {} disappeared (churn {:.1}%)",
        d.persisted,
        d.appeared.len(),
        d.disappeared.len(),
        100.0 * d.churn()
    );
    let _ = writeln!(
        out,
        "newly attacked (victims): {}; newly exploited (scanners): {}",
        d.new_victims.len(),
        d.new_scanners.len()
    );
    let _ = writeln!(out, "per-class packet drift:");
    for c in &d.class_deltas {
        let rel = c
            .relative()
            .map(|r| format!("{:+.1}%", 100.0 * r))
            .unwrap_or_else(|| "n/a".to_owned());
        let _ = writeln!(
            out,
            "  {:<12} {:>10} -> {:>10}  ({rel})",
            c.class.to_string(),
            c.before,
            c.after
        );
    }
    Ok(out)
}

/// `iotscope validate --data DIR [--threads N]`
///
/// Compares what the pipeline infers from DIR's traffic against the
/// ground-truth ledger the simulator wrote (`truth.tsv`): exact recovery
/// of the planted population, victim precision/recall, and spike-interval
/// coverage. The command an operator runs to certify an analysis build
/// against a known scenario.
pub fn validate(args: &[String]) -> Result<String, CliError> {
    use iotscope_telescope::ground_truth::{GroundTruth, Role};
    let opts = ArgParser::new()
        .value("--data")
        .value("--threads")
        .parse(args)?;
    let threads: usize = opts.parse_or("--threads", 8)?;
    let dir = data_dir(&opts)?;
    let truth = GroundTruth::load(dir.join("truth.tsv"))
        .map_err(|e| CliError::Run(format!("truth ledger: {e}")))?;
    let (inventory, traffic) = load_data(&dir)?;
    let analysis = AnalysisPipeline::new(&inventory.db, AnalysisWindow::paper().num_hours())
        .run(&traffic, &AnalyzeOptions::new().threads(threads))
        .map_err(|e| CliError::Run(format!("analysis error: {e}")))?
        .analysis;

    let inferred: std::collections::HashSet<_> =
        analysis.compromised_devices().into_iter().collect();
    let designated: std::collections::HashSet<_> = truth.roles.keys().copied().collect();
    let recovered = designated.intersection(&inferred).count();
    let false_pos = inferred.difference(&designated).count();

    let truth_victims: std::collections::HashSet<_> = truth
        .devices_with_role(Role::DosVictim)
        .into_iter()
        .collect();
    let inferred_victims: std::collections::HashSet<_> =
        analysis.dos_victims().into_iter().collect();
    let victim_hits = truth_victims.intersection(&inferred_victims).count();

    let mut spikes_found = 0usize;
    for i in &truth.dos_spike_intervals {
        if analysis.backscatter_intervals[(*i - 1) as usize].total > 0 {
            spikes_found += 1;
        }
    }

    let pass = recovered == designated.len()
        && false_pos == 0
        && victim_hits == truth_victims.len()
        && spikes_found == truth.dos_spike_intervals.len();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "designated devices recovered: {recovered}/{} (false positives: {false_pos})",
        designated.len()
    );
    let _ = writeln!(
        out,
        "DoS victims recovered:        {victim_hits}/{} (inferred {})",
        truth_victims.len(),
        inferred_victims.len()
    );
    let _ = writeln!(
        out,
        "planted spike intervals seen: {spikes_found}/{}",
        truth.dos_spike_intervals.len()
    );
    let _ = writeln!(out, "verdict: {}", if pass { "PASS" } else { "FAIL" });
    if !pass {
        return Err(CliError::Run(out));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iotscope-cli-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn simulate_then_analyze_watch_investigate() {
        let dir = tmpdir("full");
        let dir_s = dir.to_str().unwrap();

        let out = simulate(&args(&["--out", dir_s, "--tiny", "--seed", "5"])).unwrap();
        assert!(out.contains("designated compromised"));
        assert!(dir.join("inventory.tsv").is_file());
        assert!(dir.join("darknet").is_dir());

        let report = analyze(&args(&["--data", dir_s, "--intel"])).unwrap();
        assert!(report.contains("Fig 1b"));
        assert!(report.contains("Table V"));
        assert!(report.contains("Table VII"));
        assert!(report.contains("compromised devices: 1050"));

        // Thread count must not change the report; --stats appends a
        // section with the run's accounting.
        let with_stats = analyze(&args(&[
            "--data",
            dir_s,
            "--intel",
            "--threads",
            "3",
            "--stats",
        ]))
        .unwrap();
        assert!(
            with_stats.starts_with(&report),
            "report differs across thread counts"
        );
        assert!(with_stats.contains("== store read stats =="));
        assert!(with_stats.contains("threads:         3"));
        assert!(with_stats.contains("hours ingested:  143"));

        // The acceptance command: `--store` aliases `--data`, and
        // `--metrics=json` appends a snapshot covering store reads,
        // per-stage timings, and analysis class counters.
        let with_metrics =
            analyze(&args(&["--store", dir_s, "--intel", "--metrics=json"])).unwrap();
        assert!(
            with_metrics.starts_with(&report),
            "metrics must append, not alter, the report"
        );
        assert!(with_metrics.contains("\"store.bytes_read\""));
        assert!(with_metrics.contains("\"pipeline.decode_time\""));
        assert!(with_metrics.contains("\"pipeline.wall_time\""));
        assert!(with_metrics.contains("\"analysis.packets.consumer.tcp_scan\""));

        let watch_out = watch(&args(&["--data", dir_s])).unwrap();
        assert!(watch_out.contains("devices discovered"));
        assert!(watch_out.contains("1050 compromised devices indexed"));
        assert!(watch_out.contains("SWEEP"));
        assert!(!watch_out.contains("devices scored"), "no intel by default");

        // --intel interleaves score-escalation alerts with the
        // behavioral ones and reports the scored-device count.
        let watch_intel = watch(&args(&["--data", dir_s, "--intel"])).unwrap();
        assert!(watch_intel.contains("1050 compromised devices indexed"));
        assert!(watch_intel.contains("devices scored by threat intel"));
        assert!(watch_intel.contains("SCORE"), "{watch_intel}");

        let mut serve_buf = Vec::new();
        serve(
            &args(&["--data", dir_s, "--once", "--intel"]),
            &mut serve_buf,
        )
        .unwrap();
        let serve_out = String::from_utf8(serve_buf).unwrap();
        assert!(serve_out.contains("serving on http://"));
        assert!(serve_out.contains("ingest complete: 143 hours"));
        assert!(serve_out.contains("devices scored by threat intel"));

        let inv = investigate(&args(&["--data", dir_s, "--intel"])).unwrap();
        assert!(inv.contains("reference groups"));
        assert!(inv.contains("cluster 1:"));
        assert!(inv.contains("attributions total"));

        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrate_roundtrips_between_formats() {
        let dir = tmpdir("migrate");
        let root = dir.join("darknet");
        // A small mixed-size store written in the default (v3) format.
        let store = FlowStore::create(&root, StoreOptions::default()).unwrap();
        let built = PaperScenario::build(PaperScenarioConfig::tiny(9));
        let hours: Vec<_> = (1..=3).map(|i| built.scenario.generate_hour(i)).collect();
        for h in &hours {
            store.write_hour(h.hour, &h.flows).unwrap();
        }
        let magic = |hour| {
            let bytes = std::fs::read(store.hour_path(hour)).unwrap();
            bytes[..7].to_vec()
        };
        assert_eq!(magic(hours[0].hour), b"IOTFT03");

        let dir_s = dir.to_str().unwrap();
        let msg = migrate(&args(&["--data", dir_s, "--format", "v2"])).unwrap();
        assert!(msg.contains("migrated 3 hours"), "{msg}");
        assert_eq!(magic(hours[0].hour), b"IOTFT02");
        // Contents survive the downgrade bit-for-bit (v2 and v3 decode
        // to the same sorted sequence).
        let v3_flows: Vec<_> = hours
            .iter()
            .flat_map(|h| {
                let mut f = h.flows.clone();
                f.sort_by_key(|t| (t.src_ip, t.dst_ip, t.dst_port));
                f
            })
            .collect();
        let v2_flows: Vec<_> = hours
            .iter()
            .flat_map(|h| store.read_hour(h.hour).unwrap())
            .collect();
        assert_eq!(v2_flows, v3_flows);

        let msg = migrate(&args(&["--data", dir_s, "--format", "v3"])).unwrap();
        assert!(msg.contains("migrated 3 hours"), "{msg}");
        assert_eq!(magic(hours[1].hour), b"IOTFT03");
        assert!(matches!(
            migrate(&args(&["--data", dir_s, "--format", "v9"])),
            Err(CliError::Usage(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn migrate_segmented_compacts_and_preserves_reads() {
        let dir = tmpdir("migrate-seg");
        let root = dir.join("darknet");
        let store = FlowStore::create(&root, StoreOptions::default()).unwrap();
        let built = PaperScenario::build(PaperScenarioConfig::tiny(11));
        let hours: Vec<_> = (1..=5).map(|i| built.scenario.generate_hour(i)).collect();
        for h in &hours {
            store.write_hour(h.hour, &h.flows).unwrap();
        }
        let before: Vec<_> = hours
            .iter()
            .map(|h| store.read_hour(h.hour).unwrap())
            .collect();

        let dir_s = dir.to_str().unwrap();
        assert!(matches!(
            migrate(&args(&["--data", dir_s, "--format", "v2", "--segmented"])),
            Err(CliError::Usage(_))
        ));
        let msg = migrate(&args(&[
            "--data",
            dir_s,
            "--segmented",
            "--hours-per-segment",
            "2",
        ]))
        .unwrap();
        assert!(msg.contains("compacted 5 hours into 3 segments"), "{msg}");
        assert!(root.join("segments").join("manifest.idx").is_file());

        // Per-hour files are gone, reads resolve through the segments,
        // bit-identical to the pre-compaction store.
        let fresh = FlowStore::open(&root).unwrap();
        for (h, flows) in hours.iter().zip(&before) {
            assert!(!fresh.hour_path(h.hour).is_file());
            assert!(fresh.has_hour(h.hour));
            assert_eq!(&fresh.read_hour(h.hour).unwrap(), flows);
        }
        // Nothing left to compact a second time.
        assert!(matches!(
            migrate(&args(&["--data", dir_s, "--segmented"])),
            Err(CliError::Run(_))
        ));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn simulate_format_flag_writes_v2() {
        let dir = tmpdir("fmt-v2");
        let dir_s = dir.to_str().unwrap();
        simulate(&args(&[
            "--out", dir_s, "--tiny", "--seed", "7", "--format", "v2",
        ]))
        .unwrap();
        let store = FlowStore::open(dir.join("darknet")).unwrap();
        let hour = AnalysisWindow::paper().start();
        let bytes = std::fs::read(store.hour_path(hour)).unwrap();
        assert_eq!(&bytes[..7], b"IOTFT02");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn export_anonymizes_but_preserves_structure() {
        let dir = tmpdir("export-src");
        let dir_s = dir.to_str().unwrap();
        simulate(&args(&["--out", dir_s, "--tiny", "--seed", "6"])).unwrap();

        let out = tmpdir("export-dst");
        let out_s = out.to_str().unwrap();
        let msg = export(&args(&["--data", dir_s, "--out", out_s, "--key", "99"])).unwrap();
        assert!(msg.contains("exported 143 anonymized hours"));

        // Same flow counts per hour, but addresses differ.
        let src = FlowStore::open(dir.join("darknet")).unwrap();
        let dst = FlowStore::open(out.join("darknet")).unwrap();
        let window = AnalysisWindow::paper();
        let hour = window.start();
        let a = src.read_hour(hour).unwrap();
        let b = dst.read_hour(hour).unwrap();
        assert_eq!(a.len(), b.len());
        let src_ips: std::collections::HashSet<_> = a.iter().map(|f| f.src_ip).collect();
        let dst_ips: std::collections::HashSet<_> = b.iter().map(|f| f.src_ip).collect();
        assert_eq!(src_ips.len(), dst_ips.len()); // injective
        assert!(src_ips.intersection(&dst_ips).count() < src_ips.len() / 10);
        // The exported directory has no inventory (that is the point).
        assert!(!out.join("inventory.tsv").exists());

        std::fs::remove_dir_all(&dir).unwrap();
        std::fs::remove_dir_all(&out).unwrap();
    }

    #[test]
    fn diff_between_two_seeds_reports_churn() {
        let a = tmpdir("diff-a");
        let b = tmpdir("diff-b");
        simulate(&args(&[
            "--out",
            a.to_str().unwrap(),
            "--tiny",
            "--seed",
            "21",
        ]))
        .unwrap();
        simulate(&args(&[
            "--out",
            b.to_str().unwrap(),
            "--tiny",
            "--seed",
            "21",
        ]))
        .unwrap();
        // Identical seeds: zero churn.
        let same = diff(&args(&[
            "--baseline",
            a.to_str().unwrap(),
            "--data",
            b.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(
            same.contains("0 appeared, 0 disappeared (churn 0.0%)"),
            "{same}"
        );
        std::fs::remove_dir_all(&a).unwrap();
        std::fs::remove_dir_all(&b).unwrap();
    }

    #[test]
    fn validate_passes_on_fresh_simulation() {
        let dir = tmpdir("validate");
        let dir_s = dir.to_str().unwrap();
        simulate(&args(&["--out", dir_s, "--tiny", "--seed", "33"])).unwrap();
        let out = validate(&args(&["--data", dir_s])).unwrap();
        assert!(out.contains("verdict: PASS"), "{out}");
        // Corrupt the truth: claim a bogus extra victim device id, then
        // validation must fail.
        let truth_path = dir.join("truth.tsv");
        let mut text = std::fs::read_to_string(&truth_path).unwrap();
        text.push_str("role|999999|1|DosVictim\n");
        std::fs::write(&truth_path, text).unwrap();
        assert!(validate(&args(&["--data", dir_s])).is_err());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn analyze_missing_data_dir_fails_cleanly() {
        let err = analyze(&args(&["--data", "/definitely/not/here"])).unwrap_err();
        assert!(format!("{err}").contains("inventory error"));
    }

    #[test]
    fn simulate_requires_out() {
        assert!(matches!(
            simulate(&args(&["--tiny"])),
            Err(CliError::Usage(_))
        ));
    }

    #[test]
    fn metrics_format_parses_the_three_spellings() {
        let parse = |argv: &[&str]| {
            let opts = ArgParser::new()
                .analysis_flags()
                .parse(&args(argv))
                .unwrap();
            metrics_format(&opts)
        };
        assert!(parse(&[]).unwrap().is_none());
        assert!(matches!(
            parse(&["--metrics"]).unwrap(),
            Some(MetricsFormat::Text)
        ));
        assert!(matches!(
            parse(&["--metrics=text"]).unwrap(),
            Some(MetricsFormat::Text)
        ));
        assert!(matches!(
            parse(&["--metrics=json"]).unwrap(),
            Some(MetricsFormat::Json)
        ));
        assert!(matches!(
            parse(&["--metrics=yaml"]),
            Err(CliError::Usage(_))
        ));
    }
}
