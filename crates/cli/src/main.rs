//! `iotscope` binary entry point; all logic lives in the library so the
//! commands are testable.

use std::io::Write as _;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match iotscope_cli::run(&args) {
        Ok(output) => {
            // Ignore broken pipes (e.g. `iotscope analyze | head`).
            let _ = writeln!(std::io::stdout(), "{output}");
        }
        Err(iotscope_cli::CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{}", iotscope_cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
