//! `iotscope` binary entry point; all logic lives in the library so the
//! commands are testable.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // run_to streams watch/serve output live; buffered commands write
    // once. Broken pipes (e.g. `iotscope analyze | head`) surface as
    // Run errors, which exit 1 like any other runtime failure.
    match iotscope_cli::run_to(&args, &mut std::io::stdout()) {
        Ok(()) => {}
        Err(iotscope_cli::CliError::Usage(msg)) => {
            eprintln!("error: {msg}\n\n{}", iotscope_cli::USAGE);
            std::process::exit(2);
        }
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
