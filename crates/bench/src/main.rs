//! `repro` — regenerate every table and figure of the paper.
//!
//! Runs the full pipeline: synthetic inventory → calibrated darknet
//! scenario → correlation/classification/characterization → intel joins,
//! then prints each artifact (Figs 1–11, Tables I–VII) plus the headline
//! scalar comparisons. See EXPERIMENTS.md for paper-vs-measured.
//!
//! Usage:
//!
//! ```text
//! repro [--seed N] [--scale F] [--tiny] [--csv DIR]
//! ```
//!
//! `--scale` multiplies packet budgets relative to the paper's magnitudes
//! (default 0.01 ⇒ ≈1.2M packets). `--tiny` uses the small inventory for a
//! fast smoke run. `--csv DIR` additionally dumps the figure series as CSV.

use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::report::{Report, ReportContext, ReportIntel};
use iotscope_core::{scan, udp};
use iotscope_devicedb::Realm;
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use std::io::Write as _;
use std::time::Instant;

struct Args {
    seed: u64,
    scale: f64,
    tiny: bool,
    csv: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        seed: 42,
        scale: 0.01,
        tiny: false,
        csv: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => args.seed = it.next().and_then(|v| v.parse().ok()).unwrap_or(42),
            "--scale" => args.scale = it.next().and_then(|v| v.parse().ok()).unwrap_or(0.01),
            "--tiny" => args.tiny = true,
            "--csv" => args.csv = it.next(),
            "--help" | "-h" => {
                println!("usage: repro [--seed N] [--scale F] [--tiny] [--csv DIR]");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();

    let config = if args.tiny {
        let mut c = PaperScenarioConfig::tiny(args.seed);
        c.scale = args.scale.max(0.001);
        c
    } else {
        PaperScenarioConfig::paper(args.seed, args.scale)
    };
    eprintln!(
        "[1/4] building inventory ({} devices) and scenario (scale {}) ...",
        config.synth.total_devices(),
        config.scale
    );
    let built = PaperScenario::build(config);
    eprintln!(
        "      {} actors, expected ~{:.0} packets ({:.1}s)",
        built.scenario.actors().len(),
        built.scenario.expected_total_packets(),
        t0.elapsed().as_secs_f64()
    );

    eprintln!("[2/4] generating 143 hours of telescope traffic ...");
    let t = Instant::now();
    let traffic = built.scenario.generate();
    let flows: usize = traffic.iter().map(|h| h.flows.len()).sum();
    eprintln!("      {} flows ({:.1}s)", flows, t.elapsed().as_secs_f64());

    eprintln!("[3/4] correlating + characterizing ...");
    let t = Instant::now();
    let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
    let analysis = pipeline
        .run(&traffic, &AnalyzeOptions::new().threads(8))
        .expect("in-memory analysis")
        .analysis;
    eprintln!(
        "      {} compromised devices ({:.1}s)",
        analysis.device_count(),
        t.elapsed().as_secs_f64()
    );

    eprintln!("[4/4] intel correlation (Section V) ...");
    let candidates = iotscope_core::malicious::select_candidates(&analysis, 4000);
    let intel = IntelBuilder::new(IntelSynthConfig::paper(args.seed))
        .build(&built.inventory.db, &candidates);
    let report = Report::build(&ReportContext {
        analysis: &analysis,
        db: &built.inventory.db,
        isps: &built.inventory.isps,
        intel: Some(ReportIntel {
            threats: &intel.threats,
            malware: &intel.malware,
            resolver: &intel.resolver,
            top_n_per_realm: 4000,
        }),
    });
    println!("{}", report.render());

    // Source taxonomy over everything the telescope saw (the paper's
    // scanning / backscatter / misconfiguration trichotomy, per source).
    {
        use iotscope_core::taxonomy::{classify_sources, SourceKind};
        let vectors = iotscope_core::behavior::extract(&traffic, &built.inventory.db, 143);
        let tax = classify_sources(&traffic, &vectors);
        println!("-- source taxonomy (all sources incl. non-inventory) --");
        for kind in [
            SourceKind::Scanner,
            SourceKind::UdpScanner,
            SourceKind::DosVictim,
            SourceKind::Misconfiguration,
            SourceKind::Mixed,
        ] {
            println!("  {:<17} {:>7}", kind.to_string(), tax.count(kind));
        }
        println!();
    }

    // Extra per-figure series excerpts (full series go to --csv).
    println!("-- Fig 10 excerpt: hourly Telnet/HTTP/SSH/BackroomNet/CWMP scan packets --");
    for i in [1usize, 32, 69, 92, 113, 119, 130, 143] {
        let row = scan::top5_series(&analysis)[i - 1];
        println!(
            "interval {i:>3}: telnet={} http={} ssh={} backroomnet={} cwmp={}",
            row[0], row[1], row[2], row[3], row[4]
        );
    }

    if let Some(dir) = &args.csv {
        dump_csv(dir, &analysis).expect("csv dump failed");
        println!("(csv series written to {dir})");
    }
    eprintln!("total {:.1}s", t0.elapsed().as_secs_f64());
}

fn dump_csv(dir: &str, analysis: &iotscope_core::Analysis) -> std::io::Result<()> {
    std::fs::create_dir_all(dir)?;
    let path = |name: &str| format!("{dir}/{name}.csv");

    let mut f = std::fs::File::create(path("fig5_udp_hourly"))?;
    writeln!(f, "interval,realm,packets,dst_ips,dst_ports")?;
    for (r, name) in [(Realm::Consumer, "consumer"), (Realm::Cps, "cps")] {
        let s = udp::hourly(analysis, r);
        for i in 0..s.packets.len() {
            writeln!(
                f,
                "{},{},{},{},{}",
                i + 1,
                name,
                s.packets[i],
                s.dst_ips[i],
                s.dst_ports[i]
            )?;
        }
    }

    let mut f = std::fs::File::create(path("fig7_backscatter_hourly"))?;
    writeln!(f, "interval,consumer,cps")?;
    for i in 0..analysis.hours as usize {
        writeln!(
            f,
            "{},{},{}",
            i + 1,
            analysis.backscatter_hourly[0][i],
            analysis.backscatter_hourly[1][i]
        )?;
    }

    let mut f = std::fs::File::create(path("fig9_scan_hourly"))?;
    writeln!(f, "interval,realm,packets,dst_ips,dst_ports")?;
    for (r, name) in [(Realm::Consumer, "consumer"), (Realm::Cps, "cps")] {
        let s = scan::hourly(analysis, r);
        for i in 0..s.packets.len() {
            writeln!(
                f,
                "{},{},{},{},{}",
                i + 1,
                name,
                s.packets[i],
                s.dst_ips[i],
                s.dst_ports[i]
            )?;
        }
    }

    let mut f = std::fs::File::create(path("fig10_top5_hourly"))?;
    writeln!(f, "interval,telnet,http,ssh,backroomnet,cwmp")?;
    for (i, row) in scan::top5_series(analysis).iter().enumerate() {
        writeln!(
            f,
            "{},{},{},{},{},{}",
            i + 1,
            row[0],
            row[1],
            row[2],
            row[3],
            row[4]
        )?;
    }
    Ok(())
}
