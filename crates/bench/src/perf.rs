//! `perf` — machine-readable performance snapshot.
//!
//! Runs the workspace's headline hot paths (hour ingest, report build,
//! correlation lookups, store encode/decode/visit, store-backed
//! analysis) with a simple median-of-N timer and writes the results as
//! JSON next to a human-readable table. CI runs `--quick` and checks
//! the JSON parses with the expected keys; full runs feed
//! EXPERIMENTS.md.
//!
//! Usage:
//!
//! ```text
//! perf [--quick] [--seed N] [--out PATH] [--mode sharded|pooled] [--serve] [--year] [--intel]
//! ```
//!
//! `--quick` uses the small inventory and few iterations (CI smoke);
//! the default is the `paper(seed, 0.01)` scenario used by
//! `bench_analysis`. `--out` defaults to the PR-agnostic `BENCH.json`
//! (CI and full runs pass an explicit `--out BENCH_PRn.json`).
//! `--mode` picks the parallel strategy for the `pipeline/*` entries:
//! the default `sharded` mode times thread counts 2/4/8 of the
//! device-sharded path, `pooled` times the hour-pooled path at 4
//! threads. `--serve` additionally boots the resident daemon on an
//! ephemeral port and drives every endpoint with concurrent keep-alive
//! clients while ingest runs at full rate. `--year` streams a synthetic
//! 8,760-hour segmented store end-to-end (always at tiny scale — the
//! point is the hour count, not the per-hour size) and records
//! `store.year.analyze143` / `store.year.analyze8760` rows whose
//! `peak_rss` difference is CI's RSS-flatness gate. `--intel`
//! synthesizes a threat-intel context and records the §V scoring rows:
//! `intel.index_build_ns` (IntelIndex construction),
//! `intel.join_ns_per_flow` (full-analysis fold amortized per flow),
//! the `intel.lookup_index` vs `intel.lookup_hashmap` ablation, and
//! `score.alert_p99_ns` (p99 per-hour incremental score-fold latency
//! during a streaming replay); combined with `--serve` it also
//! attaches the score stage to the daemon so the `/score/*` endpoints
//! answer 200 under load.
//!
//! JSON schema (documented in DESIGN.md §3d): a single object mapping
//! bench name to `{"median_ns": u64, "bytes": u64, "peak_rss": u64}`,
//! where `bytes` is the input bytes one iteration processes (0 when not
//! applicable) and `peak_rss` is the process-wide `VmHWM` high-water
//! mark in bytes sampled when the bench finished (0 where
//! `/proc/self/status` is unavailable). Rows whose name starts with
//! `store` and whose `bytes`/`median_ns` are both nonzero additionally
//! carry a derived `"mb_per_s"` float (`bytes / median seconds / 1e6`)
//! so store throughput trends read straight off the JSON. With `--serve`, the object
//! additionally maps `serve.<endpoint>` to
//! `{"requests": u64, "p50_ns": u64, "p99_ns": u64, "mean_ns": u64}`
//! measured under load, plus a bare `serve.ingest_hours_per_s` number
//! for ingest throughput with readers attached.

use iotscope_core::analysis::Analyzer;
use iotscope_core::malicious::select_candidates;
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions, ParallelMode};
use iotscope_core::report::{Report, ReportContext};
use iotscope_core::score::{ScoreConfig, ScoreEngine};
use iotscope_core::stream::StreamConfig;
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_intel::{IntelContext, IntelIndex};
use iotscope_net::addr::Ipv4Cidr;
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::store::{
    decode_hour_visit, decode_hour_with, encode_hour, restamp_hour, ColumnBlock, DecodeOptions,
    FlowSink, FlowStore, StoreOptions, BLOCK_RECORDS,
};
use iotscope_net::trie::PrefixTrie;
use iotscope_serve::http::HttpServer;
use iotscope_serve::load::{self, EndpointLoad, LoadOptions};
use iotscope_serve::{TelescopeService, ENDPOINTS};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;
use std::collections::HashMap;
use std::hint::black_box;
use std::io::Write as _;
use std::net::Ipv4Addr;
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

const USAGE: &str = "usage: perf [--quick] [--seed N] [--out PATH] [--mode sharded|pooled] \
     [--serve] [--year] [--intel]";

struct Args {
    quick: bool,
    seed: u64,
    out: String,
    mode: ParallelMode,
    serve: bool,
    year: bool,
    intel: bool,
}

/// Print an argument error plus usage and exit non-zero. Bad input must
/// never silently fall back to a default: a typo'd `--seed` would
/// otherwise produce a perfectly plausible-looking benchmark of the
/// wrong scenario.
fn usage_error(msg: &str) -> ! {
    eprintln!("error: {msg}");
    eprintln!("{USAGE}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args {
        quick: false,
        seed: 7,
        out: "BENCH.json".to_owned(),
        mode: ParallelMode::Sharded,
        serve: false,
        year: false,
        intel: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--quick" => args.quick = true,
            "--serve" => args.serve = true,
            "--year" => args.year = true,
            "--intel" => args.intel = true,
            "--seed" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--seed requires a value"));
                args.seed = v.parse().unwrap_or_else(|_| {
                    usage_error(&format!(
                        "invalid --seed '{v}' (expected an unsigned integer)"
                    ))
                });
            }
            "--out" => {
                args.out = it
                    .next()
                    .unwrap_or_else(|| usage_error("--out requires a path"));
            }
            "--mode" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| usage_error("--mode requires 'sharded' or 'pooled'"));
                args.mode = match v.as_str() {
                    "sharded" => ParallelMode::Sharded,
                    "pooled" => ParallelMode::Pooled,
                    _ => usage_error(&format!("invalid --mode '{v}' (expected sharded|pooled)")),
                };
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument {other}; try --help");
                std::process::exit(2);
            }
        }
    }
    args
}

/// One recorded bench row (insertion order is the JSON order).
struct Entry {
    name: &'static str,
    median_ns: u128,
    bytes: u64,
    peak_rss: u64,
}

/// Median-of-`iters` wall time after `warmup` discarded iterations.
fn measure<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> u128 {
    for _ in 0..warmup {
        black_box(f());
    }
    let mut samples: Vec<u128> = (0..iters)
        .map(|_| {
            let t = Instant::now();
            black_box(f());
            t.elapsed().as_nanos()
        })
        .collect();
    samples.sort_unstable();
    samples[samples.len() / 2]
}

/// Process peak resident set (`VmHWM`) in bytes; 0 off Linux.
fn peak_rss_bytes() -> u64 {
    let status = std::fs::read_to_string("/proc/self/status").unwrap_or_default();
    status
        .lines()
        .find_map(|l| l.strip_prefix("VmHWM:"))
        .and_then(|rest| rest.split_whitespace().next())
        .and_then(|kb| kb.parse::<u64>().ok())
        .map(|kb| kb * 1024)
        .unwrap_or(0)
}

fn flows_bytes(flows: &[FlowTuple]) -> u64 {
    std::mem::size_of_val(flows) as u64
}

/// A [`FlowSink`] that only counts, to time the streaming decode
/// without an ingest on the other end.
#[derive(Default)]
struct CountSink(usize);

impl FlowSink for CountSink {
    fn on_flows(&mut self, flows: &[FlowTuple]) {
        self.0 += flows.len();
    }
}

/// A [`FlowSink`] that consumes whole [`ColumnBlock`]s, to time the
/// columnar batch decode without the per-record fallback.
#[derive(Default)]
struct BlockCountSink(usize);

impl FlowSink for BlockCountSink {
    fn on_flows(&mut self, flows: &[FlowTuple]) {
        self.0 += flows.len();
    }

    fn visit_block(&mut self, block: &ColumnBlock) {
        self.0 += block.len();
    }
}

/// Results of the `--serve` section: per-endpoint latency under load
/// plus ingest throughput with readers attached.
struct ServeSection {
    /// `serve.<endpoint>` rows, in [`ENDPOINTS`] order.
    endpoints: Vec<(String, EndpointLoad)>,
    /// Hours pushed per second while the load ran.
    ingest_hours_per_s: f64,
}

/// Boot the daemon on an ephemeral port and replay every hour at full
/// rate while four concurrent keep-alive clients round-robin every
/// endpoint. The `/device/{id}` target is a device observed in hour 1,
/// so it resolves from the first published epoch onward (requests
/// racing the very first publish may 404 and count as errors).
fn bench_serve(
    db: iotscope_devicedb::DeviceDb,
    isps: iotscope_devicedb::isp::IspRegistry,
    num_hours: u32,
    hours: &[HourTraffic],
    intel: Option<IntelContext>,
    quick: bool,
) -> ServeSection {
    let dev = {
        let mut an = Analyzer::new(&db, num_hours);
        an.ingest_hour(&hours[0]);
        an.finish()
            .compromised_devices()
            .first()
            .copied()
            .expect("hour 1 observes at least one device")
    };
    let mut service = TelescopeService::new(db, isps, num_hours);
    if let Some(ctx) = intel {
        service = service.with_intel(ctx);
    }
    let service = Arc::new(service);
    let server = HttpServer::bind("127.0.0.1:0", Arc::clone(&service)).expect("bind serve bench");
    let paths: Vec<String> = ENDPOINTS
        .iter()
        .map(|e| match *e {
            "device" => format!("/device/{}", dev.0),
            // `/score/{id}` answers 200 from the first intel epoch on;
            // without intel it 404s and the row records errors, same
            // caveat as the racing `/device/{id}` requests above.
            "score" => format!("/score/{}", dev.0),
            "score_top" => "/score/top".to_owned(),
            other => format!("/{other}"),
        })
        .collect();
    let opts = LoadOptions {
        workers: 4,
        paths,
        duration: Duration::from_secs(if quick { 2 } else { 6 }),
    };
    let stop = AtomicBool::new(false);
    let (ingest_wall, results) = std::thread::scope(|scope| {
        let svc = Arc::clone(&service);
        let ingest = scope.spawn(move || {
            let t = Instant::now();
            svc.ingest(hours, StreamConfig::default(), &mut |_| {});
            t.elapsed()
        });
        let results = load::run(server.local_addr(), &opts, &stop);
        (ingest.join().expect("ingest thread"), results)
    });
    ServeSection {
        endpoints: ENDPOINTS
            .iter()
            .map(|e| format!("serve.{e}"))
            .zip(results)
            .collect(),
        ingest_hours_per_s: hours.len() as f64 / ingest_wall.as_secs_f64().max(1e-9),
    }
}

/// The `--year` section: analyze a compacted tiny 143-hour scenario,
/// then stream a synthetic 8,760-hour (full-year) segmented store
/// end-to-end, recording wall time, store bytes, and peak RSS (`VmHWM`)
/// for both as `store.year.*` rows. CI gates on the year run's peak RSS
/// staying within 1.5x the 143-hour run's.
///
/// This must run *before* the main scenario materializes its hours:
/// `VmHWM` is a process-wide high-water mark, so sampled later both
/// rows would just read the main scenario's footprint and the flatness
/// gate would be vacuous. It is also always tiny-scale, whatever
/// `--quick` says — a paper-scale year would be tens of GB of synthetic
/// traffic, and the store (not the generator) is what's under test.
fn bench_year(seed: u64) -> Vec<Entry> {
    use iotscope_net::segment::{Manifest, SegmentStoreBuilder, DEFAULT_HOURS_PER_SEGMENT};
    use iotscope_net::time::AnalysisWindow;

    const YEAR_HOURS: u32 = 8_760;
    let t0 = Instant::now();
    let built = PaperScenario::build(PaperScenarioConfig::tiny(seed));
    let db = &built.inventory.db;
    let window = built.scenario.telescope().window;
    let num_hours = window.num_hours();
    let mut entries = Vec::new();

    // 143-hour baseline, segmented: write per-hour files, compact them
    // into segments, analyze through the mmap read path.
    let dir = std::env::temp_dir().join(format!("iotscope-perf-yearbase-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FlowStore::create(&dir, StoreOptions::default()).expect("create baseline store");
    built
        .scenario
        .write_to_store(&store)
        .expect("write baseline store");
    let report = store
        .compact_to_segments(DEFAULT_HOURS_PER_SEGMENT)
        .expect("compact baseline store");
    let pipeline = AnalysisPipeline::new(db, num_hours);
    let t = Instant::now();
    let devices = pipeline
        .run(&store, &AnalyzeOptions::new().window(window))
        .expect("baseline segmented analysis")
        .analysis
        .device_count();
    let base_wall = t.elapsed().as_nanos();
    entries.push(Entry {
        name: "store.year.analyze143",
        median_ns: base_wall,
        bytes: report.bytes_after,
        peak_rss: peak_rss_bytes(),
    });
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "  store.year.analyze143: {} ({num_hours} hours, {devices} devices)",
        fmt_ns(base_wall)
    );

    // The full synthetic year: a small pool of distinct hours is
    // generated and encoded exactly once (the flows are dropped as soon
    // as each encoding exists), then every one of the 8,760 year hours
    // is a clone of a pooled encoding re-stamped to its own hour —
    // `restamp_hour` rewrites the header hour and recomputes the
    // checksum, bit-identical to a fresh encode. That keeps the build
    // phase's working set at a few MB of encoded bytes so the year
    // row's peak RSS measures the store, not a year of generator state.
    const POOL_HOURS: u32 = 24;
    let pool: Vec<Vec<u8>> = (1..=POOL_HOURS.min(num_hours))
        .map(|i| {
            let traffic = built.scenario.generate_hour(i);
            encode_hour(traffic.hour, &traffic.flows, StoreOptions::default())
        })
        .collect();
    let dir = std::env::temp_dir().join(format!("iotscope-perf-year-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FlowStore::create(&dir, StoreOptions::default()).expect("create year store");
    let year_window = AnalysisWindow::new(window.start(), YEAR_HOURS).expect("year window");
    // 48 hours per segment (vs the 168-hour default) bounds the
    // builder's pending buffer during the year build; the read side is
    // oblivious to segment size.
    let mut builder = SegmentStoreBuilder::new(&store.segments_dir(), 48, Manifest::default())
        .expect("year segment builder");
    for (i, hour) in year_window.iter_hours().enumerate() {
        let mut bytes = pool[i % pool.len()].clone();
        restamp_hour(&mut bytes, hour).expect("restamp year hour");
        builder.push(hour, bytes).expect("push year hour");
    }
    let report = builder.finish().expect("finish year segments");
    eprintln!(
        "  year store: {} segments, {:.1} MB ({:.1}s to build)",
        report.segments_written,
        report.bytes_written as f64 / 1e6,
        t0.elapsed().as_secs_f64()
    );
    let pipeline = AnalysisPipeline::new(db, YEAR_HOURS);
    let t = Instant::now();
    let devices = pipeline
        .run(&store, &AnalyzeOptions::new().window(year_window))
        .expect("year segmented analysis")
        .analysis
        .device_count();
    let year_wall = t.elapsed().as_nanos();
    entries.push(Entry {
        name: "store.year.analyze8760",
        median_ns: year_wall,
        bytes: report.bytes_written,
        peak_rss: peak_rss_bytes(),
    });
    let _ = std::fs::remove_dir_all(&dir);
    eprintln!(
        "  store.year.analyze8760: {} ({:.0} hours/s, {devices} devices, peak rss {:.1} MB)",
        fmt_ns(year_wall),
        f64::from(YEAR_HOURS) / (year_wall as f64 / 1e9),
        peak_rss_bytes() as f64 / (1024.0 * 1024.0)
    );
    entries
}

fn main() {
    let args = parse_args();
    let t0 = Instant::now();
    let (warm, iters) = if args.quick { (1, 3) } else { (2, 7) };
    let (warm_micro, iters_micro) = if args.quick { (3, 9) } else { (5, 15) };

    let mut results: Vec<Entry> = Vec::new();
    if args.year {
        eprintln!("year-scale segmented store ...");
        results.extend(bench_year(args.seed));
    }

    let config = if args.quick {
        PaperScenarioConfig::tiny(args.seed)
    } else {
        PaperScenarioConfig::paper(args.seed, 0.01)
    };
    eprintln!(
        "building scenario ({} devices, quick={}) ...",
        config.synth.total_devices(),
        args.quick
    );
    let built = PaperScenario::build(config);
    let db = &built.inventory.db;
    let window = built.scenario.telescope().window;
    let num_hours = window.num_hours();
    let hours: Vec<HourTraffic> = (1..=num_hours)
        .map(|i| built.scenario.generate_hour(i))
        .collect();
    let busy = hours
        .iter()
        .max_by_key(|h| h.flows.len())
        .expect("non-empty window");
    eprintln!(
        "{} hours, busiest {} flows ({:.1}s)",
        hours.len(),
        busy.flows.len(),
        t0.elapsed().as_secs_f64()
    );

    let mut record = |name: &'static str, bytes: u64, median_ns: u128| {
        let peak_rss = peak_rss_bytes();
        eprintln!("  {name}: {} ({} bytes/iter)", fmt_ns(median_ns), bytes);
        results.push(Entry {
            name,
            median_ns,
            bytes,
            peak_rss,
        });
    };

    // -- analysis ---------------------------------------------------
    record(
        "analysis/ingest_hour",
        flows_bytes(&busy.flows),
        measure(warm, iters, || {
            let mut an = Analyzer::new(db, num_hours);
            an.ingest_hour(busy);
            an.finish().device_count()
        }),
    );

    let analysis = {
        let mut an = Analyzer::new(db, num_hours);
        for h in &hours {
            an.ingest_hour(h);
        }
        an.finish()
    };
    record(
        "analysis/report_build",
        0,
        measure(warm, iters, || {
            Report::build(&ReportContext {
                analysis: &analysis,
                db,
                isps: &built.inventory.isps,
                intel: None,
            })
            .compromised
        }),
    );

    // -- threat-intel scoring (§V join) -----------------------------
    let intel_ctx = args.intel.then(|| {
        eprintln!("threat-intel scoring ...");
        let candidates = select_candidates(&analysis, 4_000);
        let out = IntelBuilder::new(IntelSynthConfig::paper(args.seed)).build(db, &candidates);
        (IntelContext::from_synth(out), candidates)
    });
    if let Some((ctx, candidates)) = &intel_ctx {
        record(
            "intel.index_build_ns",
            0,
            measure(warm_micro, iters_micro, || {
                IntelIndex::build(&ctx.threats, &ctx.malware).len()
            }),
        );
        // One engine fold of the full batch analysis, amortized per
        // flow of the window it summarizes (clamped to ≥1ns so the row
        // never degenerates to zero on tiny runs).
        let total_flows: u64 = hours.iter().map(|h| h.flows.len() as u64).sum();
        let fold_ns = measure(warm, iters, || {
            let mut engine = ScoreEngine::new(db, &ctx.index, ScoreConfig::default());
            engine.fold(&analysis).len()
        });
        record(
            "intel.join_ns_per_flow",
            flows_bytes(&busy.flows),
            (fold_ns / u128::from(total_flows.max(1))).max(1),
        );
        // Ablation: the prefix-bucketed index vs the HashMap+Vec scans
        // it replaced, probing every candidate IP for any intel hit.
        let ips: Vec<Ipv4Addr> = candidates.iter().map(|id| db.device(*id).ip).collect();
        record(
            "intel.lookup_index",
            0,
            measure(warm_micro, iters_micro, || {
                ips.iter()
                    .filter(|ip| ctx.index.lookup(**ip).is_some())
                    .count()
            }),
        );
        record(
            "intel.lookup_hashmap",
            0,
            measure(warm_micro, iters_micro, || {
                ips.iter()
                    .filter(|ip| {
                        !ctx.threats.categories_for(**ip).is_empty()
                            || !ctx.malware.samples_contacting(**ip).is_empty()
                    })
                    .count()
            }),
        );
        // p99 per-hour incremental fold latency over a streaming
        // replay — the alert-path cost the score stage adds to each
        // `push_hour`.
        let mut an = Analyzer::new(db, num_hours);
        let mut engine = ScoreEngine::new(db, &ctx.index, ScoreConfig::default());
        let mut per_hour: Vec<u128> = Vec::with_capacity(hours.len());
        for h in &hours {
            an.ingest_hour(h);
            let t = Instant::now();
            black_box(engine.fold(an.peek()).len());
            per_hour.push(t.elapsed().as_nanos());
        }
        per_hour.sort_unstable();
        record(
            "score.alert_p99_ns",
            0,
            per_hour[(per_hour.len() - 1) * 99 / 100],
        );
    }

    // -- correlation lookups ---------------------------------------
    let index = db.correlation_index();
    record(
        "correlation/lookup_index",
        flows_bytes(&busy.flows),
        measure(warm_micro, iters_micro, || {
            busy.flows
                .iter()
                .filter(|f| {
                    index
                        .correlate(f.src_ip)
                        .is_some_and(|(_, realm)| realm == iotscope_devicedb::Realm::Consumer)
                })
                .count()
        }),
    );
    // The batched path the columnar decoder feeds: the same flows as
    // block-sized ascending src columns through the streaming
    // merge-join, counting Consumer hits like the per-record row (the
    // CI ablation gate compares the two).
    let mut sorted_src: Vec<u32> = busy.flows.iter().map(|f| u32::from(f.src_ip)).collect();
    sorted_src.sort_unstable();
    let mut corr: Vec<Option<(u32, iotscope_devicedb::Realm)>> = Vec::new();
    record(
        "correlation/block_merge_join",
        flows_bytes(&busy.flows),
        measure(warm_micro, iters_micro, || {
            let mut hits = 0usize;
            for chunk in sorted_src.chunks(BLOCK_RECORDS) {
                index.correlate_sorted_block(chunk, &mut corr);
                hits += corr
                    .iter()
                    .filter(|c| {
                        c.is_some_and(|(_, realm)| realm == iotscope_devicedb::Realm::Consumer)
                    })
                    .count();
            }
            hits
        }),
    );
    // The pre-index path: hash-map probe plus the `&IotDevice`
    // dereference ingest needed for the realm.
    let map: HashMap<Ipv4Addr, u32> = db.iter().map(|d| (d.ip, d.id.0)).collect();
    let devices = db.as_slice();
    record(
        "correlation/lookup_hashmap",
        flows_bytes(&busy.flows),
        measure(warm_micro, iters_micro, || {
            busy.flows
                .iter()
                .filter(|f| {
                    map.get(&f.src_ip).is_some_and(|&id| {
                        devices[id as usize].realm() == iotscope_devicedb::Realm::Consumer
                    })
                })
                .count()
        }),
    );
    let trie: PrefixTrie<u32> = db
        .iter()
        .map(|d| (Ipv4Cidr::new(d.ip, 32).unwrap(), d.id.0))
        .collect();
    record(
        "correlation/lookup_trie",
        flows_bytes(&busy.flows),
        measure(warm_micro, iters_micro, || {
            busy.flows
                .iter()
                .filter(|f| trie.longest_match(f.src_ip).is_some())
                .count()
        }),
    );

    // -- store codec ------------------------------------------------
    let encoded = encode_hour(busy.hour, &busy.flows, StoreOptions::default());
    record(
        "store/encode_hour",
        flows_bytes(&busy.flows),
        measure(warm_micro, iters_micro, || {
            encode_hour(busy.hour, &busy.flows, StoreOptions::default()).len()
        }),
    );
    record(
        "store/decode_hour",
        encoded.len() as u64,
        measure(warm_micro, iters_micro, || {
            decode_hour_with(&encoded, DecodeOptions::default())
                .expect("bench decode")
                .flows
                .len()
        }),
    );
    record(
        "store/visit_hour",
        encoded.len() as u64,
        measure(warm_micro, iters_micro, || {
            let mut sink = CountSink::default();
            decode_hour_visit(&encoded, DecodeOptions::default(), &mut sink).expect("bench visit");
            sink.0
        }),
    );
    record(
        "store/decode_block_batch",
        encoded.len() as u64,
        measure(warm_micro, iters_micro, || {
            let mut sink = BlockCountSink::default();
            decode_hour_visit(&encoded, DecodeOptions::default(), &mut sink).expect("bench batch");
            sink.0
        }),
    );

    // -- store-backed pipeline (fused decode→ingest) ----------------
    let dir = std::env::temp_dir().join(format!("iotscope-perf-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FlowStore::create(&dir, StoreOptions::default()).expect("create perf store");
    built
        .scenario
        .write_to_store(&store)
        .expect("write perf store");
    let store_bytes: u64 = store
        .hours_present(&window)
        .iter()
        .map(|&h| {
            store
                .read_hour_bytes(h)
                .map(|b| b.len() as u64)
                .unwrap_or(0)
        })
        .sum();
    let pipeline = AnalysisPipeline::new(db, num_hours);
    record(
        "pipeline/analyze_store_sequential",
        store_bytes,
        measure(warm, iters, || {
            pipeline
                .run(&store, &AnalyzeOptions::new().window(window))
                .expect("perf store analysis")
                .analysis
                .device_count()
        }),
    );
    // Sharded mode scales over the device space, so sweep thread
    // counts; the pooled mode keeps its single historical 4-thread
    // entry for comparison against older BENCH_PRn.json files.
    let parallel_entries: &[(usize, &'static str)] = match args.mode {
        ParallelMode::Sharded => &[
            (2, "pipeline/analyze_store_parallel2"),
            (4, "pipeline/analyze_store_parallel4"),
            (8, "pipeline/analyze_store_parallel8"),
        ],
        ParallelMode::Pooled => &[(4, "pipeline/analyze_store_parallel4")],
    };
    for &(threads, name) in parallel_entries {
        record(
            name,
            store_bytes,
            measure(warm, iters, || {
                pipeline
                    .run(
                        &store,
                        &AnalyzeOptions::new()
                            .window(window)
                            .threads(threads)
                            .mode(args.mode),
                    )
                    .expect("perf store analysis")
                    .analysis
                    .device_count()
            }),
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    // -- resident daemon under load ---------------------------------
    let serve = args.serve.then(|| {
        eprintln!(
            "serving: daemon + {} endpoints under load ...",
            ENDPOINTS.len()
        );
        bench_serve(
            db.clone(),
            built.inventory.isps.clone(),
            num_hours,
            &hours,
            intel_ctx.map(|(ctx, _)| ctx),
            args.quick,
        )
    });
    if let Some(s) = &serve {
        for (name, row) in &s.endpoints {
            eprintln!(
                "  {name}: p50 {} p99 {} ({} reqs, {} errors)",
                fmt_ns(row.p50_ns as u128),
                fmt_ns(row.p99_ns as u128),
                row.requests,
                row.errors
            );
        }
        eprintln!("  serve.ingest_hours_per_s: {:.1}", s.ingest_hours_per_s);
    }

    // -- outputs ----------------------------------------------------
    println!();
    println!(
        "{:<36} {:>12} {:>12} {:>10}",
        "bench", "median", "MB/s", "rss MB"
    );
    for e in &results {
        let mbps = if e.bytes > 0 && e.median_ns > 0 {
            format!("{:.1}", e.bytes as f64 / (e.median_ns as f64 / 1e9) / 1e6)
        } else {
            "-".to_owned()
        };
        println!(
            "{:<36} {:>12} {:>12} {:>10.1}",
            e.name,
            fmt_ns(e.median_ns),
            mbps,
            e.peak_rss as f64 / (1024.0 * 1024.0)
        );
    }

    write_json(&args.out, &results, serve.as_ref()).expect("write bench json");
    eprintln!(
        "\nwrote {} ({:.1}s total)",
        args.out,
        t0.elapsed().as_secs_f64()
    );
}

fn fmt_ns(ns: u128) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Hand-rolled JSON (no serde in the workspace): one object, bench name
/// → `{median_ns, bytes, peak_rss}`, insertion order preserved. With a
/// serve section, `serve.<endpoint>` rows and the bare
/// `serve.ingest_hours_per_s` number follow the bench rows.
fn write_json(path: &str, results: &[Entry], serve: Option<&ServeSection>) -> std::io::Result<()> {
    let mut f = std::fs::File::create(path)?;
    writeln!(f, "{{")?;
    for (i, e) in results.iter().enumerate() {
        let comma = if i + 1 == results.len() && serve.is_none() {
            ""
        } else {
            ","
        };
        // store rows carry a derived throughput field so trends are
        // readable straight from the JSON.
        let mb_per_s = if e.name.starts_with("store") && e.bytes > 0 && e.median_ns > 0 {
            format!(
                ", \"mb_per_s\": {:.3}",
                e.bytes as f64 * 1000.0 / e.median_ns as f64
            )
        } else {
            String::new()
        };
        writeln!(
            f,
            "  \"{}\": {{\"median_ns\": {}, \"bytes\": {}, \"peak_rss\": {}{mb_per_s}}}{comma}",
            e.name, e.median_ns, e.bytes, e.peak_rss
        )?;
    }
    if let Some(s) = serve {
        for (name, row) in &s.endpoints {
            writeln!(
                f,
                "  \"{name}\": {{\"requests\": {}, \"p50_ns\": {}, \"p99_ns\": {}, \"mean_ns\": {}}},",
                row.requests, row.p50_ns, row.p99_ns, row.mean_ns
            )?;
        }
        writeln!(
            f,
            "  \"serve.ingest_hours_per_s\": {:.3}",
            s.ingest_hours_per_s
        )?;
    }
    writeln!(f, "}}")?;
    Ok(())
}
