//! Section V benchmarks (Fig 11, Tables VI and VII): intel population,
//! threat-repository join, and malware-database correlation.

use criterion::{criterion_group, criterion_main, Criterion};
use iotscope_core::analysis::Analyzer;
use iotscope_core::malicious;
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_intel(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(7));
    let mut an = Analyzer::new(&built.inventory.db, 143);
    for i in 1..=24 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();
    let candidates = malicious::select_candidates(&analysis, 400);
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(7)).build(&built.inventory.db, &candidates);

    let mut group = c.benchmark_group("intel");
    group.sample_size(20);
    group.bench_function("populate_stores", |b| {
        b.iter(|| {
            IntelBuilder::new(IntelSynthConfig::paper(7)).build(&built.inventory.db, &candidates)
        })
    });
    group.bench_function("select_candidates", |b| {
        b.iter(|| malicious::select_candidates(&analysis, 400))
    });
    group.bench_function("table_vi_threat_summary", |b| {
        b.iter(|| {
            malicious::threat_summary(&analysis, &built.inventory.db, &intel.threats, &candidates)
        })
    });
    group.bench_function("fig11_packet_cdfs", |b| {
        b.iter(|| {
            malicious::packet_cdfs(&analysis, &built.inventory.db, &intel.threats, &candidates)
        })
    });
    group.bench_function("table_vii_malware_correlation", |b| {
        b.iter(|| {
            malicious::malware_correlation(
                &analysis,
                &built.inventory.db,
                &intel.malware,
                &intel.resolver,
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_intel);
criterion_main!(benches);
