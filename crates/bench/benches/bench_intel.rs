//! Section V benchmarks (Fig 11, Tables VI and VII): intel population,
//! threat-repository join, and malware-database correlation.

use criterion::{criterion_group, criterion_main, Criterion};
use iotscope_core::analysis::Analyzer;
use iotscope_core::malicious;
use iotscope_core::score::ScoreTable;
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_intel::IntelIndex;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_intel(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(7));
    let mut an = Analyzer::new(&built.inventory.db, 143);
    for i in 1..=24 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();
    let candidates = malicious::select_candidates(&analysis, 400);
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(7)).build(&built.inventory.db, &candidates);
    let index = IntelIndex::build(&intel.threats, &intel.malware);
    let scores = ScoreTable::from_batch(&analysis, &built.inventory.db, &index, Default::default());

    let mut group = c.benchmark_group("intel");
    group.sample_size(20);
    group.bench_function("populate_stores", |b| {
        b.iter(|| {
            IntelBuilder::new(IntelSynthConfig::paper(7)).build(&built.inventory.db, &candidates)
        })
    });
    group.bench_function("select_candidates", |b| {
        b.iter(|| malicious::select_candidates(&analysis, 400))
    });
    group.bench_function("index_build", |b| {
        b.iter(|| IntelIndex::build(&intel.threats, &intel.malware))
    });
    group.bench_function("score_table_from_batch", |b| {
        b.iter(|| {
            ScoreTable::from_batch(&analysis, &built.inventory.db, &index, Default::default())
        })
    });
    group.bench_function("table_vi_threat_summary", |b| {
        b.iter(|| malicious::threat_summary(&scores, &built.inventory.db, &index, &candidates))
    });
    group.bench_function("fig11_packet_cdfs", |b| {
        b.iter(|| malicious::packet_cdfs(&scores, &candidates))
    });
    group.bench_function("table_vii_malware_correlation", |b| {
        b.iter(|| malicious::malware_correlation(&scores, &intel.malware, &intel.resolver))
    });
    group.finish();
}

criterion_group!(benches, bench_intel);
criterion_main!(benches);
