//! Store-backed pipeline benchmark: read + decode + aggregate a full
//! simulated window from disk, sequentially and with the parallel
//! reader/decoder pool, reporting hours/s so the thread scaling is
//! directly comparable.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_net::store::{FlowStore, StoreOptions};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_store_parallel(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
    let window = built.scenario.telescope().window;
    let dir = std::env::temp_dir().join(format!("iotscope-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FlowStore::create(&dir, StoreOptions::default()).expect("create bench store");
    built
        .scenario
        .write_to_store(&store)
        .expect("write bench store");
    let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());

    let mut group = c.benchmark_group("store_parallel");
    group.throughput(Throughput::Elements(u64::from(window.num_hours())));
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("analyze_store", threads),
            &threads,
            |b, &t| {
                let options = AnalyzeOptions::new().window(window).threads(t).stats(true);
                b.iter(|| {
                    pipeline
                        .run(&store, &options)
                        .expect("bench store analysis")
                })
            },
        );
    }
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_store_parallel);
criterion_main!(benches);
