//! Store-backed pipeline benchmark: read + decode + aggregate a full
//! simulated window from disk, sequentially and with the parallel
//! reader/decoder pool, reporting hours/s so the thread scaling is
//! directly comparable. A second group compares the v2 and v3 codecs
//! head to head (encode, decode, parallel block decode) and prints the
//! bytes-per-record ablation for each format.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_net::store::{
    decode_hour_with, encode_hour, DecodeOptions, FlowStore, StoreFormat, StoreOptions,
};
use iotscope_net::time::UnixHour;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_store_parallel(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
    let window = built.scenario.telescope().window;
    let dir = std::env::temp_dir().join(format!("iotscope-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FlowStore::create(&dir, StoreOptions::default()).expect("create bench store");
    built
        .scenario
        .write_to_store(&store)
        .expect("write bench store");
    let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());

    let mut group = c.benchmark_group("store_parallel");
    group.throughput(Throughput::Elements(u64::from(window.num_hours())));
    group.sample_size(10);

    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("analyze_store", threads),
            &threads,
            |b, &t| {
                let options = AnalyzeOptions::new().window(window).threads(t).stats(true);
                b.iter(|| {
                    pipeline
                        .run(&store, &options)
                        .expect("bench store analysis")
                })
            },
        );
    }
    group.finish();

    let _ = std::fs::remove_dir_all(&dir);
}

/// v2 vs v3 codec comparison on one paper-shaped telescope hour:
/// encode, decode, and v3 parallel block decode, plus a printed
/// bytes-per-record ablation (the acceptance bar is v3 ≤ 0.8× v2).
fn bench_store_formats(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
    let flows = built.scenario.generate_hour(20).flows;
    let n = flows.len() as u64;
    let hour = UnixHour::new(1);
    let options = |format| StoreOptions {
        format,
        ..StoreOptions::default()
    };

    let mut group = c.benchmark_group("store_formats");
    group.throughput(Throughput::Elements(n));
    group.sample_size(20);

    for (name, format) in [("v2", StoreFormat::V2), ("v3", StoreFormat::V3)] {
        group.bench_with_input(BenchmarkId::new("encode", name), &format, |b, &f| {
            b.iter(|| encode_hour(hour, &flows, options(f)))
        });
        let bytes = encode_hour(hour, &flows, options(format));
        eprintln!(
            "[formats] {name}: hour of {n} flows = {}B ({:.2} bytes/record)",
            bytes.len(),
            bytes.len() as f64 / n as f64
        );
        group.bench_with_input(BenchmarkId::new("decode", name), &bytes, |b, bytes| {
            b.iter_batched(
                || bytes.clone(),
                |buf| decode_hour_with(&buf, DecodeOptions::default()).unwrap(),
                BatchSize::SmallInput,
            )
        });
    }

    let v3_bytes = encode_hour(hour, &flows, options(StoreFormat::V3));
    for threads in [2usize, 4] {
        group.bench_with_input(
            BenchmarkId::new("decode_v3_parallel", threads),
            &threads,
            |b, &t| {
                b.iter_batched(
                    || v3_bytes.clone(),
                    |buf| {
                        decode_hour_with(
                            &buf,
                            DecodeOptions {
                                threads: t,
                                ..DecodeOptions::default()
                            },
                        )
                        .unwrap()
                    },
                    BatchSize::SmallInput,
                )
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_store_parallel, bench_store_formats);
criterion_main!(benches);
