//! End-to-end pipeline benchmarks with the sequential-vs-parallel
//! analysis ablation and traffic-generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_net::store::{FlowStore, StoreOptions};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;

fn bench_pipeline(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(8));
    let traffic: Vec<HourTraffic> = (1..=48).map(|i| built.scenario.generate_hour(i)).collect();
    let flows: u64 = traffic.iter().map(|h| h.flows.len() as u64).sum();
    let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(flows));
    group.sample_size(10);

    group.bench_function("generate_hour", |b| {
        b.iter(|| built.scenario.generate_hour(25).flows.len())
    });
    group.bench_function("analyze_sequential", |b| {
        let options = AnalyzeOptions::new();
        b.iter(|| {
            pipeline
                .run(&traffic, &options)
                .expect("bench analysis")
                .analysis
                .device_count()
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("analyze_parallel", threads),
            &threads,
            |b, &t| {
                let options = AnalyzeOptions::new().threads(t);
                b.iter(|| {
                    pipeline
                        .run(&traffic, &options)
                        .expect("bench analysis")
                        .analysis
                        .device_count()
                })
            },
        );
    }

    // Store-backed analysis over the full window on disk: read plus the
    // fused decode→ingest path (v3 blocks stream into the analyzer).
    let dir = std::env::temp_dir().join(format!("iotscope-bench-pipeline-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let store = FlowStore::create(&dir, StoreOptions::default()).expect("create bench store");
    built
        .scenario
        .write_to_store(&store)
        .expect("write bench store");
    let window = built.scenario.telescope().window;
    let store_flows: u64 = (1..=window.num_hours())
        .map(|i| built.scenario.generate_hour(i).flows.len() as u64)
        .sum();
    group.throughput(Throughput::Elements(store_flows));
    group.bench_function("analyze_store_sequential", |b| {
        let options = AnalyzeOptions::new().window(window);
        b.iter(|| {
            pipeline
                .run(&store, &options)
                .expect("bench store analysis")
                .analysis
                .device_count()
        })
    });
    group.bench_function("analyze_store_parallel4", |b| {
        let options = AnalyzeOptions::new().window(window).threads(4);
        b.iter(|| {
            pipeline
                .run(&store, &options)
                .expect("bench store analysis")
                .analysis
                .device_count()
        })
    });
    group.finish();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
