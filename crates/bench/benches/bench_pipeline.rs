//! End-to-end pipeline benchmarks with the sequential-vs-parallel
//! analysis ablation and traffic-generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;

fn bench_pipeline(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(8));
    let traffic: Vec<HourTraffic> = (1..=48).map(|i| built.scenario.generate_hour(i)).collect();
    let flows: u64 = traffic.iter().map(|h| h.flows.len() as u64).sum();
    let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);

    let mut group = c.benchmark_group("pipeline");
    group.throughput(Throughput::Elements(flows));
    group.sample_size(10);

    group.bench_function("generate_hour", |b| {
        b.iter(|| built.scenario.generate_hour(25).flows.len())
    });
    group.bench_function("analyze_sequential", |b| {
        let options = AnalyzeOptions::new();
        b.iter(|| {
            pipeline
                .run(&traffic, &options)
                .expect("bench analysis")
                .analysis
                .device_count()
        })
    });
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("analyze_parallel", threads),
            &threads,
            |b, &t| {
                let options = AnalyzeOptions::new().threads(t);
                b.iter(|| {
                    pipeline
                        .run(&traffic, &options)
                        .expect("bench analysis")
                        .analysis
                        .device_count()
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);
