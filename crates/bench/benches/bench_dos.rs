//! Backscatter/DoS analysis benchmarks (Figs 6–8).

use criterion::{criterion_group, criterion_main, Criterion};
use iotscope_core::analysis::Analyzer;
use iotscope_core::dos;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_dos(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(6));
    let mut an = Analyzer::new(&built.inventory.db, 143);
    for i in 1..=60 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();

    let mut group = c.benchmark_group("dos");
    group.sample_size(30);
    group.bench_function("fig7_detect_spikes", |b| {
        b.iter(|| dos::detect_spikes(&analysis, 6.0))
    });
    group.bench_function("fig8_victim_countries", |b| {
        b.iter(|| dos::victim_countries(&analysis, &built.inventory.db))
    });
    group.bench_function("summary", |b| b.iter(|| dos::summary(&analysis, 1000)));
    group.bench_function("mann_whitney_hourly", |b| {
        b.iter(|| dos::backscatter_realm_test(&analysis))
    });
    group.finish();
}

criterion_group!(benches, bench_dos);
criterion_main!(benches);
