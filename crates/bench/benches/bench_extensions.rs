//! Benchmarks for the §VI/§VII follow-up features: behavior extraction,
//! fingerprinting, botnet clustering, attribution, and streaming.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iotscope_core::botnet::{self, BotnetConfig};
use iotscope_core::fingerprint::{candidate_iot_devices, FingerprintModel};
use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
use iotscope_core::stream::{StreamConfig, StreamingAnalyzer};
use iotscope_core::{attribution, behavior, malicious};
use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;

fn bench_extensions(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(10));
    let traffic: Vec<HourTraffic> = (1..=48).map(|i| built.scenario.generate_hour(i)).collect();
    let flows: u64 = traffic.iter().map(|h| h.flows.len() as u64).sum();
    let vectors = behavior::extract(&traffic, &built.inventory.db, 143);
    let model = FingerprintModel::train(&vectors).expect("matched devices exist");
    let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
        .run(&traffic, &AnalyzeOptions::new())
        .expect("bench analysis")
        .analysis;
    let candidates = malicious::select_candidates(&analysis, 400);
    let intel =
        IntelBuilder::new(IntelSynthConfig::paper(10)).build(&built.inventory.db, &candidates);

    let mut group = c.benchmark_group("extensions");
    group.sample_size(10);
    group.throughput(Throughput::Elements(flows));

    group.bench_function("behavior_extract", |b| {
        b.iter(|| behavior::extract(&traffic, &built.inventory.db, 143).len())
    });
    group.bench_function("fingerprint_train", |b| {
        b.iter(|| FingerprintModel::train(&vectors).map(|m| m.num_groups()))
    });
    group.bench_function("fingerprint_scan", |b| {
        b.iter(|| candidate_iot_devices(&model, &vectors, 0.55, 20).len())
    });
    group.bench_function("botnet_cluster", |b| {
        b.iter(|| botnet::cluster(&vectors, &BotnetConfig::default()).len())
    });
    group.bench_function("attribution", |b| {
        b.iter(|| {
            attribution::attribute(
                &vectors,
                &built.inventory.db,
                &intel.malware,
                &intel.resolver,
                attribution::DEFAULT_MIN_SCORE,
            )
            .len()
        })
    });
    group.bench_function("streaming_48h", |b| {
        b.iter(|| {
            let mut s = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default());
            for h in &traffic {
                s.push_hour(h);
            }
            s.finish().1.len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_extensions);
criterion_main!(benches);
