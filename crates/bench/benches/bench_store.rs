//! Flowtuple store codec benchmarks, with the delta-encoding ablation
//! called out in DESIGN.md: encode/decode one telescope hour with and
//! without sorted+delta source-address compression.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use iotscope_net::store::{decode_hour, encode_hour, StoreOptions};
use iotscope_net::time::UnixHour;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_store(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
    let hour = built.scenario.generate_hour(20);
    let flows = hour.flows;
    let n = flows.len() as u64;

    let mut group = c.benchmark_group("store");
    group.throughput(Throughput::Elements(n));
    group.sample_size(20);

    group.bench_function("encode_delta", |b| {
        b.iter(|| {
            encode_hour(
                UnixHour::new(1),
                &flows,
                StoreOptions {
                    delta_encode: true,
                    ..StoreOptions::default()
                },
            )
        })
    });
    group.bench_function("encode_plain", |b| {
        b.iter(|| {
            encode_hour(
                UnixHour::new(1),
                &flows,
                StoreOptions {
                    delta_encode: false,
                    ..StoreOptions::default()
                },
            )
        })
    });

    let delta_bytes = encode_hour(
        UnixHour::new(1),
        &flows,
        StoreOptions {
            delta_encode: true,
            ..StoreOptions::default()
        },
    );
    let plain_bytes = encode_hour(
        UnixHour::new(1),
        &flows,
        StoreOptions {
            delta_encode: false,
            ..StoreOptions::default()
        },
    );
    eprintln!(
        "[ablation] hour of {n} flows: delta={}B plain={}B ({:.1}% saved)",
        delta_bytes.len(),
        plain_bytes.len(),
        100.0 * (1.0 - delta_bytes.len() as f64 / plain_bytes.len() as f64)
    );

    group.bench_function("decode_delta", |b| {
        b.iter_batched(
            || delta_bytes.clone(),
            |buf| decode_hour(&buf).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.bench_function("decode_plain", |b| {
        b.iter_batched(
            || plain_bytes.clone(),
            |buf| decode_hour(&buf).unwrap(),
            BatchSize::SmallInput,
        )
    });
    group.finish();
}

criterion_group!(benches, bench_store);
criterion_main!(benches);
