//! Classification benchmarks (Fig 4 and Fig 6): per-flow traffic
//! classification throughput and the derived protocol mix / CDFs.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iotscope_core::analysis::Analyzer;
use iotscope_core::characterize;
use iotscope_core::classify::classify;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_classify(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(3));
    let hour = built.scenario.generate_hour(50);
    let n = hour.flows.len() as u64;

    let mut group = c.benchmark_group("classify");
    group.throughput(Throughput::Elements(n));
    group.sample_size(30);

    group.bench_function("classify_flows", |b| {
        b.iter(|| {
            hour.flows
                .iter()
                .map(|f| classify(f) as usize)
                .sum::<usize>()
        })
    });

    let mut an = Analyzer::new(&built.inventory.db, 143);
    for i in 1..=24 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();
    group.bench_function("fig4_protocol_mix", |b| {
        b.iter(|| characterize::protocol_mix(&analysis))
    });
    group.bench_function("fig6_packet_cdfs", |b| {
        b.iter(|| characterize::packet_cdfs(&analysis))
    });
    group.bench_function("mann_whitney_realms", |b| {
        b.iter(|| characterize::realm_packet_test(&analysis))
    });
    group.finish();
}

criterion_group!(benches, bench_classify);
criterion_main!(benches);
