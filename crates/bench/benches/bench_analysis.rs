//! Aggregation-core benchmarks: hour ingest, N-way partial merge, and
//! full report construction over a paper-scale synthetic window.
//!
//! These are the hot paths the columnar device table targets; the
//! before/after numbers are recorded in EXPERIMENTS.md.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use iotscope_core::analysis::{Analysis, Analyzer};
use iotscope_core::report::{Report, ReportContext};
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use iotscope_telescope::HourTraffic;

const MERGE_WAYS: usize = 8;

fn bench_analysis(c: &mut Criterion) {
    // Paper-sized inventory (331k devices) at a reduced packet scale: the
    // per-flow work is what we measure, and the device axis is what the
    // columnar layout is about.
    let built = PaperScenario::build(PaperScenarioConfig::paper(7, 0.01));
    let db = &built.inventory.db;
    let hours: Vec<HourTraffic> = (1..=143).map(|i| built.scenario.generate_hour(i)).collect();
    let total_flows: u64 = hours.iter().map(|h| h.flows.len() as u64).sum();
    // A busy hour from the middle of the window (during the scanning ramp).
    let busy = hours
        .iter()
        .max_by_key(|h| h.flows.len())
        .expect("non-empty window");

    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);

    group.throughput(Throughput::Elements(busy.flows.len() as u64));
    group.bench_function("ingest_hour", |b| {
        b.iter(|| {
            let mut an = Analyzer::new(db, 143);
            an.ingest_hour(busy);
            an.finish().device_count()
        })
    });

    // N-way merge of partial analyses over disjoint hour chunks — the
    // reduction step of the parallel pipeline, isolated.
    let chunk = hours.len().div_ceil(MERGE_WAYS);
    let partials: Vec<Analysis> = hours
        .chunks(chunk)
        .map(|c| {
            let mut an = Analyzer::new(db, 143);
            for h in c {
                an.ingest_hour(h);
            }
            an.finish()
        })
        .collect();
    group.throughput(Throughput::Elements(total_flows));
    group.bench_function("merge_8way", |b| {
        b.iter_batched(
            || partials.clone(),
            |parts| {
                let mut it = parts.into_iter();
                let mut acc = Analyzer::resume(db, it.next().expect("at least one partial"));
                for p in it {
                    acc.merge(Analyzer::resume(db, p));
                }
                acc.finish().device_count()
            },
            BatchSize::LargeInput,
        )
    });

    // Full report build over the whole window (every figure and table).
    let analysis = {
        let mut an = Analyzer::new(db, 143);
        for h in &hours {
            an.ingest_hour(h);
        }
        an.finish()
    };
    group.throughput(Throughput::Elements(analysis.device_count() as u64));
    group.bench_function("report_build", |b| {
        b.iter(|| {
            let report = Report::build(&ReportContext {
                analysis: &analysis,
                db,
                isps: &built.inventory.isps,
                intel: None,
            });
            report.compromised
        })
    });
    group.finish();
}

criterion_group!(benches, bench_analysis);
criterion_main!(benches);
