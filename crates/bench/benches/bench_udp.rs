//! UDP analysis benchmarks (Fig 5 and Table IV).

use criterion::{criterion_group, criterion_main, Criterion};
use iotscope_core::analysis::Analyzer;
use iotscope_core::udp;
use iotscope_devicedb::Realm;
use iotscope_net::ports::ServiceRegistry;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_udp(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(4));
    let mut an = Analyzer::new(&built.inventory.db, 143);
    for i in 1..=48 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();
    let registry = ServiceRegistry::standard();

    let mut group = c.benchmark_group("udp");
    group.sample_size(30);
    group.bench_function("table_iv_top_ports", |b| {
        b.iter(|| udp::top_ports(&analysis, &registry, 10))
    });
    group.bench_function("fig5_summary", |b| b.iter(|| udp::summary(&analysis)));
    group.bench_function("fig5_ports_ips_pearson", |b| {
        b.iter(|| udp::ports_ips_correlation(&analysis, Realm::Consumer))
    });
    group.finish();
}

criterion_group!(benches, bench_udp);
criterion_main!(benches);
