//! Correlation benchmarks (Figs 1b/2/3, Tables I–III): joining darknet
//! sources against the inventory, plus the bucketed-index vs hash-map vs
//! prefix-trie device lookup ablation from DESIGN.md §3d.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iotscope_core::analysis::Analyzer;
use iotscope_core::characterize;
use iotscope_devicedb::Realm;
use iotscope_net::addr::Ipv4Cidr;
use iotscope_net::trie::PrefixTrie;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
use std::collections::HashMap;
use std::net::Ipv4Addr;

fn bench_correlation(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(2));
    let hour = built.scenario.generate_hour(30);
    let db = &built.inventory.db;
    let n = hour.flows.len() as u64;

    let mut group = c.benchmark_group("correlation");
    group.throughput(Throughput::Elements(n));
    group.sample_size(20);

    group.bench_function("ingest_hour", |b| {
        b.iter(|| {
            let mut an = Analyzer::new(db, 143);
            an.ingest_hour(&hour);
            an.finish().device_count()
        })
    });

    // Ablation: what ingest needs per flow is `(device, realm)`. The
    // /16-bucketed index resolves both in one probe; the pre-index
    // implementation (rebuilt explicitly here) was a hash-map probe
    // plus an `&IotDevice` dereference for the realm; the /32 prefix
    // trie resolves the id only.
    let trie: PrefixTrie<u32> = db
        .iter()
        .map(|d| (Ipv4Cidr::new(d.ip, 32).unwrap(), d.id.0))
        .collect();
    let map: HashMap<Ipv4Addr, u32> = db.iter().map(|d| (d.ip, d.id.0)).collect();
    let devices = db.as_slice();
    let index = db.correlation_index();
    group.bench_function("lookup_index", |b| {
        b.iter(|| {
            hour.flows
                .iter()
                .filter(|f| {
                    index
                        .correlate(f.src_ip)
                        .is_some_and(|(_, realm)| realm == Realm::Consumer)
                })
                .count()
        })
    });
    group.bench_function("lookup_hashmap", |b| {
        b.iter(|| {
            hour.flows
                .iter()
                .filter(|f| {
                    map.get(&f.src_ip)
                        .is_some_and(|&id| devices[id as usize].realm() == Realm::Consumer)
                })
                .count()
        })
    });
    group.bench_function("lookup_trie", |b| {
        b.iter(|| {
            hour.flows
                .iter()
                .filter(|f| trie.longest_match(f.src_ip).is_some())
                .count()
        })
    });

    // Characterization tables over a multi-hour analysis.
    let mut an = Analyzer::new(db, 143);
    for i in 1..=24 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();
    group.bench_function("fig1b_country_ranking", |b| {
        b.iter(|| characterize::compromised_by_country(&analysis, db).len())
    });
    group.bench_function("fig2_discovery_curve", |b| {
        b.iter(|| analysis.discovery_curve())
    });
    group.bench_function("table_i_isp_ranking", |b| {
        b.iter(|| characterize::top_isps(&analysis, db, &built.inventory.isps, Realm::Consumer, 5))
    });
    group.bench_function("table_iii_cps_services", |b| {
        b.iter(|| characterize::cps_service_breakdown(&analysis, db).len())
    });
    group.finish();
}

criterion_group!(benches, bench_correlation);
criterion_main!(benches);
