//! Correlation benchmarks (Figs 1b/2/3, Tables I–III): joining darknet
//! sources against the inventory, plus the hash-map vs prefix-trie device
//! lookup ablation from DESIGN.md.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use iotscope_core::analysis::Analyzer;
use iotscope_core::characterize;
use iotscope_devicedb::Realm;
use iotscope_net::addr::Ipv4Cidr;
use iotscope_net::trie::PrefixTrie;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_correlation(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(2));
    let hour = built.scenario.generate_hour(30);
    let db = &built.inventory.db;
    let n = hour.flows.len() as u64;

    let mut group = c.benchmark_group("correlation");
    group.throughput(Throughput::Elements(n));
    group.sample_size(20);

    group.bench_function("ingest_hour", |b| {
        b.iter(|| {
            let mut an = Analyzer::new(db, 143);
            an.ingest_hour(&hour);
            an.finish().device_count()
        })
    });

    // Ablation: exact-IP lookup via the analyzer's hash map vs a /32
    // prefix trie.
    let trie: PrefixTrie<u32> = db
        .iter()
        .map(|d| (Ipv4Cidr::new(d.ip, 32).unwrap(), d.id.0))
        .collect();
    group.bench_function("lookup_hashmap", |b| {
        b.iter(|| {
            hour.flows
                .iter()
                .filter(|f| db.lookup_ip(f.src_ip).is_some())
                .count()
        })
    });
    group.bench_function("lookup_trie", |b| {
        b.iter(|| {
            hour.flows
                .iter()
                .filter(|f| trie.longest_match(f.src_ip).is_some())
                .count()
        })
    });

    // Characterization tables over a multi-hour analysis.
    let mut an = Analyzer::new(db, 143);
    for i in 1..=24 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();
    group.bench_function("fig1b_country_ranking", |b| {
        b.iter(|| characterize::compromised_by_country(&analysis, db).len())
    });
    group.bench_function("fig2_discovery_curve", |b| {
        b.iter(|| analysis.discovery_curve())
    });
    group.bench_function("table_i_isp_ranking", |b| {
        b.iter(|| characterize::top_isps(&analysis, db, &built.inventory.isps, Realm::Consumer, 5))
    });
    group.bench_function("table_iii_cps_services", |b| {
        b.iter(|| characterize::cps_service_breakdown(&analysis, db).len())
    });
    group.finish();
}

criterion_group!(benches, bench_correlation);
criterion_main!(benches);
