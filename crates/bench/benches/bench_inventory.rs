//! Inventory benchmarks (Fig 1a): synthetic generation and deployment
//! ranking.

use criterion::{criterion_group, criterion_main, Criterion};
use iotscope_core::characterize;
use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};

fn bench_inventory(c: &mut Criterion) {
    let mut group = c.benchmark_group("inventory");
    group.sample_size(10);
    group.bench_function("build_small_inventory", |b| {
        b.iter(|| {
            InventoryBuilder::new(SynthConfig::small(9))
                .build()
                .db
                .len()
        })
    });

    let out = InventoryBuilder::new(SynthConfig::small(9)).build();
    group.bench_function("fig1a_country_deployment", |b| {
        b.iter(|| characterize::country_deployment(&out.db).len())
    });
    group.bench_function("lookup_ip_hit_rate", |b| {
        let probes: Vec<std::net::Ipv4Addr> = out.db.iter().take(500).map(|d| d.ip).collect();
        b.iter(|| {
            probes
                .iter()
                .filter(|ip| out.db.lookup_ip(**ip).is_some())
                .count()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_inventory);
criterion_main!(benches);
