//! Scanning analysis benchmarks (Fig 9, Table V, Fig 10).

use criterion::{criterion_group, criterion_main, Criterion};
use iotscope_core::analysis::Analyzer;
use iotscope_core::scan;
use iotscope_devicedb::Realm;
use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

fn bench_scan(c: &mut Criterion) {
    let built = PaperScenario::build(PaperScenarioConfig::tiny(5));
    let mut an = Analyzer::new(&built.inventory.db, 143);
    for i in 1..=48 {
        an.ingest_hour(&built.scenario.generate_hour(i));
    }
    let analysis = an.finish();

    let mut group = c.benchmark_group("scan");
    group.sample_size(30);
    group.bench_function("table_v_protocol_table", |b| {
        b.iter(|| scan::protocol_table(&analysis))
    });
    group.bench_function("fig9_summary", |b| b.iter(|| scan::summary(&analysis)));
    group.bench_function("fig9_port_spikes", |b| {
        b.iter(|| scan::port_spike_intervals(&analysis, Realm::Consumer, 8.0))
    });
    group.bench_function("fig10_scanners_pearson", |b| {
        b.iter(|| scan::scanners_vs_packets_correlation(&analysis))
    });
    group.finish();
}

criterion_group!(benches, bench_scan);
criterion_main!(benches);
