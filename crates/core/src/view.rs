//! Memoized derived queries over a finished [`Analysis`].
//!
//! Downstream consumers (characterization, DoS/scan/UDP summaries,
//! reporting, the CLI) repeatedly ask the same questions of an analysis:
//! "all compromised devices, sorted", "the DoS victims", "the consumer
//! cohort". Before this layer each such call re-scanned and re-sorted
//! the per-device state; [`AnalysisView`] computes each answer once,
//! caches it inside the `Analysis` (a [`OnceLock`] per query), and hands
//! out borrowed slices.
//!
//! # Memoization contract
//!
//! Caches are invalidated whenever the owning [`Analyzer`] mutates the
//! analysis (`ingest_hour`, `merge`), so streaming `peek()` snapshots
//! stay correct. Cached values never participate in `Clone`
//! (a clone starts cold) or `PartialEq`/`Debug` (two analyses with the
//! same aggregates are equal regardless of which queries have been
//! memoized) — so the sequential-vs-parallel determinism contract is
//! unaffected by *when* views are consulted. If you mutate an
//! `Analysis`'s public fields by hand, call
//! [`Analysis::invalidate_views`] afterwards.
//!
//! [`Analyzer`]: crate::analysis::Analyzer

use crate::analysis::{class_idx, realm_idx, Analysis};
use crate::classify::TrafficClass;
use iotscope_devicedb::{DeviceId, Realm};
use std::sync::OnceLock;

/// Lazily-computed query results stored inside [`Analysis`].
///
/// Always equal to any other cache and clones as a cold cache, so the
/// containing `Analysis` can keep deriving `Clone`/`PartialEq`.
#[derive(Default)]
pub(crate) struct ViewCache {
    /// All correlated devices, sorted by id.
    compromised: OnceLock<Vec<DeviceId>>,
    /// Per-realm partitions of the compromised set, sorted by id.
    realms: OnceLock<[Vec<DeviceId>; 2]>,
    /// Per-class cohorts (devices with >0 packets of the class), sorted.
    cohorts: OnceLock<[Vec<DeviceId>; 5]>,
    /// Devices with any scanning traffic (TCP SYN or ICMP echo), sorted.
    scanners: OnceLock<Vec<DeviceId>>,
    /// `(consumer, cps)` compromised counts.
    realm_counts: OnceLock<(usize, usize)>,
    /// Total packets over all correlated devices.
    total_packets: OnceLock<u64>,
}

impl ViewCache {
    /// Drop every memoized result (the `OnceLock`s become unset again).
    pub(crate) fn reset(&mut self) {
        *self = ViewCache::default();
    }
}

impl Clone for ViewCache {
    fn clone(&self) -> Self {
        ViewCache::default()
    }
}

impl PartialEq for ViewCache {
    fn eq(&self, _: &Self) -> bool {
        true
    }
}

impl Eq for ViewCache {}

impl std::fmt::Debug for ViewCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("ViewCache { .. }")
    }
}

/// Borrowed, memoizing query interface over an [`Analysis`] — obtain
/// one with [`Analysis::view`].
///
/// Every method is O(devices) the first time and O(1) afterwards, and
/// returns borrowed data; convert with `.to_vec()` only if you need
/// ownership.
///
/// # Example
///
/// ```
/// use iotscope_core::analysis::Analyzer;
/// use iotscope_devicedb::DeviceDb;
///
/// let db = DeviceDb::new();
/// let analysis = Analyzer::new(&db, 4).finish();
/// let view = analysis.view();
/// assert!(view.compromised().is_empty());
/// assert_eq!(view.realm_counts(), (0, 0));
/// ```
#[derive(Clone, Copy)]
pub struct AnalysisView<'a> {
    analysis: &'a Analysis,
}

impl<'a> AnalysisView<'a> {
    pub(crate) fn new(analysis: &'a Analysis) -> Self {
        AnalysisView { analysis }
    }

    /// All correlated (compromised) devices, sorted by id.
    pub fn compromised(&self) -> &'a [DeviceId] {
        self.cache().compromised.get_or_init(|| {
            let mut v = self.analysis.devices.ids().to_vec();
            v.sort_unstable();
            v
        })
    }

    /// The compromised devices of one realm, sorted by id.
    pub fn realm_devices(&self, realm: Realm) -> &'a [DeviceId] {
        let parts = self.cache().realms.get_or_init(|| {
            let mut parts: [Vec<DeviceId>; 2] = [Vec::new(), Vec::new()];
            for obs in self.analysis.devices.rows() {
                parts[realm_idx(obs.realm)].push(obs.device);
            }
            for p in &mut parts {
                p.sort_unstable();
            }
            parts
        });
        &parts[realm_idx(realm)]
    }

    /// Devices with at least one packet of `class`, sorted by id.
    pub fn cohort(&self, class: TrafficClass) -> &'a [DeviceId] {
        let cohorts = self.cache().cohorts.get_or_init(|| {
            let mut cohorts: [Vec<DeviceId>; 5] = Default::default();
            for obs in self.analysis.devices.rows() {
                for (c, cohort) in cohorts.iter_mut().enumerate() {
                    if obs.packets_by_class[c] > 0 {
                        cohort.push(obs.device);
                    }
                }
            }
            for c in &mut cohorts {
                c.sort_unstable();
            }
            cohorts
        });
        &cohorts[class_idx(class)]
    }

    /// Devices that emitted any backscatter — the inferred DoS victims,
    /// sorted by id.
    pub fn dos_victims(&self) -> &'a [DeviceId] {
        self.cohort(TrafficClass::Backscatter)
    }

    /// Devices that emitted TCP scanning traffic, sorted by id.
    pub fn tcp_scanners(&self) -> &'a [DeviceId] {
        self.cohort(TrafficClass::TcpScan)
    }

    /// Devices that emitted UDP traffic, sorted by id.
    pub fn udp_devices(&self) -> &'a [DeviceId] {
        self.cohort(TrafficClass::Udp)
    }

    /// Devices with any scanning traffic (TCP SYN *or* ICMP echo),
    /// sorted by id.
    pub fn scanners(&self) -> &'a [DeviceId] {
        self.cache().scanners.get_or_init(|| {
            let mut v: Vec<DeviceId> = self
                .analysis
                .devices
                .rows()
                .filter(|o| o.scan_packets() > 0)
                .map(|o| o.device)
                .collect();
            v.sort_unstable();
            v
        })
    }

    /// Count of correlated devices per realm `(consumer, cps)`.
    pub fn realm_counts(&self) -> (usize, usize) {
        *self.cache().realm_counts.get_or_init(|| {
            let consumer = self
                .analysis
                .devices
                .rows()
                .filter(|o| o.realm == Realm::Consumer)
                .count();
            (consumer, self.analysis.devices.len() - consumer)
        })
    }

    /// Total packets attributed to correlated devices.
    pub fn total_packets(&self) -> u64 {
        *self.cache().total_packets.get_or_init(|| {
            self.analysis
                .devices
                .rows()
                .map(|o| o.total_packets())
                .sum()
        })
    }

    fn cache(&self) -> &'a ViewCache {
        &self.analysis.cache
    }
}

impl std::fmt::Debug for AnalysisView<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AnalysisView")
            .field("devices", &self.analysis.devices.len())
            .finish()
    }
}
