//! The unified query surface over an analysis: one [`QueryApi`] trait
//! implemented once against a published snapshot and consumed by every
//! front end — the HTTP daemon's endpoint handlers, `Report::build`,
//! and the CLI `investigate`/`diff`/`watch` commands.
//!
//! Before this layer, each consumer re-derived its aggregates ad hoc
//! from `ReportContext` (one scanned the device table for country
//! counts, another for ISP rankings, a third re-sorted candidates), so
//! the same question had several slightly different answers scattered
//! across the tree. [`QueryContext`] is the single implementation:
//! realm counts come from the memoized [`AnalysisView`], deployment
//! counts from the [`DeviceDb`]'s own memos (`DbCache` is an
//! implementation detail behind this trait), and rankings from one scan
//! each.
//!
//! The trait is object-safe, so the HTTP layer can hold a
//! `&dyn QueryApi` without knowing whether it queries a live epoch
//! snapshot or a finished batch run.
//!
//! [`AnalysisView`]: crate::view::AnalysisView

use crate::analysis::{realm_idx, Analysis};
use crate::characterize::{self, CountryRow, IspRow};
use crate::malicious;
use crate::score::{ScoreRow, ScoreTable};
use crate::stream::Alert;
use iotscope_devicedb::isp::IspRegistry;
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use std::collections::HashSet;
use std::net::Ipv4Addr;

/// Top-line aggregates for one epoch — the `/summary` endpoint and the
/// header of every report.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Publication epoch (0 = nothing ingested; batch runs report the
    /// ingested hour count).
    pub epoch: u64,
    /// Window length in hours.
    pub hours_window: u32,
    /// Hours ingested so far.
    pub hours_ingested: u32,
    /// Correlated (compromised) devices.
    pub devices: usize,
    /// Compromised consumer devices.
    pub consumer: usize,
    /// Compromised CPS devices.
    pub cps: usize,
    /// Countries hosting at least one compromised device.
    pub countries: usize,
    /// Total packets attributed to compromised devices.
    pub total_packets: u64,
    /// Flows from sources outside the inventory.
    pub unmatched_flows: u64,
    /// Packets from unmatched sources.
    pub unmatched_packets: u64,
    /// Alerts raised so far.
    pub alerts: usize,
}

/// Everything known about one device: inventory identity joined with
/// its observed telescope activity — the `/device/{id}` endpoint.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceDetail {
    /// The device.
    pub id: DeviceId,
    /// Its public address.
    pub ip: Ipv4Addr,
    /// Its realm.
    pub realm: Realm,
    /// Hosting country name.
    pub country: String,
    /// Hosting ISP name.
    pub isp: String,
    /// First interval (1-based) seen at the telescope.
    pub first_interval: u32,
    /// Days with at least one observed flow.
    pub days_active: u32,
    /// Flow records observed.
    pub flows: u64,
    /// Packets per traffic class (indexed by
    /// [`class_idx`](crate::analysis::class_idx)).
    pub packets_by_class: [u64; 5],
}

impl DeviceDetail {
    /// Total packets across classes.
    pub fn total_packets(&self) -> u64 {
        self.packets_by_class.iter().sum()
    }
}

/// Deployment vs compromise for one realm — the `/realms` endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RealmStats {
    /// The realm.
    pub realm: Realm,
    /// Devices in the inventory.
    pub deployed: usize,
    /// Devices observed at the telescope.
    pub compromised: usize,
    /// Packets attributed to the realm (all transports).
    pub packets: u64,
}

/// The query surface every consumer reads through.
///
/// Implemented by [`QueryContext`] over `(analysis, inventory, alerts)`;
/// the serve daemon wraps each published snapshot in one, and
/// [`Report::build`](crate::report::Report::build) constructs one
/// internally for batch runs.
pub trait QueryApi {
    /// The snapshot's publication epoch.
    fn epoch(&self) -> u64;

    /// Top-line aggregates (O(devices): realm counts and packet totals
    /// are memoized, countries cost one scan).
    fn summary(&self) -> Summary;

    /// Inventory identity joined with observed activity, `None` if the
    /// device was never observed (or is not in the inventory).
    fn device(&self, id: DeviceId) -> Option<DeviceDetail>;

    /// Deployment vs compromise per realm, `[consumer, cps]`.
    fn realms(&self) -> [RealmStats; 2];

    /// Countries ranked by compromised devices, descending, with the
    /// percent-compromised-of-deployed line (all rows; take what you
    /// need — the count of rows is the compromised-country count).
    fn countries(&self) -> Vec<CountryRow>;

    /// The top-`n` ISPs hosting compromised devices of `realm`.
    fn isps(&self, realm: Realm, n: usize) -> Vec<IspRow>;

    /// Alerts raised so far (empty for batch runs).
    fn alerts(&self) -> &[Alert];

    /// §V-A's exploration set: every DoS victim plus the top-`n`
    /// devices per realm by scanning+UDP packets.
    fn candidates(&self, top_n_per_realm: usize) -> Vec<DeviceId>;

    /// The `n` highest-scoring devices (points > 0, points descending
    /// then id ascending) — the `/score/top` endpoint. Empty when no
    /// score table is attached (intel disabled).
    fn top_scores(&self, n: usize) -> Vec<ScoreRow>;

    /// One device's maliciousness score — the `/score/{id}` endpoint.
    /// `None` when the device is unscored or intel is disabled.
    fn score(&self, id: DeviceId) -> Option<ScoreRow>;
}

/// The one [`QueryApi`] implementation: borrowed views over an
/// analysis, the inventory it was correlated against, and the alert log.
#[derive(Debug, Clone, Copy)]
pub struct QueryContext<'a> {
    analysis: &'a Analysis,
    db: &'a DeviceDb,
    isps: &'a IspRegistry,
    alerts: &'a [Alert],
    scores: Option<&'a ScoreTable>,
    epoch: u64,
    hours_ingested: u32,
}

impl<'a> QueryContext<'a> {
    /// A context over a live snapshot: `epoch` publications,
    /// `hours_ingested` hours so far, `alerts` raised so far.
    pub fn new(
        analysis: &'a Analysis,
        db: &'a DeviceDb,
        isps: &'a IspRegistry,
        alerts: &'a [Alert],
        epoch: u64,
        hours_ingested: u32,
    ) -> Self {
        QueryContext {
            analysis,
            db,
            isps,
            alerts,
            scores: None,
            epoch,
            hours_ingested,
        }
    }

    /// Attach a score table, enabling [`QueryApi::top_scores`] and
    /// [`QueryApi::score`].
    pub fn with_scores(mut self, scores: Option<&'a ScoreTable>) -> Self {
        self.scores = scores;
        self
    }

    /// A context over a finished batch run: no alerts, epoch = window
    /// hours (everything ingested).
    pub fn batch(analysis: &'a Analysis, db: &'a DeviceDb, isps: &'a IspRegistry) -> Self {
        QueryContext {
            analysis,
            db,
            isps,
            alerts: &[],
            scores: None,
            epoch: u64::from(analysis.hours),
            hours_ingested: analysis.hours,
        }
    }

    /// The underlying analysis (for consumers that need aggregates the
    /// trait does not abstract, e.g. the full report's figure series).
    pub fn analysis(&self) -> &'a Analysis {
        self.analysis
    }
}

impl QueryApi for QueryContext<'_> {
    fn epoch(&self) -> u64 {
        self.epoch
    }

    fn summary(&self) -> Summary {
        let view = self.analysis.view();
        let (consumer, cps) = view.realm_counts();
        let countries = self
            .analysis
            .devices
            .rows()
            .map(|o| self.db.device(o.device).country)
            .collect::<HashSet<_>>()
            .len();
        Summary {
            epoch: self.epoch,
            hours_window: self.analysis.hours,
            hours_ingested: self.hours_ingested,
            devices: self.analysis.device_count(),
            consumer,
            cps,
            countries,
            total_packets: view.total_packets(),
            unmatched_flows: self.analysis.unmatched_flows,
            unmatched_packets: self.analysis.unmatched_packets,
            alerts: self.alerts.len(),
        }
    }

    fn device(&self, id: DeviceId) -> Option<DeviceDetail> {
        if id.0 as usize >= self.db.len() {
            return None;
        }
        let obs = self.analysis.devices.get(id)?;
        let dev = self.db.device(id);
        Some(DeviceDetail {
            id,
            ip: dev.ip,
            realm: obs.realm,
            country: dev.country.name().to_owned(),
            isp: self.isps.isp(dev.isp).name().to_owned(),
            first_interval: obs.first_interval,
            days_active: obs.days_active.count_ones(),
            flows: obs.flows,
            packets_by_class: obs.packets_by_class,
        })
    }

    fn realms(&self) -> [RealmStats; 2] {
        let (dep_consumer, dep_cps) = self.db.realm_counts();
        let (consumer, cps) = self.analysis.view().realm_counts();
        let packets = |r: usize| -> u64 { self.analysis.protocol_packets[r].iter().sum() };
        [
            RealmStats {
                realm: Realm::Consumer,
                deployed: dep_consumer,
                compromised: consumer,
                packets: packets(realm_idx(Realm::Consumer)),
            },
            RealmStats {
                realm: Realm::Cps,
                deployed: dep_cps,
                compromised: cps,
                packets: packets(realm_idx(Realm::Cps)),
            },
        ]
    }

    fn countries(&self) -> Vec<CountryRow> {
        characterize::compromised_by_country(self.analysis, self.db)
    }

    fn isps(&self, realm: Realm, n: usize) -> Vec<IspRow> {
        characterize::top_isps(self.analysis, self.db, self.isps, realm, n)
    }

    fn alerts(&self) -> &[Alert] {
        self.alerts
    }

    fn candidates(&self, top_n_per_realm: usize) -> Vec<DeviceId> {
        malicious::select_candidates(self.analysis, top_n_per_realm)
    }

    fn top_scores(&self, n: usize) -> Vec<ScoreRow> {
        self.scores.map(|t| t.top(n)).unwrap_or_default()
    }

    fn score(&self, id: DeviceId) -> Option<ScoreRow> {
        self.scores.and_then(|t| t.get(id))
    }
}

/// Ensure the trait stays object-safe (the HTTP layer holds `&dyn`).
fn _assert_object_safe(api: &dyn QueryApi) -> u64 {
    api.epoch()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::class_idx;
    use crate::classify::TrafficClass;
    use crate::pipeline::{AnalysisPipeline, AnalyzeOptions};
    use crate::report::{Report, ReportContext};
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

    fn built_and_analysis() -> (iotscope_telescope::paper::BuiltScenario, Analysis) {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(61));
        let traffic = built.scenario.generate();
        let analysis = AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        (built, analysis)
    }

    #[test]
    fn summary_matches_view_and_db() {
        let (built, analysis) = built_and_analysis();
        let api = QueryContext::batch(&analysis, &built.inventory.db, &built.inventory.isps);
        let s = api.summary();
        assert_eq!(s.devices, analysis.device_count());
        assert_eq!((s.consumer, s.cps), analysis.view().realm_counts());
        assert_eq!(s.consumer + s.cps, s.devices);
        assert_eq!(s.total_packets, analysis.view().total_packets());
        assert_eq!(
            s.countries,
            characterize::compromised_country_count(&analysis, &built.inventory.db)
        );
        assert_eq!(s.epoch, 143);
        assert_eq!(s.hours_ingested, 143);
        assert_eq!(s.alerts, 0);
    }

    #[test]
    fn device_detail_joins_inventory_and_observation() {
        let (built, analysis) = built_and_analysis();
        let api = QueryContext::batch(&analysis, &built.inventory.db, &built.inventory.isps);
        let id = analysis.view().compromised()[0];
        let d = api.device(id).expect("observed device has detail");
        let dev = built.inventory.db.device(id);
        assert_eq!(d.ip, dev.ip);
        assert_eq!(d.realm, dev.realm());
        assert_eq!(d.country, dev.country.name());
        assert!(d.total_packets() > 0);
        assert!(d.first_interval >= 1);
        // Out-of-inventory ids resolve to None instead of panicking.
        assert!(api.device(DeviceId(u32::MAX)).is_none());
    }

    #[test]
    fn realms_and_countries_agree_with_characterize() {
        let (built, analysis) = built_and_analysis();
        let api = QueryContext::batch(&analysis, &built.inventory.db, &built.inventory.isps);
        let realms = api.realms();
        assert_eq!(
            (realms[0].deployed, realms[1].deployed),
            built.inventory.db.realm_counts()
        );
        assert_eq!(
            (realms[0].compromised, realms[1].compromised),
            analysis.view().realm_counts()
        );
        assert!(realms[0].packets > 0);
        let rows = api.countries();
        assert_eq!(
            rows,
            characterize::compromised_by_country(&analysis, &built.inventory.db)
        );
        assert_eq!(rows.len(), api.summary().countries);
        assert_eq!(
            api.isps(Realm::Consumer, 5),
            characterize::top_isps(
                &analysis,
                &built.inventory.db,
                &built.inventory.isps,
                Realm::Consumer,
                5
            )
        );
        assert_eq!(
            api.candidates(100),
            malicious::select_candidates(&analysis, 100)
        );
    }

    #[test]
    fn report_built_on_the_api_is_unchanged() {
        // Report::build routes through QueryContext internally; its
        // fields must equal the direct characterize computations.
        let (built, analysis) = built_and_analysis();
        let report = Report::build(&ReportContext {
            analysis: &analysis,
            db: &built.inventory.db,
            isps: &built.inventory.isps,
            intel: None,
        });
        assert_eq!(report.compromised, analysis.view().realm_counts());
        assert_eq!(
            report.countries,
            characterize::compromised_country_count(&analysis, &built.inventory.db)
        );
        let fig1b: Vec<_> = characterize::compromised_by_country(&analysis, &built.inventory.db)
            .into_iter()
            .take(15)
            .collect();
        assert_eq!(report.fig1b, fig1b);
    }

    #[test]
    fn score_queries_require_an_attached_table() {
        use crate::score::{ScoreConfig, ScoreTable};
        use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
        use iotscope_intel::IntelIndex;

        let (built, analysis) = built_and_analysis();
        let bare = QueryContext::batch(&analysis, &built.inventory.db, &built.inventory.isps);
        assert!(bare.top_scores(5).is_empty());
        assert!(bare.score(DeviceId(0)).is_none());

        let candidates = bare.candidates(100);
        let intel =
            IntelBuilder::new(IntelSynthConfig::paper(61)).build(&built.inventory.db, &candidates);
        let index = IntelIndex::build(&intel.threats, &intel.malware);
        let table = ScoreTable::from_batch(
            &analysis,
            &built.inventory.db,
            &index,
            ScoreConfig::default(),
        );
        let api = QueryContext::batch(&analysis, &built.inventory.db, &built.inventory.isps)
            .with_scores(Some(&table));
        let top = api.top_scores(5);
        assert!(!top.is_empty());
        assert!(top.len() <= 5);
        // Ordering: points descending, then id ascending.
        for w in top.windows(2) {
            assert!(
                w[0].points > w[1].points
                    || (w[0].points == w[1].points && w[0].device < w[1].device)
            );
        }
        assert_eq!(api.score(top[0].device), Some(top[0].clone()));
        // Trait stays object-safe with the new methods.
        let dyn_api: &dyn QueryApi = &api;
        assert_eq!(dyn_api.top_scores(1).len(), 1);
    }

    #[test]
    fn detail_packets_use_class_indexing() {
        let (built, analysis) = built_and_analysis();
        let api = QueryContext::batch(&analysis, &built.inventory.db, &built.inventory.isps);
        let scanner = analysis.view().tcp_scanners()[0];
        let d = api.device(scanner).unwrap();
        assert!(d.packets_by_class[class_idx(TrafficClass::TcpScan)] > 0);
    }
}
