//! Darknet traffic classification.
//!
//! The paper partitions telescope traffic into backscatter (evidence the
//! source is a DoS *victim*), scanning (evidence the source is exploited
//! and probing the Internet), UDP (kept as its own class because stateless
//! UDP cannot be reliably split without payload inspection, §IV-A), and a
//! residual class. Backscatter takes precedence over scanning: a SYN-ACK
//! is a reply even though it carries SYN.

use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::protocol::TransportProtocol;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The traffic classes of §IV.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TrafficClass {
    /// TCP SYN probing (§IV-C: 99.97% of non-backscatter TCP).
    TcpScan,
    /// ICMP echo-request probing (§IV-C: >99.9% of non-backscatter ICMP).
    IcmpScan,
    /// TCP SYN-ACK/RST or ICMP reply types — DoS-victim backscatter
    /// (§IV-B).
    Backscatter,
    /// UDP traffic (§IV-A).
    Udp,
    /// Anything else (non-SYN TCP without backscatter flags, exotic ICMP).
    Other,
}

impl TrafficClass {
    /// All classes.
    pub const ALL: [TrafficClass; 5] = [
        TrafficClass::TcpScan,
        TrafficClass::IcmpScan,
        TrafficClass::Backscatter,
        TrafficClass::Udp,
        TrafficClass::Other,
    ];

    /// Whether the class indicates active probing by the source.
    pub fn is_scan(self) -> bool {
        matches!(self, TrafficClass::TcpScan | TrafficClass::IcmpScan)
    }
}

impl fmt::Display for TrafficClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TrafficClass::TcpScan => "tcp-scan",
            TrafficClass::IcmpScan => "icmp-scan",
            TrafficClass::Backscatter => "backscatter",
            TrafficClass::Udp => "udp",
            TrafficClass::Other => "other",
        })
    }
}

/// Classify one flow.
///
/// # Example
///
/// ```
/// use iotscope_core::classify::{classify, TrafficClass};
/// use iotscope_net::flowtuple::FlowTuple;
/// use iotscope_net::protocol::TcpFlags;
/// use std::net::Ipv4Addr;
///
/// let syn = FlowTuple::tcp(
///     Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(44, 0, 0, 1),
///     40000, 23, TcpFlags::SYN,
/// );
/// assert_eq!(classify(&syn), TrafficClass::TcpScan);
///
/// let synack = FlowTuple::tcp(
///     Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(44, 0, 0, 1),
///     80, 40000, TcpFlags::SYN | TcpFlags::ACK,
/// );
/// assert_eq!(classify(&synack), TrafficClass::Backscatter);
/// ```
pub fn classify(flow: &FlowTuple) -> TrafficClass {
    match flow.protocol {
        TransportProtocol::Udp => TrafficClass::Udp,
        TransportProtocol::Tcp => {
            if flow.tcp_flags.is_backscatter() {
                TrafficClass::Backscatter
            } else if flow.tcp_flags.is_bare_syn() {
                TrafficClass::TcpScan
            } else {
                TrafficClass::Other
            }
        }
        TransportProtocol::Icmp => match flow.icmp_type() {
            Some(t) if t.is_backscatter() => TrafficClass::Backscatter,
            Some(t) if t.is_scan() => TrafficClass::IcmpScan,
            _ => TrafficClass::Other,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_net::protocol::{IcmpType, TcpFlags};
    use proptest::prelude::*;
    use std::net::Ipv4Addr;

    fn tcp(flags: TcpFlags) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            23,
            flags,
        )
    }

    fn icmp(t: IcmpType) -> FlowTuple {
        FlowTuple::icmp(Ipv4Addr::new(1, 2, 3, 4), Ipv4Addr::new(44, 0, 0, 1), t)
    }

    #[test]
    fn tcp_truth_table() {
        assert_eq!(classify(&tcp(TcpFlags::SYN)), TrafficClass::TcpScan);
        assert_eq!(
            classify(&tcp(TcpFlags::SYN | TcpFlags::ACK)),
            TrafficClass::Backscatter
        );
        assert_eq!(classify(&tcp(TcpFlags::RST)), TrafficClass::Backscatter);
        assert_eq!(
            classify(&tcp(TcpFlags::RST | TcpFlags::ACK)),
            TrafficClass::Backscatter
        );
        assert_eq!(classify(&tcp(TcpFlags::ACK)), TrafficClass::Other);
        assert_eq!(classify(&tcp(TcpFlags::FIN)), TrafficClass::Other);
        assert_eq!(classify(&tcp(TcpFlags::EMPTY)), TrafficClass::Other);
        // SYN+RST: RST wins (backscatter) — reply semantics take precedence.
        assert_eq!(
            classify(&tcp(TcpFlags::SYN | TcpFlags::RST)),
            TrafficClass::Backscatter
        );
    }

    #[test]
    fn icmp_truth_table() {
        assert_eq!(
            classify(&icmp(IcmpType::EchoRequest)),
            TrafficClass::IcmpScan
        );
        assert_eq!(
            classify(&icmp(IcmpType::EchoReply)),
            TrafficClass::Backscatter
        );
        assert_eq!(
            classify(&icmp(IcmpType::DestinationUnreachable)),
            TrafficClass::Backscatter
        );
        assert_eq!(
            classify(&icmp(IcmpType::TimeExceeded)),
            TrafficClass::Backscatter
        );
        assert_eq!(
            classify(&icmp(IcmpType::TimestampRequest)),
            TrafficClass::IcmpScan
        );
        // Unmodeled ICMP type number → Other.
        let mut weird = icmp(IcmpType::EchoRequest);
        weird.src_port = 99;
        assert_eq!(classify(&weird), TrafficClass::Other);
    }

    #[test]
    fn udp_is_always_udp() {
        let f = FlowTuple::udp(
            Ipv4Addr::new(1, 2, 3, 4),
            Ipv4Addr::new(44, 0, 0, 1),
            5353,
            37547,
        );
        assert_eq!(classify(&f), TrafficClass::Udp);
    }

    #[test]
    fn scan_predicate() {
        assert!(TrafficClass::TcpScan.is_scan());
        assert!(TrafficClass::IcmpScan.is_scan());
        assert!(!TrafficClass::Backscatter.is_scan());
        assert!(!TrafficClass::Udp.is_scan());
        assert!(!TrafficClass::Other.is_scan());
    }

    #[test]
    fn display_labels() {
        assert_eq!(TrafficClass::Backscatter.to_string(), "backscatter");
        assert_eq!(TrafficClass::TcpScan.to_string(), "tcp-scan");
    }

    proptest! {
        /// Every flow lands in exactly one class (total function; the
        /// partition property behind all §IV accounting).
        #[test]
        fn prop_every_flow_classified(
            src: u32, dst: u32, sport: u16, dport: u16,
            proto_idx in 0usize..3, flags: u8,
        ) {
            use iotscope_net::protocol::TransportProtocol;
            let f = FlowTuple {
                src_ip: Ipv4Addr::from(src),
                dst_ip: Ipv4Addr::from(dst),
                src_port: sport,
                dst_port: dport,
                protocol: TransportProtocol::ALL[proto_idx],
                ttl: 64,
                tcp_flags: TcpFlags::from_bits(flags),
                ip_len: 40,
                packets: 1,
            };
            let class = classify(&f);
            prop_assert!(TrafficClass::ALL.contains(&class));
            // Backscatter and scan classes are mutually exclusive by
            // construction; double-check via the flag predicates.
            if class == TrafficClass::TcpScan {
                prop_assert!(f.tcp_flags.is_bare_syn());
                prop_assert!(!f.tcp_flags.is_backscatter());
            }
            if class == TrafficClass::Backscatter && f.protocol == TransportProtocol::Tcp {
                prop_assert!(f.tcp_flags.is_backscatter());
            }
        }
    }
}
