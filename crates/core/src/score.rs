//! Incremental per-device maliciousness scoring (the streaming §V join).
//!
//! The paper's Section V correlates inferred devices against a threat
//! repository and a malware database once, after the fact. Here that
//! join is a *scoring engine* that folds evidence per device as each
//! hour ingests:
//!
//! * **intel evidence** — threat-repo category hits and sandbox-sample
//!   contacts, resolved once per device through the prefix-bucketed
//!   [`IntelIndex`] (static for a device's lifetime: intel stores are
//!   immutable during a run);
//! * **behavioral evidence** — cumulative scanning and backscatter
//!   (DoS-victim) packet counts from the running [`Analysis`].
//!
//! Evidence maps to *points* and points to a five-rung severity ladder
//! ([`Severity`]). Both are pure functions of (cumulative analysis,
//! static intel), and the cumulative counts are monotone, so a device's
//! tier never decreases — which is what makes the escalation-alert
//! dedup contract ("no repeat alert until the next tier is crossed")
//! well-defined, and what makes hour-by-hour folding land bit-identical
//! to one batch fold of the finished analysis (proptested in
//! `tests/score_streaming.rs`).
//!
//! Storage follows [`DeviceTable`](crate::table::DeviceTable): columnar
//! struct-of-arrays keyed by the inventory's dense intern index, rows
//! first-seen ordered while folding and id-sorted after
//! [`ScoreTable::normalize`], with order- and capacity-insensitive
//! equality.

use crate::analysis::Analysis;
use crate::classify::TrafficClass;
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_intel::{IntelIndex, ThreatCategory};
use std::fmt;

/// The severity ladder: deterministic point thresholds, monotone in
/// accumulated evidence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// No evidence.
    None,
    /// 1–2 points.
    Low,
    /// 3–4 points.
    Medium,
    /// 5–6 points.
    High,
    /// 7+ points.
    Critical,
}

impl Severity {
    /// All tiers, ascending.
    pub const ALL: [Severity; 5] = [
        Severity::None,
        Severity::Low,
        Severity::Medium,
        Severity::High,
        Severity::Critical,
    ];

    /// The tier for a point total.
    #[inline]
    pub fn from_points(points: u32) -> Severity {
        match points {
            0 => Severity::None,
            1..=2 => Severity::Low,
            3..=4 => Severity::Medium,
            5..=6 => Severity::High,
            _ => Severity::Critical,
        }
    }
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::None => "none",
            Severity::Low => "low",
            Severity::Medium => "medium",
            Severity::High => "high",
            Severity::Critical => "critical",
        })
    }
}

/// Thresholds for the behavioral signals and the alerting floor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ScoreConfig {
    /// Cumulative scanning packets (TCP SYN + ICMP echo) that count as
    /// a behavioral signal.
    pub scan_packets_min: u64,
    /// Cumulative backscatter packets (DoS victimhood) that count as a
    /// behavioral signal.
    pub backscatter_min: u64,
    /// Minimum tier that emits an escalation.
    pub alert_min_tier: Severity,
}

impl Default for ScoreConfig {
    fn default() -> Self {
        ScoreConfig {
            scan_packets_min: 1_000,
            backscatter_min: 100,
            alert_min_tier: Severity::Low,
        }
    }
}

/// Map one device's evidence to points. Every term is monotone in its
/// input, and the intel inputs are static, so points never decrease as
/// hours fold.
#[inline]
fn points_for(cat_mask: u8, samples: u32, scan: u64, backscatter: u64, cfg: &ScoreConfig) -> u32 {
    let mut p = cat_mask.count_ones();
    if cat_mask & ThreatCategory::Malware.bit() != 0 {
        p += 2;
    }
    p += match samples {
        0 => 0,
        1..=2 => 2,
        _ => 3,
    };
    if scan >= cfg.scan_packets_min {
        p += 1;
    }
    if backscatter >= cfg.backscatter_min {
        p += 1;
    }
    p
}

/// One device's materialized score — the row type of a [`ScoreTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScoreRow {
    /// The device.
    pub device: DeviceId,
    /// Its realm.
    pub realm: Realm,
    /// Packed threat-category bitmask
    /// ([`ThreatCategory::bit`] encoding).
    pub cat_mask: u8,
    /// Number of sandbox samples that contacted the device.
    pub samples: u32,
    /// Cumulative scanning packets.
    pub scan_packets: u64,
    /// Cumulative backscatter packets.
    pub backscatter_packets: u64,
    /// Cumulative packets across all classes.
    pub total_packets: u64,
    /// Current point total.
    pub points: u32,
    /// Current severity tier.
    pub tier: Severity,
}

impl ScoreRow {
    /// Decode the category mask, in Table VI order.
    pub fn categories(&self) -> Vec<ThreatCategory> {
        ThreatCategory::from_mask(self.cat_mask).collect()
    }
}

/// Columnar per-device maliciousness scores: one row per correlated
/// device, struct-of-arrays, dense-intern-index keyed like
/// [`DeviceTable`](crate::table::DeviceTable).
#[derive(Debug, Clone, Default)]
pub struct ScoreTable {
    /// Device id per row.
    ids: Vec<DeviceId>,
    /// Realm per row.
    realms: Vec<Realm>,
    /// Packed category bitmask per row (static intel evidence).
    cat_mask: Vec<u8>,
    /// Window start into `sample_refs` per row.
    sample_start: Vec<u32>,
    /// Window length per row.
    sample_len: Vec<u32>,
    /// Shared pool of sandbox-report indices (windowed by the rows; pool
    /// order is append order and carries no meaning of its own).
    sample_refs: Vec<u32>,
    /// Cumulative scanning packets per row.
    scan_packets: Vec<u64>,
    /// Cumulative backscatter packets per row.
    backscatter_packets: Vec<u64>,
    /// Cumulative total packets per row.
    total_packets: Vec<u64>,
    /// Current points per row.
    points: Vec<u32>,
    /// Current tier per row.
    tiers: Vec<Severity>,
    /// Sparse index: device index → row + 1 (0 = absent).
    row_of: Vec<u32>,
    /// Whether rows are currently sorted by id.
    sorted: bool,
}

impl ScoreTable {
    /// An empty table.
    pub fn new() -> Self {
        ScoreTable {
            sorted: true,
            ..ScoreTable::default()
        }
    }

    /// Score a finished analysis in one batch fold — the `Report::build`
    /// path. Equivalent to streaming the same hours through a
    /// [`ScoreEngine`] and calling [`ScoreEngine::finish`].
    pub fn from_batch(
        analysis: &Analysis,
        db: &DeviceDb,
        index: &IntelIndex,
        config: ScoreConfig,
    ) -> Self {
        let mut engine = ScoreEngine::new(db, index, config);
        engine.fold(analysis);
        engine.finish()
    }

    /// Number of scored devices.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether no device is scored.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The row holding `id`, if scored.
    #[inline]
    pub fn row(&self, id: DeviceId) -> Option<usize> {
        match self.row_of.get(id.0 as usize) {
            Some(&r) if r != 0 => Some(r as usize - 1),
            _ => None,
        }
    }

    /// Whether the device is scored.
    pub fn contains(&self, id: DeviceId) -> bool {
        self.row(id).is_some()
    }

    /// Device ids in row order (sorted ascending iff
    /// [`normalize`](Self::normalize)d).
    pub fn ids(&self) -> &[DeviceId] {
        &self.ids
    }

    /// Sandbox-report indices (into `MalwareDb::reports`) for `row`.
    #[inline]
    pub fn samples_at(&self, row: usize) -> &[u32] {
        let start = self.sample_start[row] as usize;
        &self.sample_refs[start..start + self.sample_len[row] as usize]
    }

    /// Materialize the score at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len()`.
    pub fn row_at(&self, row: usize) -> ScoreRow {
        ScoreRow {
            device: self.ids[row],
            realm: self.realms[row],
            cat_mask: self.cat_mask[row],
            samples: self.sample_len[row],
            scan_packets: self.scan_packets[row],
            backscatter_packets: self.backscatter_packets[row],
            total_packets: self.total_packets[row],
            points: self.points[row],
            tier: self.tiers[row],
        }
    }

    /// Materialize the score for `id`, if scored.
    pub fn get(&self, id: DeviceId) -> Option<ScoreRow> {
        self.row(id).map(|r| self.row_at(r))
    }

    /// Iterate over rows as materialized scores, in row order.
    pub fn rows(&self) -> impl Iterator<Item = ScoreRow> + '_ {
        (0..self.len()).map(|r| self.row_at(r))
    }

    /// The `n` highest-scoring devices with any evidence (points > 0),
    /// ordered by points descending then id ascending — deterministic
    /// regardless of row order.
    pub fn top(&self, n: usize) -> Vec<ScoreRow> {
        let mut scored: Vec<(u32, DeviceId, usize)> = (0..self.len())
            .filter(|&r| self.points[r] > 0)
            .map(|r| (self.points[r], self.ids[r], r))
            .collect();
        scored.sort_unstable_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        scored
            .into_iter()
            .take(n)
            .map(|(_, _, r)| self.row_at(r))
            .collect()
    }

    /// Sort rows by device id and rebuild the sparse index, making row
    /// order independent of fold order. The sample pool is left as
    /// appended — only the per-row windows move. No-op when already
    /// sorted.
    pub fn normalize(&mut self) {
        if self.sorted {
            return;
        }
        let mut perm: Vec<u32> = (0..self.len() as u32).collect();
        perm.sort_unstable_by_key(|&r| self.ids[r as usize]);
        self.ids = permute(&self.ids, &perm);
        self.realms = permute(&self.realms, &perm);
        self.cat_mask = permute(&self.cat_mask, &perm);
        self.sample_start = permute(&self.sample_start, &perm);
        self.sample_len = permute(&self.sample_len, &perm);
        self.scan_packets = permute(&self.scan_packets, &perm);
        self.backscatter_packets = permute(&self.backscatter_packets, &perm);
        self.total_packets = permute(&self.total_packets, &perm);
        self.points = permute(&self.points, &perm);
        self.tiers = permute(&self.tiers, &perm);
        for (row, id) in self.ids.iter().enumerate() {
            self.row_of[id.0 as usize] = (row + 1) as u32;
        }
        self.sorted = true;
    }

    /// Approximate heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ids.capacity() * size_of::<DeviceId>()
            + self.realms.capacity() * size_of::<Realm>()
            + self.cat_mask.capacity()
            + self.sample_start.capacity() * size_of::<u32>()
            + self.sample_len.capacity() * size_of::<u32>()
            + self.sample_refs.capacity() * size_of::<u32>()
            + self.scan_packets.capacity() * size_of::<u64>()
            + self.backscatter_packets.capacity() * size_of::<u64>()
            + self.total_packets.capacity() * size_of::<u64>()
            + self.points.capacity() * size_of::<u32>()
            + self.tiers.capacity() * size_of::<Severity>()
            + self.row_of.capacity() * size_of::<u32>()
    }

    /// Get-or-create the row for `id`; intel evidence is resolved once,
    /// on creation.
    #[inline]
    fn upsert(&mut self, id: DeviceId, realm: Realm, cat_mask: u8, samples: &[u32]) -> usize {
        let idx = id.0 as usize;
        if idx >= self.row_of.len() {
            self.row_of.resize(idx + 1, 0);
        }
        let slot = self.row_of[idx];
        if slot != 0 {
            return slot as usize - 1;
        }
        let row = self.ids.len();
        if self.sorted && self.ids.last().is_some_and(|last| *last > id) {
            self.sorted = false;
        }
        self.ids.push(id);
        self.realms.push(realm);
        self.cat_mask.push(cat_mask);
        self.sample_start.push(self.sample_refs.len() as u32);
        self.sample_len.push(samples.len() as u32);
        self.sample_refs.extend_from_slice(samples);
        self.scan_packets.push(0);
        self.backscatter_packets.push(0);
        self.total_packets.push(0);
        self.points.push(0);
        self.tiers.push(Severity::None);
        self.row_of[idx] = (row + 1) as u32;
        row
    }
}

/// Gather `src` through the permutation `perm` (new row `i` = old row
/// `perm[i]`).
fn permute<T: Copy>(src: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&r| src[r as usize]).collect()
}

/// Row-set equality, insensitive to row order, index capacity, and
/// sample-pool layout.
impl PartialEq for ScoreTable {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        (0..self.len()).all(|row| {
            let id = self.ids[row];
            match other.row(id) {
                Some(orow) => {
                    self.realms[row] == other.realms[orow]
                        && self.cat_mask[row] == other.cat_mask[orow]
                        && self.samples_at(row) == other.samples_at(orow)
                        && self.scan_packets[row] == other.scan_packets[orow]
                        && self.backscatter_packets[row] == other.backscatter_packets[orow]
                        && self.total_packets[row] == other.total_packets[orow]
                        && self.points[row] == other.points[orow]
                        && self.tiers[row] == other.tiers[orow]
                }
                None => false,
            }
        })
    }
}

impl Eq for ScoreTable {}

/// One tier crossing emitted by a fold: the device reached `tier` (its
/// highest tier so far) with `points` points. At most one escalation
/// per device per fold — a multi-tier jump reports only the tier
/// landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Escalation {
    /// The device that escalated.
    pub device: DeviceId,
    /// The tier it reached.
    pub tier: Severity,
    /// Its point total at escalation.
    pub points: u32,
}

/// The incremental scorer: holds a [`ScoreTable`] plus per-row alert
/// state, and folds a (cumulative) [`Analysis`] snapshot into it after
/// each hour.
///
/// # Example
///
/// ```
/// use iotscope_core::analysis::Analyzer;
/// use iotscope_core::score::{ScoreConfig, ScoreEngine};
/// use iotscope_devicedb::DeviceDb;
/// use iotscope_intel::IntelIndex;
///
/// let db = DeviceDb::new();
/// let index = IntelIndex::empty();
/// let mut engine = ScoreEngine::new(&db, &index, ScoreConfig::default());
/// let analysis = Analyzer::new(&db, 4).finish();
/// assert!(engine.fold(&analysis).is_empty());
/// assert!(engine.finish().is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct ScoreEngine<'a> {
    db: &'a DeviceDb,
    index: &'a IntelIndex,
    config: ScoreConfig,
    table: ScoreTable,
    /// Highest tier already alerted, per row (fold order).
    alerted: Vec<Severity>,
}

impl<'a> ScoreEngine<'a> {
    /// A fresh engine over an inventory and a prebuilt intel index.
    pub fn new(db: &'a DeviceDb, index: &'a IntelIndex, config: ScoreConfig) -> Self {
        ScoreEngine {
            db,
            index,
            config,
            table: ScoreTable::new(),
            alerted: Vec::new(),
        }
    }

    /// The engine's configuration.
    pub fn config(&self) -> &ScoreConfig {
        &self.config
    }

    /// The in-progress table (first-seen row order until
    /// [`finish`](Self::finish)).
    pub fn table(&self) -> &ScoreTable {
        &self.table
    }

    /// Fold the current cumulative `analysis` into the table and return
    /// the tier crossings, in `analysis` row order.
    ///
    /// Behavioral columns are overwritten (the analysis is cumulative),
    /// intel columns are resolved once per device, and a device alerts
    /// only when it exceeds its highest previously-alerted tier — so
    /// replaying the same snapshot is a no-op, and an hour that raises
    /// a device by several tiers emits exactly one escalation.
    pub fn fold(&mut self, analysis: &Analysis) -> Vec<Escalation> {
        let mut escalations = Vec::new();
        for obs in analysis.devices.rows() {
            let row = match self.table.row(obs.device) {
                Some(row) => row,
                None => {
                    let ip = self.db.device(obs.device).ip;
                    let (mask, samples) = match self.index.lookup(ip) {
                        Some(hit) => (hit.cat_mask, hit.samples),
                        None => (0, &[][..]),
                    };
                    let row = self.table.upsert(obs.device, obs.realm, mask, samples);
                    self.alerted.push(Severity::None);
                    row
                }
            };
            self.table.scan_packets[row] = obs.scan_packets();
            self.table.backscatter_packets[row] = obs.packets(TrafficClass::Backscatter);
            self.table.total_packets[row] = obs.total_packets();
            let points = points_for(
                self.table.cat_mask[row],
                self.table.sample_len[row],
                self.table.scan_packets[row],
                self.table.backscatter_packets[row],
                &self.config,
            );
            let tier = Severity::from_points(points);
            self.table.points[row] = points;
            self.table.tiers[row] = tier;
            if tier > self.alerted[row] && tier >= self.config.alert_min_tier {
                self.alerted[row] = tier;
                escalations.push(Escalation {
                    device: obs.device,
                    tier,
                    points,
                });
            }
        }
        escalations
    }

    /// Normalize and hand over the finished table.
    pub fn finish(mut self) -> ScoreTable {
        self.table.normalize();
        self.table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, CpsService, IotDevice, IspId};
    use iotscope_intel::{MalwareDb, ThreatEvent, ThreatRepo};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices((1..=4u8).map(|i| IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::new(i, 0, 0, 1),
            profile: if i % 2 == 0 {
                DeviceProfile::Cps(vec![CpsService::ModbusTcp])
            } else {
                DeviceProfile::Consumer(ConsumerKind::Router)
            },
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }))
    }

    fn syn(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            23,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
    }

    fn hour(interval: u32, flows: Vec<FlowTuple>) -> HourTraffic {
        HourTraffic {
            interval,
            hour: UnixHour::new(u64::from(interval) - 1),
            flows,
        }
    }

    fn flagged_repo() -> ThreatRepo {
        let mut repo = ThreatRepo::new();
        for cat in [
            ThreatCategory::Scanning,
            ThreatCategory::Malware,
            ThreatCategory::Spam,
        ] {
            repo.add(ThreatEvent {
                ip: Ipv4Addr::new(1, 0, 0, 1),
                category: cat,
                source: "t".into(),
                reported_at: 0,
            });
        }
        repo
    }

    #[test]
    fn severity_ladder_is_monotone_and_total() {
        let mut last = Severity::None;
        for p in 0..32u32 {
            let tier = Severity::from_points(p);
            assert!(tier >= last, "tier regressed at {p} points");
            last = tier;
        }
        assert_eq!(Severity::from_points(0), Severity::None);
        assert_eq!(Severity::from_points(2), Severity::Low);
        assert_eq!(Severity::from_points(4), Severity::Medium);
        assert_eq!(Severity::from_points(6), Severity::High);
        assert_eq!(Severity::from_points(7), Severity::Critical);
        assert_eq!(Severity::Critical.to_string(), "critical");
    }

    #[test]
    fn points_reward_each_evidence_axis() {
        let cfg = ScoreConfig::default();
        assert_eq!(points_for(0, 0, 0, 0, &cfg), 0);
        // One category = 1 point; the Malware category carries +2 extra.
        assert_eq!(points_for(ThreatCategory::Scanning.bit(), 0, 0, 0, &cfg), 1);
        assert_eq!(points_for(ThreatCategory::Malware.bit(), 0, 0, 0, &cfg), 3);
        // Sample tiers: 1–2 samples = 2, 3+ = 3.
        assert_eq!(points_for(0, 1, 0, 0, &cfg), 2);
        assert_eq!(points_for(0, 3, 0, 0, &cfg), 3);
        // Behavioral thresholds are inclusive.
        assert_eq!(points_for(0, 0, cfg.scan_packets_min, 0, &cfg), 1);
        assert_eq!(points_for(0, 0, cfg.scan_packets_min - 1, 0, &cfg), 0);
        assert_eq!(points_for(0, 0, 0, cfg.backscatter_min, &cfg), 1);
    }

    #[test]
    fn fold_scores_devices_and_escalates_once_per_tier() {
        let dbv = db();
        let index = IntelIndex::build(&flagged_repo(), &MalwareDb::new());
        let cfg = ScoreConfig {
            scan_packets_min: 150,
            ..ScoreConfig::default()
        };
        let mut an = Analyzer::new(&dbv, 4);
        let mut engine = ScoreEngine::new(&dbv, &index, cfg);

        // Hour 1: device 1.0.0.1 (id 0) is flagged with 3 categories
        // (Scanning+Malware+Spam = 3 + 2 bonus = 5 points, High).
        an.ingest_hour(&hour(
            1,
            vec![syn([1, 0, 0, 1], 100), syn([3, 0, 0, 1], 10)],
        ));
        let esc = engine.fold(an.peek());
        assert_eq!(esc.len(), 1);
        assert_eq!(
            esc[0],
            Escalation {
                device: DeviceId(0),
                tier: Severity::High,
                points: 5
            }
        );

        // Re-folding the same snapshot must be silent (dedup).
        assert!(engine.fold(an.peek()).is_empty());

        // Hour 2: id 0 crosses the scan threshold (6 points, still
        // High → no alert); id 2 stays at zero evidence.
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 100)]));
        assert!(engine.fold(an.peek()).is_empty());

        let table = engine.finish();
        assert_eq!(table.len(), 2);
        let top = table.top(10);
        assert_eq!(top.len(), 1, "only the flagged device has points");
        assert_eq!(top[0].device, DeviceId(0));
        assert_eq!(top[0].points, 6);
        assert_eq!(top[0].tier, Severity::High);
        assert_eq!(
            top[0].categories(),
            vec![
                ThreatCategory::Scanning,
                ThreatCategory::Spam,
                ThreatCategory::Malware
            ]
        );
        let quiet = table.get(DeviceId(2)).unwrap();
        assert_eq!(quiet.points, 0);
        assert_eq!(quiet.tier, Severity::None);
    }

    #[test]
    fn batch_equals_streaming_on_a_small_run() {
        let dbv = db();
        let index = IntelIndex::build(&flagged_repo(), &MalwareDb::new());
        let cfg = ScoreConfig {
            scan_packets_min: 150,
            backscatter_min: 10,
            ..ScoreConfig::default()
        };
        let hours = [
            hour(1, vec![syn([1, 0, 0, 1], 100), syn([4, 0, 0, 1], 7)]),
            hour(2, vec![syn([3, 0, 0, 1], 60)]),
            hour(3, vec![syn([1, 0, 0, 1], 100), syn([3, 0, 0, 1], 200)]),
        ];

        let mut an = Analyzer::new(&dbv, 4);
        let mut engine = ScoreEngine::new(&dbv, &index, cfg);
        for h in &hours {
            an.ingest_hour(h);
            engine.fold(an.peek());
        }
        let streamed = engine.finish();

        let mut batch_an = Analyzer::new(&dbv, 4);
        for h in &hours {
            batch_an.ingest_hour(h);
        }
        let batch = ScoreTable::from_batch(&batch_an.finish(), &dbv, &index, cfg);
        assert_eq!(streamed, batch);
        assert_eq!(streamed.ids(), batch.ids(), "both normalized, same order");
    }

    #[test]
    fn multi_tier_jump_emits_single_escalation_at_top_tier() {
        let dbv = db();
        let index = IntelIndex::build(&flagged_repo(), &MalwareDb::new());
        let mut an = Analyzer::new(&dbv, 4);
        let mut engine = ScoreEngine::new(&dbv, &index, ScoreConfig::default());
        // First sighting already lands at High (5 points): exactly one
        // escalation, at the landed-on tier.
        an.ingest_hour(&hour(1, vec![syn([1, 0, 0, 1], 10)]));
        let esc = engine.fold(an.peek());
        assert_eq!(esc.len(), 1);
        assert_eq!(esc[0].tier, Severity::High);
    }

    #[test]
    fn alert_floor_suppresses_low_tiers() {
        let dbv = db();
        let index = IntelIndex::empty();
        let cfg = ScoreConfig {
            scan_packets_min: 50,
            alert_min_tier: Severity::Medium,
            ..ScoreConfig::default()
        };
        let mut an = Analyzer::new(&dbv, 4);
        let mut engine = ScoreEngine::new(&dbv, &index, cfg);
        // Behavioral-only evidence caps at Low here — floor filters it.
        an.ingest_hour(&hour(1, vec![syn([3, 0, 0, 1], 90)]));
        assert!(engine.fold(an.peek()).is_empty());
        let table = engine.finish();
        assert_eq!(table.get(DeviceId(2)).unwrap().tier, Severity::Low);
    }

    #[test]
    fn normalize_is_idempotent_and_equality_order_insensitive() {
        let dbv = db();
        let index = IntelIndex::build(&flagged_repo(), &MalwareDb::new());
        let mut an = Analyzer::new(&dbv, 4);
        // Ingest in an order that creates rows out of id order.
        an.ingest_hour(&hour(1, vec![syn([3, 0, 0, 1], 10), syn([1, 0, 0, 1], 10)]));
        let mut engine = ScoreEngine::new(&dbv, &index, ScoreConfig::default());
        engine.fold(an.peek());
        let unnormalized = engine.table().clone();
        let normalized = engine.finish();
        assert_eq!(unnormalized, normalized, "equality ignores row order");
        assert_eq!(normalized.ids(), &[DeviceId(0), DeviceId(2)]);
        let mut again = normalized.clone();
        again.normalize();
        assert_eq!(again.ids(), normalized.ids());
        assert!(normalized.heap_bytes() > 0);
    }
}
