//! The correlation + aggregation engine.
//!
//! [`Analyzer`] makes a single pass over hourly flowtuples, joining source
//! addresses against the IoT inventory (§III-B's correlation algorithm)
//! and accumulating every aggregate the paper's figures and tables need.
//! Hours may be ingested in any order, and two analyzers over disjoint
//! hour sets [`merge`](Analyzer::merge) into the same result — which is
//! what makes parallel analysis exact rather than approximate.
//!
//! Per-device state lives in a columnar [`DeviceTable`] (one row per
//! correlated device) and per-service/per-port device sets are
//! [`DeviceSet`] bitmaps, so `merge` is columnar addition plus word-wise
//! ORs. Derived queries (sorted device lists, cohorts, totals) are
//! served memoized through [`Analysis::view`].

use crate::classify::{classify, TrafficClass};
pub use crate::table::{DeviceObservation, DeviceSet, DeviceTable};
use crate::view::{AnalysisView, ViewCache};
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::ports::ScanService;
use iotscope_net::protocol::TransportProtocol;
use iotscope_obs::{Counter, Registry};
use iotscope_telescope::HourTraffic;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Metric-name suffixes for the five traffic classes, indexed by
/// [`class_idx`].
const CLASS_NAMES: [&str; 5] = ["tcp_scan", "icmp_scan", "backscatter", "udp", "other"];
/// Metric-name suffixes for the two realms, indexed by [`realm_idx`].
const REALM_NAMES: [&str; 2] = ["consumer", "cps"];

/// Analyzer-layer metric handles (`analysis.` prefix), all
/// [stable](iotscope_obs::Stability::Stable): packet totals are sums
/// over ingested hours and commute across workers.
#[derive(Debug, Clone)]
struct AnalyzerMetrics {
    /// `analysis.packets.<realm>.<class>`, indexed `[realm][class]`.
    packets: [[Counter; 5]; 2],
    /// `analysis.flows_unmatched`: flows from sources outside the inventory.
    unmatched_flows: Counter,
    /// `analysis.packets_unmatched`: packets from unmatched sources.
    unmatched_packets: Counter,
}

impl AnalyzerMetrics {
    fn register(registry: &Registry) -> Self {
        AnalyzerMetrics {
            packets: std::array::from_fn(|r| {
                std::array::from_fn(|c| {
                    registry.counter(&format!(
                        "analysis.packets.{}.{}",
                        REALM_NAMES[r], CLASS_NAMES[c]
                    ))
                })
            }),
            unmatched_flows: registry.counter("analysis.flows_unmatched"),
            unmatched_packets: registry.counter("analysis.packets_unmatched"),
        }
    }
}

/// The Fig 10 service set: the five most-scanned protocol groups.
pub const TOP5_SERVICES: [ScanService; 5] = [
    ScanService::Telnet,
    ScanService::Http,
    ScanService::Ssh,
    ScanService::BackroomNet,
    ScanService::Cwmp,
];

/// Dense index for a realm.
#[inline]
pub fn realm_idx(realm: Realm) -> usize {
    match realm {
        Realm::Consumer => 0,
        Realm::Cps => 1,
    }
}

/// Dense index for a traffic class.
#[inline]
pub fn class_idx(class: TrafficClass) -> usize {
    match class {
        TrafficClass::TcpScan => 0,
        TrafficClass::IcmpScan => 1,
        TrafficClass::Backscatter => 2,
        TrafficClass::Udp => 3,
        TrafficClass::Other => 4,
    }
}

/// Hourly `(packets, distinct dst IPs, distinct dst ports, active devices)`
/// series for one realm and one traffic class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealmSeries {
    /// Packets per interval.
    pub packets: Vec<u64>,
    /// Distinct destination addresses per interval.
    pub dst_ips: Vec<u64>,
    /// Distinct destination ports per interval.
    pub dst_ports: Vec<u64>,
    /// Distinct emitting devices per interval.
    pub devices: Vec<u64>,
}

impl RealmSeries {
    pub(crate) fn new(hours: usize) -> Self {
        RealmSeries {
            packets: vec![0; hours],
            dst_ips: vec![0; hours],
            dst_ports: vec![0; hours],
            devices: vec![0; hours],
        }
    }
}

/// Key for Table V rows: a named service group or the long tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKey {
    /// One of the 14 named groups.
    Named(ScanService),
    /// Every other scanned port.
    Other,
}

/// Per-service scanning statistics, split by realm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStat {
    /// Packets per realm (`[consumer, cps]`).
    pub packets: [u64; 2],
    /// Scanning devices per realm.
    pub devices: [DeviceSet; 2],
}

/// Per-UDP-port statistics (Table IV).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortStat {
    /// UDP packets to the port.
    pub packets: u64,
    /// Devices that sent them.
    pub devices: DeviceSet,
}

/// Per-interval backscatter attribution (who dominated a DoS episode).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackscatterInterval {
    /// Total backscatter packets in the interval.
    pub total: u64,
    /// The victim emitting the most backscatter and its packet count.
    pub top_victim: Option<(DeviceId, u64)>,
}

/// The complete aggregation result.
///
/// Equality is structural on the aggregates and insensitive to row order
/// in [`devices`](Self::devices) and to which [view](Self::view) queries
/// have been memoized — the sequential-vs-parallel determinism contract.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Window length in hours.
    pub hours: u32,
    /// Columnar per-device observations (one row per correlated device;
    /// sorted by id once [`Analyzer::finish`] has run).
    pub devices: DeviceTable,
    /// Packets per `[realm][transport]` with transports ordered
    /// `[ICMP, TCP, UDP]` (Fig 4).
    pub protocol_packets: [[u64; 3]; 2],
    /// Hourly UDP series per realm (Fig 5).
    pub udp: [RealmSeries; 2],
    /// Hourly TCP-scan series per realm (Fig 9).
    pub tcp_scan: [RealmSeries; 2],
    /// Hourly backscatter packets per realm (Fig 7).
    pub backscatter_hourly: [Vec<u64>; 2],
    /// Per-interval backscatter attribution (§IV-B1).
    pub backscatter_intervals: Vec<BackscatterInterval>,
    /// Table V statistics per service group.
    pub scan_services: BTreeMap<ServiceKey, ServiceStat>,
    /// Hourly scan packets for the five Fig 10 services.
    pub top5_series: Vec<[u64; 5]>,
    /// Table IV statistics per UDP destination port.
    pub udp_ports: HashMap<u16, PortStat>,
    /// Flows from sources not in the inventory (noise filtered out by
    /// correlation).
    pub unmatched_flows: u64,
    /// Packets from unmatched sources.
    pub unmatched_packets: u64,
    /// Memoized derived-query results (see [`view`](Self::view)); never
    /// part of equality, cloned cold.
    pub(crate) cache: ViewCache,
}

impl Analysis {
    /// The memoizing derived-query interface: sorted device lists,
    /// per-realm partitions, per-class cohorts and totals, each computed
    /// once and cached.
    pub fn view(&self) -> AnalysisView<'_> {
        AnalysisView::new(self)
    }

    /// Drop every memoized view result. Only needed if you mutate the
    /// public aggregate fields directly after having used
    /// [`view`](Self::view); [`Analyzer`] invalidates automatically.
    pub fn invalidate_views(&mut self) {
        self.cache.reset();
    }

    /// Number of correlated (compromised) devices.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// All correlated (compromised) devices, sorted by id.
    ///
    /// Thin shim over [`view().compromised()`](AnalysisView::compromised);
    /// prefer the view to avoid the copy.
    pub fn compromised_devices(&self) -> Vec<DeviceId> {
        self.view().compromised().to_vec()
    }

    /// Count of correlated devices per realm `(consumer, cps)`.
    pub fn compromised_counts(&self) -> (usize, usize) {
        self.view().realm_counts()
    }

    /// Total packets attributed to correlated devices.
    pub fn total_packets(&self) -> u64 {
        self.view().total_packets()
    }

    /// Devices that emitted any backscatter — the inferred DoS victims.
    ///
    /// Thin shim over [`view().dos_victims()`](AnalysisView::dos_victims);
    /// prefer the view to avoid the copy.
    pub fn dos_victims(&self) -> Vec<DeviceId> {
        self.view().dos_victims().to_vec()
    }

    /// Devices that emitted TCP scanning traffic.
    ///
    /// Thin shim over [`view().tcp_scanners()`](AnalysisView::tcp_scanners);
    /// prefer the view to avoid the copy.
    pub fn tcp_scanners(&self) -> Vec<DeviceId> {
        self.view().tcp_scanners().to_vec()
    }

    /// Devices that emitted UDP traffic.
    ///
    /// Thin shim over [`view().udp_devices()`](AnalysisView::udp_devices);
    /// prefer the view to avoid the copy.
    pub fn udp_devices(&self) -> Vec<DeviceId> {
        self.view().udp_devices().to_vec()
    }

    /// Cumulative number of devices discovered by the end of each day
    /// (Fig 2), overall and per realm: `(all, consumer, cps)` per day.
    pub fn discovery_curve(&self) -> Vec<(usize, usize, usize)> {
        let num_days = self.hours.div_ceil(24) as usize;
        let mut per_day = vec![(0usize, 0usize, 0usize); num_days];
        for o in self.devices.rows() {
            let day = ((o.first_interval - 1) / 24) as usize;
            let slot = &mut per_day[day.min(num_days - 1)];
            slot.0 += 1;
            match o.realm {
                Realm::Consumer => slot.1 += 1,
                Realm::Cps => slot.2 += 1,
            }
        }
        // Make cumulative.
        for i in 1..per_day.len() {
            per_day[i].0 += per_day[i - 1].0;
            per_day[i].1 += per_day[i - 1].1;
            per_day[i].2 += per_day[i - 1].2;
        }
        per_day
    }

    /// Daily packet totals for one realm (`None` = both), summed from the
    /// hourly series over complete 24-hour blocks — §IV's "daily mean =
    /// 23.5M and σ = 0.92M packets" statistics.
    pub fn daily_packet_totals(&self, realm: Option<Realm>) -> Vec<u64> {
        let realms: &[usize] = match realm {
            None => &[0, 1],
            Some(Realm::Consumer) => &[0],
            Some(Realm::Cps) => &[1],
        };
        let num_days = self.hours.div_ceil(24) as usize;
        let mut days = vec![0u64; num_days];
        for i in 0..self.hours as usize {
            let day = i / 24;
            for r in realms {
                days[day] += self.tcp_scan[*r].packets[i]
                    + self.udp[*r].packets[i]
                    + self.backscatter_hourly[*r][i];
            }
        }
        days
    }

    /// Publish the analyzer-layer stable counters
    /// (`analysis.packets.<realm>.<class>`, `analysis.flows_unmatched`,
    /// `analysis.packets_unmatched`) for a finished analysis into
    /// `registry`.
    ///
    /// The per-`[realm][class]` packet totals are recovered from the
    /// device table columns, which accumulate exactly what the per-hour
    /// metric flush of [`HourIngest::finish`] adds up — so the sharded
    /// pipeline, which has no per-worker `Analyzer`, publishes values
    /// bit-identical to the sequential and pooled paths.
    pub(crate) fn publish_packet_counters(&self, registry: &Registry) {
        let m = AnalyzerMetrics::register(registry);
        let mut totals = [[0u64; 5]; 2];
        for o in self.devices.rows() {
            let r = realm_idx(o.realm);
            for (c, &pkts) in o.packets_by_class.iter().enumerate() {
                totals[r][c] += pkts;
            }
        }
        for (r, row) in totals.iter().enumerate() {
            for (c, &pkts) in row.iter().enumerate() {
                if pkts > 0 {
                    m.packets[r][c].add(pkts);
                }
            }
        }
        m.unmatched_flows.add(self.unmatched_flows);
        m.unmatched_packets.add(self.unmatched_packets);
    }

    /// Average number of distinct devices active per day `(all, consumer)`.
    pub fn daily_active_devices(&self) -> (f64, f64) {
        let num_days = self.hours.div_ceil(24).max(1);
        let mut all = 0u64;
        let mut consumer = 0u64;
        for o in self.devices.rows() {
            let days = o.days_active.count_ones() as u64;
            all += days;
            if o.realm == Realm::Consumer {
                consumer += days;
            }
        }
        (
            all as f64 / f64::from(num_days),
            consumer as f64 / f64::from(num_days),
        )
    }
}

/// A reusable bitmap over the 2^16 port space with a member count —
/// per-hour distinct-port accounting without per-hour allocation.
/// Shared with the sharded router ([`crate::shard`]), which runs the
/// same per-hour destination-distinct accounting on the decode side.
#[derive(Debug, Clone)]
pub(crate) struct PortScratch {
    words: Vec<u64>,
    pub(crate) len: usize,
}

impl PortScratch {
    pub(crate) fn new() -> Self {
        PortScratch {
            words: vec![0; (u16::MAX as usize + 1) / 64],
            len: 0,
        }
    }

    #[inline]
    pub(crate) fn insert(&mut self, port: u16) {
        let (word, bit) = (port as usize / 64, port % 64);
        let mask = 1u64 << bit;
        if self.words[word] & mask == 0 {
            self.words[word] |= mask;
            self.len += 1;
        }
    }

    pub(crate) fn clear(&mut self) {
        if self.len > 0 {
            self.words.fill(0);
            self.len = 0;
        }
    }
}

/// Per-hour transient distinct-set state, allocated once per analyzer
/// and cleared between hours.
#[derive(Debug)]
struct HourScratch {
    /// Distinct UDP destination addresses per realm.
    udp_ips: [HashSet<u32>; 2],
    /// Distinct TCP-scan destination addresses per realm.
    scan_ips: [HashSet<u32>; 2],
    /// Distinct UDP destination ports per realm.
    udp_ports: [PortScratch; 2],
    /// Distinct TCP-scan destination ports per realm.
    scan_ports: [PortScratch; 2],
    /// Distinct UDP-emitting devices per realm.
    udp_devs: [DeviceSet; 2],
    /// Distinct scanning devices per realm.
    scan_devs: [DeviceSet; 2],
    /// Backscatter packets per device index this hour (dense, zeroed
    /// between hours via `bs_touched`).
    bs_counts: Vec<u64>,
    /// Device indexes with nonzero `bs_counts` entries.
    bs_touched: Vec<u32>,
    /// Per-block correlation results, filled by the sorted-column
    /// merge-join in [`HourIngest`]'s batched `visit_block` and reused
    /// across blocks (capacity persists; contents are replaced).
    corr: Vec<Option<(u32, Realm)>>,
}

impl HourScratch {
    fn new(num_devices: usize) -> Self {
        HourScratch {
            udp_ips: [HashSet::new(), HashSet::new()],
            scan_ips: [HashSet::new(), HashSet::new()],
            udp_ports: [PortScratch::new(), PortScratch::new()],
            scan_ports: [PortScratch::new(), PortScratch::new()],
            udp_devs: [
                DeviceSet::with_capacity(num_devices),
                DeviceSet::with_capacity(num_devices),
            ],
            scan_devs: [
                DeviceSet::with_capacity(num_devices),
                DeviceSet::with_capacity(num_devices),
            ],
            bs_counts: vec![0; num_devices],
            bs_touched: Vec::new(),
            corr: Vec::new(),
        }
    }

    fn clear(&mut self) {
        for r in 0..2 {
            self.udp_ips[r].clear();
            self.scan_ips[r].clear();
            self.udp_ports[r].clear();
            self.scan_ports[r].clear();
            self.udp_devs[r].clear();
            self.scan_devs[r].clear();
        }
        for &di in &self.bs_touched {
            self.bs_counts[di as usize] = 0;
        }
        self.bs_touched.clear();
    }
}

/// Single-pass aggregator. Feed it hours, then [`finish`](Self::finish).
#[derive(Debug)]
pub struct Analyzer<'a> {
    db: &'a DeviceDb,
    hours: u32,
    metrics: Option<AnalyzerMetrics>,
    scratch: HourScratch,
    result: Analysis,
}

impl<'a> Analyzer<'a> {
    /// Create an analyzer over `db` for a window of `hours` intervals.
    pub fn new(db: &'a DeviceDb, hours: u32) -> Self {
        let h = hours as usize;
        Analyzer {
            db,
            hours,
            metrics: None,
            scratch: HourScratch::new(db.len()),
            result: Analysis {
                hours,
                devices: DeviceTable::new(),
                protocol_packets: [[0; 3]; 2],
                udp: [RealmSeries::new(h), RealmSeries::new(h)],
                tcp_scan: [RealmSeries::new(h), RealmSeries::new(h)],
                backscatter_hourly: [vec![0; h], vec![0; h]],
                backscatter_intervals: vec![BackscatterInterval::default(); h],
                scan_services: BTreeMap::new(),
                top5_series: vec![[0; 5]; h],
                udp_ports: HashMap::new(),
                unmatched_flows: 0,
                unmatched_packets: 0,
                cache: ViewCache::default(),
            },
        }
    }

    /// Like [`new`](Self::new), but publishing per-class packet counters
    /// (`analysis.packets.<realm>.<class>`) and unmatched-traffic counters
    /// into `registry`. Counters are accumulated locally per hour and
    /// flushed with one atomic add each at the end of
    /// [`ingest_hour`](Self::ingest_hour), so the hot per-flow path pays
    /// nothing for instrumentation.
    pub fn with_metrics(db: &'a DeviceDb, hours: u32, registry: &Registry) -> Self {
        let mut a = Self::new(db, hours);
        a.metrics = Some(AnalyzerMetrics::register(registry));
        a
    }

    /// Rehydrate an analyzer from a previously finished [`Analysis`] so
    /// more hours can be ingested or merged into it (incremental
    /// re-aggregation, checkpoint/resume).
    pub fn resume(db: &'a DeviceDb, analysis: Analysis) -> Self {
        Analyzer {
            db,
            hours: analysis.hours,
            metrics: None,
            scratch: HourScratch::new(db.len()),
            result: analysis,
        }
    }

    /// Ingest one hour of traffic.
    ///
    /// Thin wrapper over the block-streaming path: one
    /// [`begin_hour`](Self::begin_hour), one slice, one finish — so the
    /// materialized and streaming ingests share every line of per-flow
    /// code and are bit-identical by construction.
    ///
    /// # Panics
    ///
    /// Panics if the hour's interval is outside the window.
    pub fn ingest_hour(&mut self, hour: &HourTraffic) {
        let mut ingest = self.begin_hour(hour.interval);
        ingest.ingest(&hour.flows);
        ingest.finish();
    }

    /// Start ingesting the hour at `interval`, flow slice by flow slice —
    /// the receiving end of the fused decode→ingest path. The returned
    /// [`HourIngest`] implements
    /// [`FlowSink`](iotscope_net::store::FlowSink), so it plugs straight
    /// into [`decode_hour_visit`](iotscope_net::store::decode_hour_visit);
    /// call [`HourIngest::finish`] to fold the hour's per-hour scratch
    /// (distinct counts, top backscatter victim, metric flush) into the
    /// result. Dropping it without finishing discards the hour's
    /// contribution to those per-hour aggregates — which is what a caller
    /// wants after a mid-hour decode error.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is outside the window.
    pub fn begin_hour(&mut self, interval: u32) -> HourIngest<'_, 'a> {
        assert!(
            interval >= 1 && interval <= self.hours,
            "interval {interval} outside 1..={}",
            self.hours
        );
        self.result.cache.reset();
        self.scratch.clear();
        HourIngest {
            interval,
            idx: (interval - 1) as usize,
            day: (interval - 1) / 24,
            hour_packets: [[0; 5]; 2],
            hour_unmatched: (0, 0),
            an: self,
        }
    }

    /// Merge another analyzer's state (built over *disjoint hours* of the
    /// same window and database) into this one.
    ///
    /// Per-device state merges as columnar addition
    /// ([`DeviceTable::merge_from`]) and per-service/port device sets as
    /// word-wise ORs — no per-key rehashing of the device axis.
    ///
    /// # Panics
    ///
    /// Panics if the window lengths differ.
    pub fn merge(&mut self, other: Analyzer<'_>) {
        assert_eq!(self.hours, other.hours, "mismatched windows");
        self.result.cache.reset();
        let o = other.result;
        self.result.devices.merge_from(o.devices);
        for r in 0..2 {
            for p in 0..3 {
                self.result.protocol_packets[r][p] += o.protocol_packets[r][p];
            }
            for i in 0..self.hours as usize {
                self.result.udp[r].packets[i] += o.udp[r].packets[i];
                self.result.udp[r].dst_ips[i] += o.udp[r].dst_ips[i];
                self.result.udp[r].dst_ports[i] += o.udp[r].dst_ports[i];
                self.result.udp[r].devices[i] += o.udp[r].devices[i];
                self.result.tcp_scan[r].packets[i] += o.tcp_scan[r].packets[i];
                self.result.tcp_scan[r].dst_ips[i] += o.tcp_scan[r].dst_ips[i];
                self.result.tcp_scan[r].dst_ports[i] += o.tcp_scan[r].dst_ports[i];
                self.result.tcp_scan[r].devices[i] += o.tcp_scan[r].devices[i];
                self.result.backscatter_hourly[r][i] += o.backscatter_hourly[r][i];
            }
        }
        for (i, slot) in o.backscatter_intervals.into_iter().enumerate() {
            let cur = &mut self.result.backscatter_intervals[i];
            cur.total += slot.total;
            merge_top_victim(&mut cur.top_victim, slot.top_victim);
        }
        for (key, stat) in o.scan_services {
            let cur = self.result.scan_services.entry(key).or_default();
            for r in 0..2 {
                cur.packets[r] += stat.packets[r];
                cur.devices[r].union_with(&stat.devices[r]);
            }
        }
        for (i, row) in o.top5_series.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                self.result.top5_series[i][j] += v;
            }
        }
        for (port, stat) in o.udp_ports {
            let cur = self.result.udp_ports.entry(port).or_default();
            cur.packets += stat.packets;
            cur.devices.union_with(&stat.devices);
        }
        self.result.unmatched_flows += o.unmatched_flows;
        self.result.unmatched_packets += o.unmatched_packets;
    }

    /// Inspect the aggregation state accumulated so far (used by the
    /// streaming analyzer to evaluate alerts after each hour). Device
    /// rows are in first-seen order until [`finish`](Self::finish)
    /// normalizes them.
    pub fn peek(&self) -> &Analysis {
        &self.result
    }

    /// Finish and return the aggregation result, with device rows
    /// normalized to id order — so finished results are reproducible
    /// regardless of ingest/merge order.
    pub fn finish(mut self) -> Analysis {
        self.result.devices.normalize();
        self.result.cache.reset();
        self.result
    }
}

/// One hour's streaming ingest, produced by [`Analyzer::begin_hour`].
///
/// Feed it in-order flow slices (any slicing — per v3 block, per
/// whole hour, per record — folds identically) and then
/// [`finish`](Self::finish) to commit the hour's per-hour aggregates.
#[derive(Debug)]
pub struct HourIngest<'h, 'a> {
    an: &'h mut Analyzer<'a>,
    interval: u32,
    idx: usize,
    day: u32,
    /// Local metric accumulators, flushed once at finish so the hot
    /// per-flow path pays nothing for instrumentation.
    hour_packets: [[u64; 5]; 2],
    hour_unmatched: (u64, u64),
}

impl HourIngest<'_, '_> {
    /// Fold one slice of the hour's flows.
    pub fn ingest(&mut self, flows: &[FlowTuple]) {
        let index = self.an.db.correlation_index();
        self.fold(flows, |_, flow| index.correlate(flow.src_ip));
    }

    /// The one per-flow fold both ingest paths share: `correlated`
    /// supplies each flow's device correlation — per-record binary
    /// search for [`ingest`](Self::ingest), a precomputed merge-join
    /// column for the batched `visit_block` — so the two paths are
    /// bit-identical by construction.
    fn fold(
        &mut self,
        flows: &[FlowTuple],
        mut correlated: impl FnMut(usize, &FlowTuple) -> Option<(u32, Realm)>,
    ) {
        let idx = self.idx;
        let an = &mut *self.an;
        let scratch = &mut an.scratch;
        let result = &mut an.result;

        for (flow_i, flow) in flows.iter().enumerate() {
            let Some((di, realm)) = correlated(flow_i, flow) else {
                result.unmatched_flows += 1;
                result.unmatched_packets += u64::from(flow.packets);
                self.hour_unmatched.0 += 1;
                self.hour_unmatched.1 += u64::from(flow.packets);
                continue;
            };
            // Dense-id contract: the intern index *is* the device id.
            let id = DeviceId(di);
            let class = classify(flow);
            let ci = class_idx(class);
            let pkts = u64::from(flow.packets);
            let r = realm_idx(realm);

            result
                .devices
                .observe(id, realm, ci, pkts, self.interval, self.day);
            self.hour_packets[r][ci] += pkts;

            let proto_i = match flow.protocol {
                TransportProtocol::Icmp => 0,
                TransportProtocol::Tcp => 1,
                TransportProtocol::Udp => 2,
            };
            result.protocol_packets[r][proto_i] += pkts;

            match class {
                TrafficClass::Udp => {
                    result.udp[r].packets[idx] += pkts;
                    scratch.udp_ips[r].insert(u32::from(flow.dst_ip));
                    scratch.udp_ports[r].insert(flow.dst_port);
                    scratch.udp_devs[r].insert(id);
                    let port = result.udp_ports.entry(flow.dst_port).or_default();
                    port.packets += pkts;
                    port.devices.insert(id);
                }
                TrafficClass::TcpScan => {
                    result.tcp_scan[r].packets[idx] += pkts;
                    scratch.scan_ips[r].insert(u32::from(flow.dst_ip));
                    scratch.scan_ports[r].insert(flow.dst_port);
                    scratch.scan_devs[r].insert(id);
                    let key = match ScanService::from_port(flow.dst_port) {
                        Some(svc) => ServiceKey::Named(svc),
                        None => ServiceKey::Other,
                    };
                    let stat = result.scan_services.entry(key).or_default();
                    stat.packets[r] += pkts;
                    stat.devices[r].insert(id);
                    if let ServiceKey::Named(svc) = key {
                        if let Some(pos) = TOP5_SERVICES.iter().position(|s| *s == svc) {
                            result.top5_series[idx][pos] += pkts;
                        }
                    }
                }
                TrafficClass::Backscatter => {
                    result.backscatter_hourly[r][idx] += pkts;
                    let di = di as usize;
                    if scratch.bs_counts[di] == 0 {
                        scratch.bs_touched.push(di as u32);
                    }
                    scratch.bs_counts[di] += pkts;
                }
                TrafficClass::IcmpScan | TrafficClass::Other => {}
            }
        }
    }

    /// Commit the hour: fold the per-hour scratch (distinct dst-IP /
    /// port / device counts, dominant backscatter victim) into the
    /// result and flush the hour's metric accumulators.
    pub fn finish(self) {
        let idx = self.idx;
        let an = self.an;
        let scratch = &mut an.scratch;
        let result = &mut an.result;
        for r in 0..2 {
            result.udp[r].dst_ips[idx] += scratch.udp_ips[r].len() as u64;
            result.udp[r].dst_ports[idx] += scratch.udp_ports[r].len as u64;
            result.udp[r].devices[idx] += scratch.udp_devs[r].len() as u64;
            result.tcp_scan[r].dst_ips[idx] += scratch.scan_ips[r].len() as u64;
            result.tcp_scan[r].dst_ports[idx] += scratch.scan_ports[r].len as u64;
            result.tcp_scan[r].devices[idx] += scratch.scan_devs[r].len() as u64;
        }
        // Attribute the hour's backscatter to its dominant victim. Ties
        // break toward the smaller device id so the result does not
        // depend on accumulation order.
        let slot = &mut result.backscatter_intervals[idx];
        let mut top: Option<(DeviceId, u64)> = None;
        let mut total = 0u64;
        for &di in &scratch.bs_touched {
            let cnt = scratch.bs_counts[di as usize];
            let id = DeviceId(di);
            total += cnt;
            if top.is_none_or(|(bd, bc)| cnt > bc || (cnt == bc && id < bd)) {
                top = Some((id, cnt));
            }
        }
        slot.total += total;
        merge_top_victim(&mut slot.top_victim, top);

        if let Some(m) = &an.metrics {
            for (r, row) in self.hour_packets.iter().enumerate() {
                for (c, &pkts) in row.iter().enumerate() {
                    if pkts > 0 {
                        m.packets[r][c].add(pkts);
                    }
                }
            }
            m.unmatched_flows.add(self.hour_unmatched.0);
            m.unmatched_packets.add(self.hour_unmatched.1);
        }
    }
}

impl iotscope_net::store::FlowSink for HourIngest<'_, '_> {
    fn on_flows(&mut self, flows: &[FlowTuple]) {
        self.ingest(flows);
    }

    /// Batched tier: correlate the whole ascending `src_ip` column in
    /// one merge-join pass, then fold the block's flows against the
    /// precomputed column. Same fold, same order, bit-identical to the
    /// per-record path.
    fn visit_block(&mut self, block: &iotscope_net::store::ColumnBlock) {
        let index = self.an.db.correlation_index();
        let mut corr = std::mem::take(&mut self.an.scratch.corr);
        index.correlate_sorted_block(block.src_ip(), &mut corr);
        self.fold(block.flows(), |i, _| corr[i]);
        self.an.scratch.corr = corr;
    }
}

/// Keep the dominant `(victim, packets)` pair; ties break toward the
/// smaller device id (determinism across merge orders).
pub(crate) fn merge_top_victim(
    current: &mut Option<(DeviceId, u64)>,
    candidate: Option<(DeviceId, u64)>,
) {
    match (*current, candidate) {
        (None, t) => *current = t,
        (Some((cd, cp)), Some((d, p))) if p > cp || (p == cp && d < cd) => {
            *current = Some((d, p));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, CpsService, IotDevice, IspId};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::{IcmpType, TcpFlags};
    use iotscope_net::time::UnixHour;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices([
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(1, 0, 0, 1),
                profile: DeviceProfile::Consumer(ConsumerKind::Router),
                country: CountryCode::from_code("RU").unwrap(),
                isp: IspId(0),
            },
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(2, 0, 0, 1),
                profile: DeviceProfile::Cps(vec![CpsService::EthernetIp]),
                country: CountryCode::from_code("CN").unwrap(),
                isp: IspId(1),
            },
        ])
    }

    fn hour(interval: u32, flows: Vec<FlowTuple>) -> HourTraffic {
        HourTraffic {
            interval,
            hour: UnixHour::new(1000 + u64::from(interval)),
            flows,
        }
    }

    fn syn(src: [u8; 4], dport: u16) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            dport,
            TcpFlags::SYN,
        )
    }

    #[test]
    fn correlation_matches_only_inventory_sources() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(
            1,
            vec![
                syn([1, 0, 0, 1], 23),
                syn([9, 9, 9, 9], 23), // noise, not in db
            ],
        ));
        let a = an.finish();
        assert_eq!(a.device_count(), 1);
        assert_eq!(a.unmatched_flows, 1);
        assert_eq!(a.unmatched_packets, 1);
        assert_eq!(a.compromised_devices(), vec![DeviceId(0)]);
    }

    #[test]
    fn sliced_ingest_matches_whole_hour_ingest() {
        // begin_hour + arbitrary slicing must equal ingest_hour exactly —
        // the contract the fused block-streaming path rides on.
        let db = db();
        let mixed = vec![
            syn([1, 0, 0, 1], 23),
            syn([9, 9, 9, 9], 23), // unmatched
            FlowTuple::udp(
                Ipv4Addr::new(1, 0, 0, 1),
                Ipv4Addr::new(44, 1, 1, 2),
                5000,
                37547,
            )
            .with_packets(3),
            FlowTuple::tcp(
                Ipv4Addr::new(2, 0, 0, 1),
                Ipv4Addr::new(44, 1, 1, 1),
                44818,
                50000,
                TcpFlags::SYN | TcpFlags::ACK,
            )
            .with_packets(5),
            syn([2, 0, 0, 1], 2323),
        ];
        let mut whole = Analyzer::new(&db, 4);
        whole.ingest_hour(&hour(2, mixed.clone()));
        let whole = whole.finish();
        for chunk in [1, 2, mixed.len()] {
            let mut sliced = Analyzer::new(&db, 4);
            let mut ingest = sliced.begin_hour(2);
            for part in mixed.chunks(chunk) {
                ingest.ingest(part);
            }
            ingest.finish();
            assert_eq!(sliced.finish(), whole, "chunk={chunk}");
        }
        // An unfinished hour contributes flows but no per-hour distinct
        // counts; dropping the ingest must not poison a later hour.
        let mut dropped = Analyzer::new(&db, 4);
        {
            let mut ingest = dropped.begin_hour(1);
            ingest.ingest(&mixed);
        }
        let mut redo = dropped.begin_hour(2);
        redo.ingest(&mixed);
        redo.finish();
        let redone = dropped.finish();
        assert_eq!(
            redone.udp[0].devices[0], 0,
            "dropped hour left no distincts"
        );
        assert_eq!(redone.udp[0].devices[1], 1);
    }

    #[test]
    fn per_class_accounting() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        let synack = FlowTuple::tcp(
            Ipv4Addr::new(2, 0, 0, 1),
            Ipv4Addr::new(44, 1, 1, 1),
            44818,
            50000,
            TcpFlags::SYN | TcpFlags::ACK,
        )
        .with_packets(5);
        let udp = FlowTuple::udp(
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(44, 1, 1, 2),
            5000,
            37547,
        )
        .with_packets(3);
        let ping = FlowTuple::icmp(
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(44, 1, 1, 3),
            IcmpType::EchoRequest,
        );
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23), synack, udp, ping]));
        let a = an.finish();
        let consumer = a.devices.get(DeviceId(0)).unwrap();
        assert_eq!(consumer.packets(TrafficClass::TcpScan), 1);
        assert_eq!(consumer.packets(TrafficClass::Udp), 3);
        assert_eq!(consumer.packets(TrafficClass::IcmpScan), 1);
        assert_eq!(consumer.scan_packets(), 2);
        assert_eq!(consumer.total_packets(), 5);
        let cps = a.devices.get(DeviceId(1)).unwrap();
        assert_eq!(cps.packets(TrafficClass::Backscatter), 5);
        assert_eq!(a.dos_victims(), vec![DeviceId(1)]);
        assert_eq!(a.tcp_scanners(), vec![DeviceId(0)]);
        assert_eq!(a.udp_devices(), vec![DeviceId(0)]);
        assert_eq!(a.total_packets(), 10);
        // Fig 4 accounting: consumer r=0: icmp 1, tcp 1, udp 3.
        assert_eq!(a.protocol_packets[0], [1, 1, 3]);
        assert_eq!(a.protocol_packets[1], [0, 5, 0]);
    }

    #[test]
    fn hourly_series_and_distinct_counts() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(
            3,
            vec![
                syn([1, 0, 0, 1], 23),
                syn([1, 0, 0, 1], 23),
                syn([1, 0, 0, 1], 80),
            ],
        ));
        let a = an.finish();
        let s = &a.tcp_scan[0];
        assert_eq!(s.packets[2], 3);
        assert_eq!(s.dst_ports[2], 2); // 23, 80
        assert_eq!(s.devices[2], 1);
        assert_eq!(s.packets[0], 0);
    }

    #[test]
    fn service_table_accumulates() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(
            1,
            vec![
                syn([1, 0, 0, 1], 23),
                syn([1, 0, 0, 1], 2323),
                syn([2, 0, 0, 1], 22),
                syn([2, 0, 0, 1], 12345), // unnamed port → Other
            ],
        ));
        let a = an.finish();
        let telnet = &a.scan_services[&ServiceKey::Named(ScanService::Telnet)];
        assert_eq!(telnet.packets, [2, 0]);
        assert_eq!(telnet.devices[0].len(), 1);
        let ssh = &a.scan_services[&ServiceKey::Named(ScanService::Ssh)];
        assert_eq!(ssh.packets, [0, 1]);
        let other = &a.scan_services[&ServiceKey::Other];
        assert_eq!(other.packets, [0, 1]);
        // Fig 10 series: Telnet idx 0, SSH idx 2.
        assert_eq!(a.top5_series[0][0], 2);
        assert_eq!(a.top5_series[0][2], 1);
    }

    #[test]
    fn backscatter_attribution_tracks_dominant_victim() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        let bs = |src: [u8; 4], pkts: u32| {
            FlowTuple::tcp(
                Ipv4Addr::from(src),
                Ipv4Addr::new(44, 2, 2, 2),
                80,
                40000,
                TcpFlags::SYN | TcpFlags::ACK,
            )
            .with_packets(pkts)
        };
        an.ingest_hour(&hour(2, vec![bs([1, 0, 0, 1], 10), bs([2, 0, 0, 1], 90)]));
        let a = an.finish();
        let slot = &a.backscatter_intervals[1];
        assert_eq!(slot.total, 100);
        assert_eq!(slot.top_victim, Some((DeviceId(1), 90)));
        assert_eq!(a.backscatter_hourly[0][1], 10);
        assert_eq!(a.backscatter_hourly[1][1], 90);
    }

    #[test]
    fn discovery_curve_cumulates_by_day() {
        let db = db();
        let mut an = Analyzer::new(&db, 48);
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23)]));
        an.ingest_hour(&hour(30, vec![syn([2, 0, 0, 1], 23)]));
        let a = an.finish();
        let curve = a.discovery_curve();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], (1, 1, 0));
        assert_eq!(curve[1], (2, 1, 1));
    }

    #[test]
    fn first_interval_takes_minimum_across_order() {
        let db = db();
        let mut an = Analyzer::new(&db, 48);
        an.ingest_hour(&hour(30, vec![syn([1, 0, 0, 1], 23)]));
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23)]));
        let a = an.finish();
        assert_eq!(a.devices.get(DeviceId(0)).unwrap().first_interval, 2);
        let (avg_all, avg_consumer) = a.daily_active_devices();
        assert!((avg_all - 1.0).abs() < 1e-9);
        assert!((avg_consumer - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let db = db();
        let h1 = hour(1, vec![syn([1, 0, 0, 1], 23), syn([2, 0, 0, 1], 22)]);
        let h2 = hour(
            2,
            vec![
                syn([1, 0, 0, 1], 80),
                FlowTuple::udp(
                    Ipv4Addr::new(2, 0, 0, 1),
                    Ipv4Addr::new(44, 0, 0, 9),
                    1,
                    137,
                )
                .with_packets(7),
            ],
        );
        let mut seq = Analyzer::new(&db, 4);
        seq.ingest_hour(&h1);
        seq.ingest_hour(&h2);
        let seq = seq.finish();

        let mut a = Analyzer::new(&db, 4);
        a.ingest_hour(&h1);
        let mut b = Analyzer::new(&db, 4);
        b.ingest_hour(&h2);
        a.merge(b);
        let par = a.finish();

        assert_eq!(par.devices, seq.devices);
        // Normalized tables agree row-for-row, not just as sets.
        assert_eq!(par.devices.ids(), seq.devices.ids());
        assert_eq!(par.protocol_packets, seq.protocol_packets);
        assert_eq!(par.udp[0].packets, seq.udp[0].packets);
        assert_eq!(par.udp[1].packets, seq.udp[1].packets);
        assert_eq!(par.scan_services, seq.scan_services);
        assert_eq!(par.udp_ports, seq.udp_ports);
        assert_eq!(par.backscatter_intervals, seq.backscatter_intervals);
        assert_eq!(par.unmatched_flows, seq.unmatched_flows);
        assert_eq!(par, seq);
    }

    #[test]
    fn resume_continues_aggregation() {
        let db = db();
        let h1 = hour(1, vec![syn([1, 0, 0, 1], 23)]);
        let h2 = hour(2, vec![syn([1, 0, 0, 1], 80), syn([2, 0, 0, 1], 22)]);
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&h1);
        let checkpoint = an.finish();
        let mut resumed = Analyzer::resume(&db, checkpoint);
        resumed.ingest_hour(&h2);
        let a = resumed.finish();

        let mut seq = Analyzer::new(&db, 4);
        seq.ingest_hour(&h1);
        seq.ingest_hour(&h2);
        assert_eq!(a, seq.finish());
    }

    #[test]
    fn views_are_invalidated_by_ingest() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(1, vec![syn([1, 0, 0, 1], 23)]));
        // Populate the memoized views from a peek snapshot…
        assert_eq!(an.peek().view().compromised(), &[DeviceId(0)]);
        assert_eq!(an.peek().view().realm_counts(), (1, 0));
        // …then ingest more; the views must reflect the new state.
        an.ingest_hour(&hour(2, vec![syn([2, 0, 0, 1], 22)]));
        assert_eq!(an.peek().view().compromised(), &[DeviceId(0), DeviceId(1)]);
        assert_eq!(an.peek().view().realm_counts(), (1, 1));
        let a = an.finish();
        assert_eq!(a.view().tcp_scanners(), &[DeviceId(0), DeviceId(1)]);
        // Clones start with a cold cache but equal analyses stay equal.
        let cloned = a.clone();
        assert_eq!(cloned, a);
        assert_eq!(cloned.view().compromised(), a.view().compromised());
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_window_hour_panics() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(5, vec![]));
    }

    #[test]
    fn daily_packet_totals_sum_series_by_day() {
        let db = db();
        let mut an = Analyzer::new(&db, 48);
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23).with_packets(5)]));
        an.ingest_hour(&hour(
            30,
            vec![
                syn([2, 0, 0, 1], 22).with_packets(7),
                FlowTuple::udp(
                    Ipv4Addr::new(1, 0, 0, 1),
                    Ipv4Addr::new(44, 0, 0, 3),
                    1,
                    137,
                )
                .with_packets(3),
            ],
        ));
        let a = an.finish();
        assert_eq!(a.daily_packet_totals(None), vec![5, 10]);
        assert_eq!(a.daily_packet_totals(Some(Realm::Consumer)), vec![5, 3]);
        assert_eq!(a.daily_packet_totals(Some(Realm::Cps)), vec![0, 7]);
    }

    #[test]
    fn with_metrics_publishes_class_and_unmatched_counters() {
        let db = db();
        let registry = Registry::new();
        let mut an = Analyzer::with_metrics(&db, 4, &registry);
        an.ingest_hour(&hour(
            1,
            vec![
                syn([1, 0, 0, 1], 23).with_packets(4),
                syn([9, 9, 9, 9], 23).with_packets(2), // unmatched noise
                FlowTuple::udp(
                    Ipv4Addr::new(2, 0, 0, 1),
                    Ipv4Addr::new(44, 0, 0, 9),
                    1,
                    137,
                )
                .with_packets(7),
            ],
        ));
        let a = an.finish();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("analysis.packets.consumer.tcp_scan"), Some(4));
        assert_eq!(snap.counter("analysis.packets.cps.udp"), Some(7));
        assert_eq!(snap.counter("analysis.packets.consumer.udp"), Some(0));
        assert_eq!(snap.counter("analysis.flows_unmatched"), Some(1));
        assert_eq!(snap.counter("analysis.packets_unmatched"), Some(2));
        // The registry view agrees with the analysis itself.
        assert_eq!(a.unmatched_packets, 2);
    }

    #[test]
    fn empty_analysis_is_sane() {
        let db = db();
        let a = Analyzer::new(&db, 4).finish();
        assert!(a.compromised_devices().is_empty());
        assert_eq!(a.compromised_counts(), (0, 0));
        assert_eq!(a.total_packets(), 0);
        assert!(a.dos_victims().is_empty());
        let curve = a.discovery_curve();
        assert_eq!(curve, vec![(0, 0, 0)]);
    }
}
