//! The correlation + aggregation engine.
//!
//! [`Analyzer`] makes a single pass over hourly flowtuples, joining source
//! addresses against the IoT inventory (§III-B's correlation algorithm)
//! and accumulating every aggregate the paper's figures and tables need.
//! Hours may be ingested in any order, and two analyzers over disjoint
//! hour sets [`merge`](Analyzer::merge) into the same result — which is
//! what makes parallel analysis exact rather than approximate.

use crate::classify::{classify, TrafficClass};
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_net::ports::ScanService;
use iotscope_net::protocol::TransportProtocol;
use iotscope_obs::{Counter, Registry};
use iotscope_telescope::HourTraffic;
use std::collections::{BTreeMap, HashMap, HashSet};

/// Metric-name suffixes for the five traffic classes, indexed by
/// [`class_idx`].
const CLASS_NAMES: [&str; 5] = ["tcp_scan", "icmp_scan", "backscatter", "udp", "other"];
/// Metric-name suffixes for the two realms, indexed by [`realm_idx`].
const REALM_NAMES: [&str; 2] = ["consumer", "cps"];

/// Analyzer-layer metric handles (`analysis.` prefix), all
/// [stable](iotscope_obs::Stability::Stable): packet totals are sums
/// over ingested hours and commute across workers.
#[derive(Debug, Clone)]
struct AnalyzerMetrics {
    /// `analysis.packets.<realm>.<class>`, indexed `[realm][class]`.
    packets: [[Counter; 5]; 2],
    /// `analysis.flows_unmatched`: flows from sources outside the inventory.
    unmatched_flows: Counter,
    /// `analysis.packets_unmatched`: packets from unmatched sources.
    unmatched_packets: Counter,
}

impl AnalyzerMetrics {
    fn register(registry: &Registry) -> Self {
        AnalyzerMetrics {
            packets: std::array::from_fn(|r| {
                std::array::from_fn(|c| {
                    registry.counter(&format!(
                        "analysis.packets.{}.{}",
                        REALM_NAMES[r], CLASS_NAMES[c]
                    ))
                })
            }),
            unmatched_flows: registry.counter("analysis.flows_unmatched"),
            unmatched_packets: registry.counter("analysis.packets_unmatched"),
        }
    }
}

/// The Fig 10 service set: the five most-scanned protocol groups.
pub const TOP5_SERVICES: [ScanService; 5] = [
    ScanService::Telnet,
    ScanService::Http,
    ScanService::Ssh,
    ScanService::BackroomNet,
    ScanService::Cwmp,
];

/// Dense index for a realm.
#[inline]
pub fn realm_idx(realm: Realm) -> usize {
    match realm {
        Realm::Consumer => 0,
        Realm::Cps => 1,
    }
}

/// Dense index for a traffic class.
#[inline]
pub fn class_idx(class: TrafficClass) -> usize {
    match class {
        TrafficClass::TcpScan => 0,
        TrafficClass::IcmpScan => 1,
        TrafficClass::Backscatter => 2,
        TrafficClass::Udp => 3,
        TrafficClass::Other => 4,
    }
}

/// Everything observed about one correlated device.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceObservation {
    /// The device.
    pub device: DeviceId,
    /// Its realm (denormalized for hot paths).
    pub realm: Realm,
    /// First interval (1-based) the device was seen at the telescope.
    pub first_interval: u32,
    /// Flow records observed.
    pub flows: u64,
    /// Packets per traffic class (indexed by [`class_idx`]).
    pub packets_by_class: [u64; 5],
    /// Bitmask of active days (bit d = day d).
    pub days_active: u64,
}

impl DeviceObservation {
    /// Total packets across classes.
    pub fn total_packets(&self) -> u64 {
        self.packets_by_class.iter().sum()
    }

    /// Packets of one class.
    pub fn packets(&self, class: TrafficClass) -> u64 {
        self.packets_by_class[class_idx(class)]
    }

    /// Combined scanning packets (TCP SYN + ICMP echo).
    pub fn scan_packets(&self) -> u64 {
        self.packets(TrafficClass::TcpScan) + self.packets(TrafficClass::IcmpScan)
    }
}

/// Hourly `(packets, distinct dst IPs, distinct dst ports, active devices)`
/// series for one realm and one traffic class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RealmSeries {
    /// Packets per interval.
    pub packets: Vec<u64>,
    /// Distinct destination addresses per interval.
    pub dst_ips: Vec<u64>,
    /// Distinct destination ports per interval.
    pub dst_ports: Vec<u64>,
    /// Distinct emitting devices per interval.
    pub devices: Vec<u64>,
}

impl RealmSeries {
    fn new(hours: usize) -> Self {
        RealmSeries {
            packets: vec![0; hours],
            dst_ips: vec![0; hours],
            dst_ports: vec![0; hours],
            devices: vec![0; hours],
        }
    }
}

/// Key for Table V rows: a named service group or the long tail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum ServiceKey {
    /// One of the 14 named groups.
    Named(ScanService),
    /// Every other scanned port.
    Other,
}

/// Per-service scanning statistics, split by realm.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ServiceStat {
    /// Packets per realm (`[consumer, cps]`).
    pub packets: [u64; 2],
    /// Scanning devices per realm.
    pub devices: [HashSet<DeviceId>; 2],
}

/// Per-UDP-port statistics (Table IV).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PortStat {
    /// UDP packets to the port.
    pub packets: u64,
    /// Devices that sent them.
    pub devices: HashSet<DeviceId>,
}

/// Per-interval backscatter attribution (who dominated a DoS episode).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BackscatterInterval {
    /// Total backscatter packets in the interval.
    pub total: u64,
    /// The victim emitting the most backscatter and its packet count.
    pub top_victim: Option<(DeviceId, u64)>,
}

/// The complete aggregation result.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Window length in hours.
    pub hours: u32,
    /// Per-device observations, keyed by device.
    pub observations: HashMap<DeviceId, DeviceObservation>,
    /// Packets per `[realm][transport]` with transports ordered
    /// `[ICMP, TCP, UDP]` (Fig 4).
    pub protocol_packets: [[u64; 3]; 2],
    /// Hourly UDP series per realm (Fig 5).
    pub udp: [RealmSeries; 2],
    /// Hourly TCP-scan series per realm (Fig 9).
    pub tcp_scan: [RealmSeries; 2],
    /// Hourly backscatter packets per realm (Fig 7).
    pub backscatter_hourly: [Vec<u64>; 2],
    /// Per-interval backscatter attribution (§IV-B1).
    pub backscatter_intervals: Vec<BackscatterInterval>,
    /// Table V statistics per service group.
    pub scan_services: BTreeMap<ServiceKey, ServiceStat>,
    /// Hourly scan packets for the five Fig 10 services.
    pub top5_series: Vec<[u64; 5]>,
    /// Table IV statistics per UDP destination port.
    pub udp_ports: HashMap<u16, PortStat>,
    /// Flows from sources not in the inventory (noise filtered out by
    /// correlation).
    pub unmatched_flows: u64,
    /// Packets from unmatched sources.
    pub unmatched_packets: u64,
}

impl Analysis {
    /// All correlated (compromised) devices, sorted by id.
    pub fn compromised_devices(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self.observations.keys().copied().collect();
        v.sort();
        v
    }

    /// Count of correlated devices per realm `(consumer, cps)`.
    pub fn compromised_counts(&self) -> (usize, usize) {
        let consumer = self
            .observations
            .values()
            .filter(|o| o.realm == Realm::Consumer)
            .count();
        (consumer, self.observations.len() - consumer)
    }

    /// Total packets attributed to correlated devices.
    pub fn total_packets(&self) -> u64 {
        self.observations.values().map(|o| o.total_packets()).sum()
    }

    /// Devices that emitted any backscatter — the inferred DoS victims.
    pub fn dos_victims(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .observations
            .values()
            .filter(|o| o.packets(TrafficClass::Backscatter) > 0)
            .map(|o| o.device)
            .collect();
        v.sort();
        v
    }

    /// Devices that emitted TCP scanning traffic.
    pub fn tcp_scanners(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .observations
            .values()
            .filter(|o| o.packets(TrafficClass::TcpScan) > 0)
            .map(|o| o.device)
            .collect();
        v.sort();
        v
    }

    /// Devices that emitted UDP traffic.
    pub fn udp_devices(&self) -> Vec<DeviceId> {
        let mut v: Vec<DeviceId> = self
            .observations
            .values()
            .filter(|o| o.packets(TrafficClass::Udp) > 0)
            .map(|o| o.device)
            .collect();
        v.sort();
        v
    }

    /// Cumulative number of devices discovered by the end of each day
    /// (Fig 2), overall and per realm: `(all, consumer, cps)` per day.
    pub fn discovery_curve(&self) -> Vec<(usize, usize, usize)> {
        let num_days = self.hours.div_ceil(24) as usize;
        let mut per_day = vec![(0usize, 0usize, 0usize); num_days];
        for o in self.observations.values() {
            let day = ((o.first_interval - 1) / 24) as usize;
            let slot = &mut per_day[day.min(num_days - 1)];
            slot.0 += 1;
            match o.realm {
                Realm::Consumer => slot.1 += 1,
                Realm::Cps => slot.2 += 1,
            }
        }
        // Make cumulative.
        for i in 1..per_day.len() {
            per_day[i].0 += per_day[i - 1].0;
            per_day[i].1 += per_day[i - 1].1;
            per_day[i].2 += per_day[i - 1].2;
        }
        per_day
    }

    /// Daily packet totals for one realm (`None` = both), summed from the
    /// hourly series over complete 24-hour blocks — §IV's "daily mean =
    /// 23.5M and σ = 0.92M packets" statistics.
    pub fn daily_packet_totals(&self, realm: Option<Realm>) -> Vec<u64> {
        let realms: &[usize] = match realm {
            None => &[0, 1],
            Some(Realm::Consumer) => &[0],
            Some(Realm::Cps) => &[1],
        };
        let num_days = self.hours.div_ceil(24) as usize;
        let mut days = vec![0u64; num_days];
        for i in 0..self.hours as usize {
            let day = i / 24;
            for r in realms {
                days[day] += self.tcp_scan[*r].packets[i]
                    + self.udp[*r].packets[i]
                    + self.backscatter_hourly[*r][i];
            }
        }
        days
    }

    /// Average number of distinct devices active per day `(all, consumer)`.
    pub fn daily_active_devices(&self) -> (f64, f64) {
        let num_days = self.hours.div_ceil(24).max(1);
        let mut all = 0u64;
        let mut consumer = 0u64;
        for o in self.observations.values() {
            let days = o.days_active.count_ones() as u64;
            all += days;
            if o.realm == Realm::Consumer {
                consumer += days;
            }
        }
        (
            all as f64 / f64::from(num_days),
            consumer as f64 / f64::from(num_days),
        )
    }
}

/// Single-pass aggregator. Feed it hours, then [`finish`](Self::finish).
#[derive(Debug)]
pub struct Analyzer<'a> {
    db: &'a DeviceDb,
    hours: u32,
    metrics: Option<AnalyzerMetrics>,
    result: Analysis,
}

impl<'a> Analyzer<'a> {
    /// Create an analyzer over `db` for a window of `hours` intervals.
    pub fn new(db: &'a DeviceDb, hours: u32) -> Self {
        let h = hours as usize;
        Analyzer {
            db,
            hours,
            metrics: None,
            result: Analysis {
                hours,
                observations: HashMap::new(),
                protocol_packets: [[0; 3]; 2],
                udp: [RealmSeries::new(h), RealmSeries::new(h)],
                tcp_scan: [RealmSeries::new(h), RealmSeries::new(h)],
                backscatter_hourly: [vec![0; h], vec![0; h]],
                backscatter_intervals: vec![BackscatterInterval::default(); h],
                scan_services: BTreeMap::new(),
                top5_series: vec![[0; 5]; h],
                udp_ports: HashMap::new(),
                unmatched_flows: 0,
                unmatched_packets: 0,
            },
        }
    }

    /// Like [`new`](Self::new), but publishing per-class packet counters
    /// (`analysis.packets.<realm>.<class>`) and unmatched-traffic counters
    /// into `registry`. Counters are accumulated locally per hour and
    /// flushed with one atomic add each at the end of
    /// [`ingest_hour`](Self::ingest_hour), so the hot per-flow path pays
    /// nothing for instrumentation.
    pub fn with_metrics(db: &'a DeviceDb, hours: u32, registry: &Registry) -> Self {
        let mut a = Self::new(db, hours);
        a.metrics = Some(AnalyzerMetrics::register(registry));
        a
    }

    /// Ingest one hour of traffic.
    ///
    /// # Panics
    ///
    /// Panics if the hour's interval is outside the window.
    pub fn ingest_hour(&mut self, hour: &HourTraffic) {
        assert!(
            hour.interval >= 1 && hour.interval <= self.hours,
            "interval {} outside 1..={}",
            hour.interval,
            self.hours
        );
        let idx = (hour.interval - 1) as usize;
        let day = (hour.interval - 1) / 24;
        // Transient per-hour distinct sets.
        let mut udp_ips: [HashSet<u32>; 2] = [HashSet::new(), HashSet::new()];
        let mut udp_ports_h: [HashSet<u16>; 2] = [HashSet::new(), HashSet::new()];
        let mut udp_devs: [HashSet<DeviceId>; 2] = [HashSet::new(), HashSet::new()];
        let mut scan_ips: [HashSet<u32>; 2] = [HashSet::new(), HashSet::new()];
        let mut scan_ports_h: [HashSet<u16>; 2] = [HashSet::new(), HashSet::new()];
        let mut scan_devs: [HashSet<DeviceId>; 2] = [HashSet::new(), HashSet::new()];
        let mut backscatter_by_victim: HashMap<DeviceId, u64> = HashMap::new();
        // Local metric accumulators, flushed once at the end of the hour.
        let mut hour_packets: [[u64; 5]; 2] = [[0; 5]; 2];
        let mut hour_unmatched: (u64, u64) = (0, 0);

        for flow in &hour.flows {
            let Some(device) = self.db.lookup_ip(flow.src_ip) else {
                self.result.unmatched_flows += 1;
                self.result.unmatched_packets += u64::from(flow.packets);
                hour_unmatched.0 += 1;
                hour_unmatched.1 += u64::from(flow.packets);
                continue;
            };
            let class = classify(flow);
            let pkts = u64::from(flow.packets);
            let realm = device.realm();
            let r = realm_idx(realm);

            let obs = self
                .result
                .observations
                .entry(device.id)
                .or_insert_with(|| DeviceObservation {
                    device: device.id,
                    realm,
                    first_interval: hour.interval,
                    flows: 0,
                    packets_by_class: [0; 5],
                    days_active: 0,
                });
            obs.first_interval = obs.first_interval.min(hour.interval);
            obs.flows += 1;
            obs.packets_by_class[class_idx(class)] += pkts;
            obs.days_active |= 1 << day.min(63);
            hour_packets[r][class_idx(class)] += pkts;

            let proto_i = match flow.protocol {
                TransportProtocol::Icmp => 0,
                TransportProtocol::Tcp => 1,
                TransportProtocol::Udp => 2,
            };
            self.result.protocol_packets[r][proto_i] += pkts;

            match class {
                TrafficClass::Udp => {
                    let s = &mut self.result.udp[r];
                    s.packets[idx] += pkts;
                    udp_ips[r].insert(u32::from(flow.dst_ip));
                    udp_ports_h[r].insert(flow.dst_port);
                    udp_devs[r].insert(device.id);
                    let port = self.result.udp_ports.entry(flow.dst_port).or_default();
                    port.packets += pkts;
                    port.devices.insert(device.id);
                    let _ = s;
                }
                TrafficClass::TcpScan => {
                    let s = &mut self.result.tcp_scan[r];
                    s.packets[idx] += pkts;
                    scan_ips[r].insert(u32::from(flow.dst_ip));
                    scan_ports_h[r].insert(flow.dst_port);
                    scan_devs[r].insert(device.id);
                    let key = match ScanService::from_port(flow.dst_port) {
                        Some(svc) => ServiceKey::Named(svc),
                        None => ServiceKey::Other,
                    };
                    let stat = self.result.scan_services.entry(key).or_default();
                    stat.packets[r] += pkts;
                    stat.devices[r].insert(device.id);
                    if let ServiceKey::Named(svc) = key {
                        if let Some(pos) = TOP5_SERVICES.iter().position(|s| *s == svc) {
                            self.result.top5_series[idx][pos] += pkts;
                        }
                    }
                    let _ = s;
                }
                TrafficClass::Backscatter => {
                    self.result.backscatter_hourly[r][idx] += pkts;
                    *backscatter_by_victim.entry(device.id).or_insert(0) += pkts;
                }
                TrafficClass::IcmpScan | TrafficClass::Other => {}
            }
        }

        for r in 0..2 {
            self.result.udp[r].dst_ips[idx] += udp_ips[r].len() as u64;
            self.result.udp[r].dst_ports[idx] += udp_ports_h[r].len() as u64;
            self.result.udp[r].devices[idx] += udp_devs[r].len() as u64;
            self.result.tcp_scan[r].dst_ips[idx] += scan_ips[r].len() as u64;
            self.result.tcp_scan[r].dst_ports[idx] += scan_ports_h[r].len() as u64;
            self.result.tcp_scan[r].devices[idx] += scan_devs[r].len() as u64;
        }
        let slot = &mut self.result.backscatter_intervals[idx];
        slot.total += backscatter_by_victim.values().sum::<u64>();
        // Ties break toward the smaller device id so the result does not
        // depend on hash-map iteration order.
        let top = backscatter_by_victim
            .into_iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)));
        merge_top_victim(&mut slot.top_victim, top);

        if let Some(m) = &self.metrics {
            for (r, row) in hour_packets.iter().enumerate() {
                for (c, &pkts) in row.iter().enumerate() {
                    if pkts > 0 {
                        m.packets[r][c].add(pkts);
                    }
                }
            }
            m.unmatched_flows.add(hour_unmatched.0);
            m.unmatched_packets.add(hour_unmatched.1);
        }
    }

    /// Merge another analyzer's state (built over *disjoint hours* of the
    /// same window and database) into this one.
    ///
    /// # Panics
    ///
    /// Panics if the window lengths differ.
    pub fn merge(&mut self, other: Analyzer<'_>) {
        assert_eq!(self.hours, other.hours, "mismatched windows");
        let o = other.result;
        for (id, obs) in o.observations {
            match self.result.observations.entry(id) {
                std::collections::hash_map::Entry::Vacant(e) => {
                    e.insert(obs);
                }
                std::collections::hash_map::Entry::Occupied(mut e) => {
                    let cur = e.get_mut();
                    cur.first_interval = cur.first_interval.min(obs.first_interval);
                    cur.flows += obs.flows;
                    for i in 0..5 {
                        cur.packets_by_class[i] += obs.packets_by_class[i];
                    }
                    cur.days_active |= obs.days_active;
                }
            }
        }
        for r in 0..2 {
            for p in 0..3 {
                self.result.protocol_packets[r][p] += o.protocol_packets[r][p];
            }
            for i in 0..self.hours as usize {
                self.result.udp[r].packets[i] += o.udp[r].packets[i];
                self.result.udp[r].dst_ips[i] += o.udp[r].dst_ips[i];
                self.result.udp[r].dst_ports[i] += o.udp[r].dst_ports[i];
                self.result.udp[r].devices[i] += o.udp[r].devices[i];
                self.result.tcp_scan[r].packets[i] += o.tcp_scan[r].packets[i];
                self.result.tcp_scan[r].dst_ips[i] += o.tcp_scan[r].dst_ips[i];
                self.result.tcp_scan[r].dst_ports[i] += o.tcp_scan[r].dst_ports[i];
                self.result.tcp_scan[r].devices[i] += o.tcp_scan[r].devices[i];
                self.result.backscatter_hourly[r][i] += o.backscatter_hourly[r][i];
            }
        }
        for (i, slot) in o.backscatter_intervals.into_iter().enumerate() {
            let cur = &mut self.result.backscatter_intervals[i];
            cur.total += slot.total;
            merge_top_victim(&mut cur.top_victim, slot.top_victim);
        }
        for (key, stat) in o.scan_services {
            let cur = self.result.scan_services.entry(key).or_default();
            for r in 0..2 {
                cur.packets[r] += stat.packets[r];
                cur.devices[r].extend(stat.devices[r].iter().copied());
            }
        }
        for (i, row) in o.top5_series.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                self.result.top5_series[i][j] += v;
            }
        }
        for (port, stat) in o.udp_ports {
            let cur = self.result.udp_ports.entry(port).or_default();
            cur.packets += stat.packets;
            cur.devices.extend(stat.devices.iter().copied());
        }
        self.result.unmatched_flows += o.unmatched_flows;
        self.result.unmatched_packets += o.unmatched_packets;
    }

    /// Inspect the aggregation state accumulated so far (used by the
    /// streaming analyzer to evaluate alerts after each hour).
    pub fn peek(&self) -> &Analysis {
        &self.result
    }

    /// Finish and return the aggregation result.
    pub fn finish(self) -> Analysis {
        self.result
    }
}

/// Keep the dominant `(victim, packets)` pair; ties break toward the
/// smaller device id (determinism across merge orders).
fn merge_top_victim(current: &mut Option<(DeviceId, u64)>, candidate: Option<(DeviceId, u64)>) {
    match (*current, candidate) {
        (None, t) => *current = t,
        (Some((cd, cp)), Some((d, p))) if p > cp || (p == cp && d < cd) => {
            *current = Some((d, p));
        }
        _ => {}
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, CpsService, IotDevice, IspId};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::{IcmpType, TcpFlags};
    use iotscope_net::time::UnixHour;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices([
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(1, 0, 0, 1),
                profile: DeviceProfile::Consumer(ConsumerKind::Router),
                country: CountryCode::from_code("RU").unwrap(),
                isp: IspId(0),
            },
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(2, 0, 0, 1),
                profile: DeviceProfile::Cps(vec![CpsService::EthernetIp]),
                country: CountryCode::from_code("CN").unwrap(),
                isp: IspId(1),
            },
        ])
    }

    fn hour(interval: u32, flows: Vec<FlowTuple>) -> HourTraffic {
        HourTraffic {
            interval,
            hour: UnixHour::new(1000 + u64::from(interval)),
            flows,
        }
    }

    fn syn(src: [u8; 4], dport: u16) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            dport,
            TcpFlags::SYN,
        )
    }

    #[test]
    fn correlation_matches_only_inventory_sources() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(
            1,
            vec![
                syn([1, 0, 0, 1], 23),
                syn([9, 9, 9, 9], 23), // noise, not in db
            ],
        ));
        let a = an.finish();
        assert_eq!(a.observations.len(), 1);
        assert_eq!(a.unmatched_flows, 1);
        assert_eq!(a.unmatched_packets, 1);
        assert_eq!(a.compromised_devices(), vec![DeviceId(0)]);
    }

    #[test]
    fn per_class_accounting() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        let synack = FlowTuple::tcp(
            Ipv4Addr::new(2, 0, 0, 1),
            Ipv4Addr::new(44, 1, 1, 1),
            44818,
            50000,
            TcpFlags::SYN | TcpFlags::ACK,
        )
        .with_packets(5);
        let udp = FlowTuple::udp(
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(44, 1, 1, 2),
            5000,
            37547,
        )
        .with_packets(3);
        let ping = FlowTuple::icmp(
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(44, 1, 1, 3),
            IcmpType::EchoRequest,
        );
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23), synack, udp, ping]));
        let a = an.finish();
        let consumer = &a.observations[&DeviceId(0)];
        assert_eq!(consumer.packets(TrafficClass::TcpScan), 1);
        assert_eq!(consumer.packets(TrafficClass::Udp), 3);
        assert_eq!(consumer.packets(TrafficClass::IcmpScan), 1);
        assert_eq!(consumer.scan_packets(), 2);
        assert_eq!(consumer.total_packets(), 5);
        let cps = &a.observations[&DeviceId(1)];
        assert_eq!(cps.packets(TrafficClass::Backscatter), 5);
        assert_eq!(a.dos_victims(), vec![DeviceId(1)]);
        assert_eq!(a.tcp_scanners(), vec![DeviceId(0)]);
        assert_eq!(a.udp_devices(), vec![DeviceId(0)]);
        assert_eq!(a.total_packets(), 10);
        // Fig 4 accounting: consumer r=0: icmp 1, tcp 1, udp 3.
        assert_eq!(a.protocol_packets[0], [1, 1, 3]);
        assert_eq!(a.protocol_packets[1], [0, 5, 0]);
    }

    #[test]
    fn hourly_series_and_distinct_counts() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(
            3,
            vec![
                syn([1, 0, 0, 1], 23),
                syn([1, 0, 0, 1], 23),
                syn([1, 0, 0, 1], 80),
            ],
        ));
        let a = an.finish();
        let s = &a.tcp_scan[0];
        assert_eq!(s.packets[2], 3);
        assert_eq!(s.dst_ports[2], 2); // 23, 80
        assert_eq!(s.devices[2], 1);
        assert_eq!(s.packets[0], 0);
    }

    #[test]
    fn service_table_accumulates() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(
            1,
            vec![
                syn([1, 0, 0, 1], 23),
                syn([1, 0, 0, 1], 2323),
                syn([2, 0, 0, 1], 22),
                syn([2, 0, 0, 1], 12345), // unnamed port → Other
            ],
        ));
        let a = an.finish();
        let telnet = &a.scan_services[&ServiceKey::Named(ScanService::Telnet)];
        assert_eq!(telnet.packets, [2, 0]);
        assert_eq!(telnet.devices[0].len(), 1);
        let ssh = &a.scan_services[&ServiceKey::Named(ScanService::Ssh)];
        assert_eq!(ssh.packets, [0, 1]);
        let other = &a.scan_services[&ServiceKey::Other];
        assert_eq!(other.packets, [0, 1]);
        // Fig 10 series: Telnet idx 0, SSH idx 2.
        assert_eq!(a.top5_series[0][0], 2);
        assert_eq!(a.top5_series[0][2], 1);
    }

    #[test]
    fn backscatter_attribution_tracks_dominant_victim() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        let bs = |src: [u8; 4], pkts: u32| {
            FlowTuple::tcp(
                Ipv4Addr::from(src),
                Ipv4Addr::new(44, 2, 2, 2),
                80,
                40000,
                TcpFlags::SYN | TcpFlags::ACK,
            )
            .with_packets(pkts)
        };
        an.ingest_hour(&hour(2, vec![bs([1, 0, 0, 1], 10), bs([2, 0, 0, 1], 90)]));
        let a = an.finish();
        let slot = &a.backscatter_intervals[1];
        assert_eq!(slot.total, 100);
        assert_eq!(slot.top_victim, Some((DeviceId(1), 90)));
        assert_eq!(a.backscatter_hourly[0][1], 10);
        assert_eq!(a.backscatter_hourly[1][1], 90);
    }

    #[test]
    fn discovery_curve_cumulates_by_day() {
        let db = db();
        let mut an = Analyzer::new(&db, 48);
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23)]));
        an.ingest_hour(&hour(30, vec![syn([2, 0, 0, 1], 23)]));
        let a = an.finish();
        let curve = a.discovery_curve();
        assert_eq!(curve.len(), 2);
        assert_eq!(curve[0], (1, 1, 0));
        assert_eq!(curve[1], (2, 1, 1));
    }

    #[test]
    fn first_interval_takes_minimum_across_order() {
        let db = db();
        let mut an = Analyzer::new(&db, 48);
        an.ingest_hour(&hour(30, vec![syn([1, 0, 0, 1], 23)]));
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23)]));
        let a = an.finish();
        assert_eq!(a.observations[&DeviceId(0)].first_interval, 2);
        let (avg_all, avg_consumer) = a.daily_active_devices();
        assert!((avg_all - 1.0).abs() < 1e-9);
        assert!((avg_consumer - 1.0).abs() < 1e-9);
    }

    #[test]
    fn merge_equals_sequential() {
        let db = db();
        let h1 = hour(1, vec![syn([1, 0, 0, 1], 23), syn([2, 0, 0, 1], 22)]);
        let h2 = hour(
            2,
            vec![
                syn([1, 0, 0, 1], 80),
                FlowTuple::udp(
                    Ipv4Addr::new(2, 0, 0, 1),
                    Ipv4Addr::new(44, 0, 0, 9),
                    1,
                    137,
                )
                .with_packets(7),
            ],
        );
        let mut seq = Analyzer::new(&db, 4);
        seq.ingest_hour(&h1);
        seq.ingest_hour(&h2);
        let seq = seq.finish();

        let mut a = Analyzer::new(&db, 4);
        a.ingest_hour(&h1);
        let mut b = Analyzer::new(&db, 4);
        b.ingest_hour(&h2);
        a.merge(b);
        let par = a.finish();

        assert_eq!(par.observations, seq.observations);
        assert_eq!(par.protocol_packets, seq.protocol_packets);
        assert_eq!(par.udp[0].packets, seq.udp[0].packets);
        assert_eq!(par.udp[1].packets, seq.udp[1].packets);
        assert_eq!(par.scan_services, seq.scan_services);
        assert_eq!(par.udp_ports, seq.udp_ports);
        assert_eq!(par.backscatter_intervals, seq.backscatter_intervals);
        assert_eq!(par.unmatched_flows, seq.unmatched_flows);
    }

    #[test]
    #[should_panic(expected = "outside")]
    fn out_of_window_hour_panics() {
        let db = db();
        let mut an = Analyzer::new(&db, 4);
        an.ingest_hour(&hour(5, vec![]));
    }

    #[test]
    fn daily_packet_totals_sum_series_by_day() {
        let db = db();
        let mut an = Analyzer::new(&db, 48);
        an.ingest_hour(&hour(2, vec![syn([1, 0, 0, 1], 23).with_packets(5)]));
        an.ingest_hour(&hour(
            30,
            vec![
                syn([2, 0, 0, 1], 22).with_packets(7),
                FlowTuple::udp(
                    Ipv4Addr::new(1, 0, 0, 1),
                    Ipv4Addr::new(44, 0, 0, 3),
                    1,
                    137,
                )
                .with_packets(3),
            ],
        ));
        let a = an.finish();
        assert_eq!(a.daily_packet_totals(None), vec![5, 10]);
        assert_eq!(a.daily_packet_totals(Some(Realm::Consumer)), vec![5, 3]);
        assert_eq!(a.daily_packet_totals(Some(Realm::Cps)), vec![0, 7]);
    }

    #[test]
    fn with_metrics_publishes_class_and_unmatched_counters() {
        let db = db();
        let registry = Registry::new();
        let mut an = Analyzer::with_metrics(&db, 4, &registry);
        an.ingest_hour(&hour(
            1,
            vec![
                syn([1, 0, 0, 1], 23).with_packets(4),
                syn([9, 9, 9, 9], 23).with_packets(2), // unmatched noise
                FlowTuple::udp(
                    Ipv4Addr::new(2, 0, 0, 1),
                    Ipv4Addr::new(44, 0, 0, 9),
                    1,
                    137,
                )
                .with_packets(7),
            ],
        ));
        let a = an.finish();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("analysis.packets.consumer.tcp_scan"), Some(4));
        assert_eq!(snap.counter("analysis.packets.cps.udp"), Some(7));
        assert_eq!(snap.counter("analysis.packets.consumer.udp"), Some(0));
        assert_eq!(snap.counter("analysis.flows_unmatched"), Some(1));
        assert_eq!(snap.counter("analysis.packets_unmatched"), Some(2));
        // The registry view agrees with the analysis itself.
        assert_eq!(a.unmatched_packets, 2);
    }

    #[test]
    fn empty_analysis_is_sane() {
        let db = db();
        let a = Analyzer::new(&db, 4).finish();
        assert!(a.compromised_devices().is_empty());
        assert_eq!(a.compromised_counts(), (0, 0));
        assert_eq!(a.total_packets(), 0);
        assert!(a.dos_victims().is_empty());
        let curve = a.discovery_curve();
        assert_eq!(curve, vec![(0, 0, 0)]);
    }
}
