//! End-to-end analysis orchestration: one [`run`](AnalysisPipeline::run)
//! entry point over in-memory or store-backed sources, with optional
//! per-run accounting and a metrics registry threaded through every
//! layer (store reads, decode, per-stage timings, per-class packet
//! counters).

use crate::analysis::{Analysis, Analyzer};
use crate::shard::{self, RoutedFlow, RouterPartial, ShardAccumulator, ShardPartial, ShardRouter};
use iotscope_devicedb::{DeviceDb, ShardMap};
use iotscope_net::store::{DecodeOptions, FlowStore};
use iotscope_net::time::{AnalysisWindow, UnixHour};
use iotscope_net::NetError;
use iotscope_obs::{Counter, Gauge, Registry, Snapshot, Timer};
use iotscope_telescope::HourTraffic;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accounting for one analysis run, materialized as a *view over the
/// run's private metrics registry*: the pipeline instruments every run
/// through its own throwaway [`iotscope_obs`] registry (absorbed into
/// the caller's registry at the end), and this struct is the diff of
/// two snapshots of that private registry. Because no two runs ever
/// share live handles, stats can never attribute one run's reads to a
/// concurrent run — even when both were handed the same caller
/// registry.
///
/// Stage times are summed across workers, so with N threads they can
/// add up to roughly N× the wall time — compare them to each other (is
/// this run I/O-bound or decode-bound?) rather than to `wall_time`.
#[derive(Debug, Clone, Default)]
pub struct StoreReadStats {
    /// Worker threads actually used (after clamping to the work list).
    pub threads: usize,
    /// Hour files read, decoded, and ingested.
    pub hours_ingested: u64,
    /// Window hours with no file on disk.
    pub hours_missing: u64,
    /// Hour files present but skipped by the day-completeness rule.
    pub hours_skipped: u64,
    /// Total on-disk bytes read.
    pub bytes_read: u64,
    /// Total flowtuple records decoded.
    pub records_decoded: u64,
    /// v3 blocks decoded (v1/v2 hours count as one block each).
    pub blocks_read: u64,
    /// Time spent reading files (summed across workers).
    pub read_time: Duration,
    /// Time spent decoding payloads (summed across workers). Store
    /// workers run the *fused* decode→ingest path (blocks stream
    /// straight into the analyzer), so their decode time is part of
    /// [`ingest_time`](Self::ingest_time) and this stays ~0 for them.
    pub decode_time: Duration,
    /// Time spent aggregating hours (summed across workers). For store
    /// workers this is the fused decode+ingest stage.
    pub ingest_time: Duration,
    /// Time spent merging worker partials (single-threaded). In the
    /// default [sharded](ParallelMode::Sharded) mode the merge is a
    /// concatenation of disjoint device ranges, so this stays ~0; the
    /// hour-pooled mode merges full-width partials here.
    pub merge_time: Duration,
    /// End-to-end elapsed time for the whole run.
    pub wall_time: Duration,
}

impl StoreReadStats {
    /// Build per-run accounting from the change between two registry
    /// snapshots (the registry is cumulative across runs, so per-run
    /// numbers are deltas). Metric names are the `pipeline.*` and
    /// `store.*` families published by [`AnalysisPipeline::run`].
    pub fn from_snapshots(threads: usize, before: &Snapshot, after: &Snapshot) -> Self {
        StoreReadStats {
            threads,
            hours_ingested: after.counter_since(before, "pipeline.hours_ingested"),
            hours_missing: after.counter_since(before, "pipeline.hours_missing"),
            hours_skipped: after.counter_since(before, "pipeline.hours_skipped"),
            bytes_read: after.counter_since(before, "store.bytes_read"),
            records_decoded: after.counter_since(before, "store.records_decoded"),
            blocks_read: after.counter_since(before, "store.blocks_read"),
            read_time: after.duration_since(before, "pipeline.read_time"),
            decode_time: after.duration_since(before, "pipeline.decode_time"),
            ingest_time: after.duration_since(before, "pipeline.ingest_time"),
            merge_time: after.duration_since(before, "pipeline.merge_time"),
            wall_time: after.duration_since(before, "pipeline.wall_time"),
        }
    }
}

/// What to analyze: hours already in memory, or a [`FlowStore`]
/// directory (which additionally needs [`AnalyzeOptions::window`]).
///
/// Constructed via `From`/`Into`, so call sites pass `&hours` or
/// `&store` directly to [`AnalysisPipeline::run`].
#[derive(Debug, Clone, Copy)]
pub enum AnalysisSource<'s> {
    /// Hourly traffic already decoded in memory.
    Memory(&'s [HourTraffic]),
    /// An on-disk hourly flowtuple store.
    Store(&'s FlowStore),
}

impl<'s> From<&'s [HourTraffic]> for AnalysisSource<'s> {
    fn from(hours: &'s [HourTraffic]) -> Self {
        AnalysisSource::Memory(hours)
    }
}

impl<'s> From<&'s Vec<HourTraffic>> for AnalysisSource<'s> {
    fn from(hours: &'s Vec<HourTraffic>) -> Self {
        AnalysisSource::Memory(hours)
    }
}

impl<'s> From<&'s FlowStore> for AnalysisSource<'s> {
    fn from(store: &'s FlowStore) -> Self {
        AnalysisSource::Store(store)
    }
}

/// How a multi-threaded run splits the work (single-threaded runs
/// ignore the mode).
///
/// Both modes produce bit-identical analyses; they differ in what each
/// worker holds and what the final merge costs.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum ParallelMode {
    /// Partition the *device space*: every worker routes hours and owns
    /// one contiguous dense-index shard of per-device state, so the
    /// final merge is a concatenation of disjoint ranges plus a scalar
    /// reduction (see [`crate::shard`]). The default: at paper scale
    /// the hour-pooled merge of N full-width partials dominates and
    /// loses to sequential, while sharding keeps the merge ~free.
    #[default]
    Sharded,
    /// Partition the *hours*: every worker runs a full-width
    /// [`Analyzer`] over its share of hours; partials merge
    /// single-threaded at the end. Cheapest when the device population
    /// is small relative to the hour count.
    Pooled,
}

/// Options for one [`AnalysisPipeline::run`] call.
///
/// A consuming builder with defaults of one thread, sharded parallel
/// mode, no stats, no metrics, no window:
///
/// ```
/// use iotscope_core::pipeline::AnalyzeOptions;
///
/// let options = AnalyzeOptions::new().threads(4).stats(true);
/// ```
#[derive(Debug, Clone, Default)]
pub struct AnalyzeOptions {
    threads: usize,
    mode: ParallelMode,
    stats: bool,
    metrics: Option<Registry>,
    window: Option<AnalysisWindow>,
}

impl AnalyzeOptions {
    /// Defaults: single-threaded, no stats, no metrics, no window.
    pub fn new() -> Self {
        AnalyzeOptions::default()
    }

    /// Worker threads (clamped to `1..=64` and to the amount of work;
    /// `0` means 1). The analysis result and every
    /// [stable](iotscope_obs::Stability::Stable) metric are identical
    /// whatever the thread count.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// How multi-threaded runs split the work; defaults to
    /// [`ParallelMode::Sharded`]. Has no effect when the run ends up
    /// single-threaded.
    pub fn mode(mut self, mode: ParallelMode) -> Self {
        self.mode = mode;
        self
    }

    /// Request per-run accounting in
    /// [`AnalysisOutcome::stats`].
    pub fn stats(mut self, enabled: bool) -> Self {
        self.stats = enabled;
        self
    }

    /// Publish metrics into `registry` and return its snapshot in
    /// [`AnalysisOutcome::metrics`]. The registry is shared (cheap
    /// clone), so callers can keep their own handle and accumulate
    /// across runs.
    pub fn metrics(mut self, registry: &Registry) -> Self {
        self.metrics = Some(registry.clone());
        self
    }

    /// The analysis window — required for store-backed sources, ignored
    /// for in-memory ones (in-memory hours carry their own intervals).
    pub fn window(mut self, window: AnalysisWindow) -> Self {
        self.window = Some(window);
        self
    }
}

/// Result of one [`AnalysisPipeline::run`] call.
#[derive(Debug, Clone)]
pub struct AnalysisOutcome {
    /// The aggregation, identical for every thread count.
    pub analysis: Analysis,
    /// Day indices dropped by the completeness rule (§III-A2). Always
    /// empty for in-memory sources.
    pub dropped_days: Vec<u32>,
    /// Per-run accounting, present iff [`AnalyzeOptions::stats`] was
    /// requested.
    pub stats: Option<StoreReadStats>,
    /// End-of-run registry snapshot, present iff
    /// [`AnalyzeOptions::metrics`] was requested.
    pub metrics: Option<Snapshot>,
}

/// Pipeline-layer metric handles (`pipeline.` prefix). Work counters
/// are [stable](iotscope_obs::Stability::Stable); timings, thread
/// counts and per-worker counts are variant.
struct PipelineMetrics {
    hours_ingested: Counter,
    hours_missing: Counter,
    hours_skipped: Counter,
    threads: Gauge,
    read_time: Timer,
    ingest_time: Timer,
    merge_time: Timer,
    wall_time: Timer,
}

impl PipelineMetrics {
    fn register(registry: &Registry) -> Self {
        // The fused store path folds decoding into the ingest stage, so
        // nothing records `pipeline.decode_time` any more. Register it
        // anyway: the name stays visible in snapshots (at ~0) and
        // `StoreReadStats::decode_time` keeps its meaning for readers
        // of older runs.
        registry.timer("pipeline.decode_time");
        PipelineMetrics {
            hours_ingested: registry.counter("pipeline.hours_ingested"),
            hours_missing: registry.counter("pipeline.hours_missing"),
            hours_skipped: registry.counter("pipeline.hours_skipped"),
            threads: registry.gauge("pipeline.threads"),
            read_time: registry.timer("pipeline.read_time"),
            ingest_time: registry.timer("pipeline.ingest_time"),
            merge_time: registry.timer("pipeline.merge_time"),
            wall_time: registry.timer("pipeline.wall_time"),
        }
    }

    /// The per-worker hour counter (variant: which worker got which
    /// hour depends on scheduling).
    fn worker_hours(registry: &Registry, worker: usize) -> Counter {
        registry.counter_variant(&format!("pipeline.worker.{worker}.hours"))
    }

    /// The per-shard device-count gauge for sharded runs (variant: the
    /// shard layout depends on the thread count).
    fn shard_devices(registry: &Registry, shard: usize) -> Gauge {
        registry.gauge(&format!("pipeline.shard.{shard}.devices"))
    }
}

/// Inter-worker message of the sharded drivers: one whole hour's routed
/// flows for one shard, or a router's end-of-work marker.
enum ShardMsg {
    Batch {
        interval: u32,
        flows: Vec<RoutedFlow>,
    },
    Done,
}

/// One run's window coverage: which days are dropped, which present
/// hours remain to be read, and how many hours fell to each rule.
struct Coverage {
    dropped_days: Vec<u32>,
    work: Vec<(u32, UnixHour)>,
    hours_missing: u64,
    hours_skipped: u64,
}

/// Analysis entry points bound to a device inventory and window length.
///
/// # Example
///
/// ```
/// use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
/// use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
///
/// let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
/// let hours = built.scenario.generate();
/// let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
/// let outcome = pipeline.run(&hours, &AnalyzeOptions::new()).unwrap();
/// assert!(outcome.analysis.device_count() > 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AnalysisPipeline<'a> {
    db: &'a DeviceDb,
    hours: u32,
}

impl<'a> AnalysisPipeline<'a> {
    /// Bind to a device database and a window of `hours` intervals.
    pub fn new(db: &'a DeviceDb, hours: u32) -> Self {
        AnalysisPipeline { db, hours }
    }

    /// Analyze `source` under `options` — the single entry point behind
    /// every analysis mode (sequential/parallel × memory/store, with or
    /// without stats and metrics).
    ///
    /// The aggregation result and every
    /// [stable](iotscope_obs::Stability::Stable) metric are identical
    /// for every `threads` setting; only timings, the thread gauge and
    /// per-worker counts vary.
    ///
    /// # Errors
    ///
    /// Store-backed runs propagate read failures (corrupt files fail
    /// loudly; missing hours are handled by the day-completeness rule)
    /// and require [`AnalyzeOptions::window`]. When several hours are
    /// corrupt, the error for the earliest interval is reported,
    /// matching what a sequential read would hit first. In-memory runs
    /// cannot fail.
    pub fn run<'s>(
        &self,
        source: impl Into<AnalysisSource<'s>>,
        options: &AnalyzeOptions,
    ) -> Result<AnalysisOutcome, NetError> {
        let source = source.into();
        // Every run instruments through its own private registry, then
        // absorbs the totals into the caller's registry (if any) at the
        // end. Stats are a snapshot diff of the private registry, so
        // concurrent runs sharing a caller registry can never attribute
        // each other's reads to themselves.
        let registry = Registry::new();
        let pm = PipelineMetrics::register(&registry);
        let before = registry.snapshot();

        // Worker-thread budget: pool workers take hours; whatever the
        // work list cannot use is spent inside each worker on parallel
        // v3 block decode, so a window of one huge hour still uses the
        // full budget instead of serializing one worker.
        let budget = options.threads.clamp(1, 64);

        let wall = pm.wall_time.span();
        let result: Result<(Analysis, Vec<u32>, usize), NetError> = (|| match source {
            AnalysisSource::Memory(traffic) => {
                // Sharded parallelism is over the device space, so it
                // is worth its fan-out even for a single huge hour; the
                // hour-pooled mode degenerates to the inline path when
                // every worker would get at most one hour (the partial
                // merges would do all the work the pool saved).
                let threads = match options.mode {
                    ParallelMode::Sharded if !traffic.is_empty() => budget,
                    _ if budget < traffic.len() => budget,
                    _ => 1,
                };
                pm.threads.set(threads as i64);
                let analysis = if threads <= 1 {
                    self.run_memory_inline(traffic, &registry, &pm)
                } else if options.mode == ParallelMode::Sharded {
                    self.run_memory_sharded(traffic, threads, &registry, &pm)
                } else {
                    self.run_memory_pooled(traffic, threads, &registry, &pm)
                };
                Ok((analysis, Vec::new(), threads))
            }
            AnalysisSource::Store(store) => {
                let window = options.window.ok_or_else(|| {
                    NetError::InvalidInterval(
                        "store-backed analysis requires AnalyzeOptions::window".into(),
                    )
                })?;
                // Rebind the store's counters to this run's registry so
                // its reads are accounted here (and only here).
                let store = store.clone().instrumented(&registry);
                let cov = coverage(&store, &window)?;
                let threads = match options.mode {
                    ParallelMode::Sharded if !cov.work.is_empty() => budget,
                    _ if budget < cov.work.len() => budget,
                    _ => 1, // degenerate pool: fewer hours than workers
                };
                // Hour-level workers leave the rest of the budget to
                // per-worker parallel v3 block decode; the inline path
                // gets the whole budget for it.
                let decode = DecodeOptions {
                    threads: (budget / threads.max(1)).max(1),
                    quarantine: false,
                };
                pm.threads.set(threads as i64);
                pm.hours_missing.add(cov.hours_missing);
                pm.hours_skipped.add(cov.hours_skipped);
                let analysis = if threads <= 1 {
                    self.run_store_inline(&store, &cov.work, decode, &registry, &pm)?
                } else if options.mode == ParallelMode::Sharded {
                    self.run_store_sharded(&store, &cov.work, threads, decode, &registry, &pm)?
                } else {
                    self.run_store_pooled(&store, &cov.work, threads, decode, &registry, &pm)?
                };
                Ok((analysis, cov.dropped_days, threads))
            }
        })();
        drop(wall);

        // Absorb even on failure, so the caller's registry still sees
        // what was counted before the error (e.g. checksum failures).
        let after = registry.snapshot();
        let metrics = options.metrics.as_ref().map(|caller| {
            caller.absorb(&after);
            caller.snapshot()
        });
        let (analysis, dropped_days, threads) = result?;
        let stats = options
            .stats
            .then(|| StoreReadStats::from_snapshots(threads, &before, &after));
        Ok(AnalysisOutcome {
            analysis,
            dropped_days,
            stats,
            metrics,
        })
    }

    /// In-memory path, sequential: one analyzer over every hour on the
    /// caller's thread; no partials, no merge.
    fn run_memory_inline(
        &self,
        traffic: &[HourTraffic],
        registry: &Registry,
        pm: &PipelineMetrics,
    ) -> Analysis {
        let worker = PipelineMetrics::worker_hours(registry, 0);
        let mut an = Analyzer::with_metrics(self.db, self.hours, registry);
        let span = pm.ingest_time.span();
        for hour in traffic {
            an.ingest_hour(hour);
            worker.inc();
        }
        pm.hours_ingested.add(traffic.len() as u64);
        drop(span);
        an.finish()
    }

    /// In-memory path, hour-pooled: hours are partitioned across
    /// workers, partial aggregations merged. Identical result for every
    /// thread count (see `Analyzer::merge`).
    fn run_memory_pooled(
        &self,
        traffic: &[HourTraffic],
        threads: usize,
        registry: &Registry,
        pm: &PipelineMetrics,
    ) -> Analysis {
        let chunk = traffic.len().div_ceil(threads);
        let partials: Vec<Analyzer<'_>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = traffic
                .chunks(chunk)
                .enumerate()
                .map(|(i, hours)| {
                    let registry = registry.clone();
                    let ingest_time = pm.ingest_time.clone();
                    scope.spawn(move |_| {
                        let worker = PipelineMetrics::worker_hours(&registry, i);
                        let mut an = Analyzer::with_metrics(self.db, self.hours, &registry);
                        let span = ingest_time.span();
                        for h in hours {
                            an.ingest_hour(h);
                            worker.inc();
                        }
                        drop(span);
                        an
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("analysis worker does not panic"))
                .collect()
        })
        .expect("analysis scope does not panic");
        pm.hours_ingested.add(traffic.len() as u64);
        let merge_span = pm.merge_time.span();
        let mut iter = partials.into_iter();
        let mut first = iter.next().expect("at least one partial");
        for p in iter {
            first.merge(p);
        }
        drop(merge_span);
        first.finish()
    }

    /// In-memory path, device-sharded: every worker routes hours off a
    /// shared work-stealing cursor *and* owns one dense-index shard of
    /// per-device state, fed through per-worker inboxes (see
    /// [`crate::shard`]). The end-of-run merge is a concatenation of
    /// disjoint ranges, so `pipeline.merge_time` stays ~0 at any scale.
    fn run_memory_sharded(
        &self,
        traffic: &[HourTraffic],
        threads: usize,
        registry: &Registry,
        pm: &PipelineMetrics,
    ) -> Analysis {
        let map = ShardMap::new(self.db.len(), threads);
        let next = AtomicUsize::new(0);
        let partials: Vec<(RouterPartial, ShardPartial)> = crossbeam::scope(|scope| {
            let channels: Vec<_> = (0..threads)
                .map(|_| crossbeam::channel::unbounded::<ShardMsg>())
                .collect();
            let senders: Vec<_> = channels.iter().map(|(tx, _)| tx.clone()).collect();
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let rx = channels[i].1.clone();
                    let senders = senders.clone();
                    let next = &next;
                    let registry = registry.clone();
                    let ingest_time = pm.ingest_time.clone();
                    let hours_ingested = pm.hours_ingested.clone();
                    scope.spawn(move |_| {
                        let worker = PipelineMetrics::worker_hours(&registry, i);
                        let mut router = ShardRouter::new(self.db, self.hours, map);
                        let mut acc = ShardAccumulator::new(self.hours, map.range(i));
                        let mut busy = Duration::ZERO;
                        let mut dones = 0usize;
                        loop {
                            // Apply whatever other routers have sent so
                            // far, so inboxes stay short.
                            while let Ok(msg) = rx.try_recv() {
                                let t = Instant::now();
                                match msg {
                                    ShardMsg::Batch { interval, flows } => {
                                        acc.apply_hour(interval, &flows);
                                    }
                                    ShardMsg::Done => dones += 1,
                                }
                                busy += t.elapsed();
                            }
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= traffic.len() {
                                break;
                            }
                            let hour = &traffic[k];
                            let t = Instant::now();
                            router.begin_hour(hour.interval);
                            router.route(&hour.flows);
                            for (s, flows) in router.finish_hour().into_iter().enumerate() {
                                if flows.is_empty() {
                                    continue;
                                }
                                if s == i {
                                    acc.apply_hour(hour.interval, &flows);
                                } else {
                                    let batch = ShardMsg::Batch {
                                        interval: hour.interval,
                                        flows,
                                    };
                                    senders[s]
                                        .send(batch)
                                        .expect("shard inbox outlives workers");
                                }
                            }
                            busy += t.elapsed();
                            hours_ingested.inc();
                            worker.inc();
                        }
                        // No more hours to route: tell every shard owner
                        // this router is done, then apply stragglers
                        // until every router has said so (per-sender
                        // FIFO puts all batches before the Done).
                        for tx in &senders {
                            tx.send(ShardMsg::Done)
                                .expect("shard inbox outlives workers");
                        }
                        drop(senders);
                        while dones < threads {
                            match rx.recv() {
                                Ok(ShardMsg::Batch { interval, flows }) => {
                                    let t = Instant::now();
                                    acc.apply_hour(interval, &flows);
                                    busy += t.elapsed();
                                }
                                Ok(ShardMsg::Done) => dones += 1,
                                Err(_) => break,
                            }
                        }
                        let t = Instant::now();
                        let finished = acc.finish();
                        busy += t.elapsed();
                        ingest_time.record(busy);
                        (router.into_partial(), finished)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sharded worker does not panic"))
                .collect()
        })
        .expect("sharded analysis scope does not panic");

        self.assemble_sharded(partials, registry, pm)
    }

    /// Fold worker partials (in worker == ascending shard order) into
    /// the final analysis, publish per-shard gauges and the stable
    /// `analysis.*` counters, and time the (now trivial) merge.
    fn assemble_sharded(
        &self,
        partials: Vec<(RouterPartial, ShardPartial)>,
        registry: &Registry,
        pm: &PipelineMetrics,
    ) -> Analysis {
        let mut routers = Vec::with_capacity(partials.len());
        let mut shards = Vec::with_capacity(partials.len());
        for (i, (rp, sp)) in partials.into_iter().enumerate() {
            PipelineMetrics::shard_devices(registry, i).set(sp.devices.len() as i64);
            routers.push(rp);
            shards.push(sp);
        }
        let merge_span = pm.merge_time.span();
        let analysis = shard::assemble(self.hours, routers, shards);
        drop(merge_span);
        // The sharded path has no live per-hour analyzer metrics;
        // recover the stable `analysis.*` totals from the result (they
        // are exact column sums, identical to the sequential flushes).
        analysis.publish_packet_counters(registry);
        analysis
    }

    /// Store path, sequential: read, then the fused decode→ingest on
    /// the caller's thread — v3 blocks stream straight into the
    /// analyzer via [`FlowStore::visit_hour_for`], so an hour is never
    /// materialized as a `Vec<FlowTuple>` (v1/v2 files materialize
    /// inside the visit and arrive as a single slice).
    fn run_store_inline(
        &self,
        store: &FlowStore,
        work: &[(u32, UnixHour)],
        decode: DecodeOptions,
        registry: &Registry,
        pm: &PipelineMetrics,
    ) -> Result<Analysis, NetError> {
        let worker = PipelineMetrics::worker_hours(registry, 0);
        let mut an = Analyzer::with_metrics(self.db, self.hours, registry);
        for &(interval, hour) in work {
            let t0 = Instant::now();
            // `fetch` rather than `read`: segment-resident hours arrive
            // as zero-copy borrows of the mapped segment.
            let bytes = store.fetch_hour_bytes(hour)?;
            let t1 = Instant::now();
            let mut ingest = an.begin_hour(interval);
            store.visit_hour_for(hour, &bytes, decode, &mut ingest)?;
            ingest.finish();
            let t2 = Instant::now();
            pm.read_time.record(t1 - t0);
            pm.ingest_time.record(t2 - t1);
            pm.hours_ingested.inc();
            worker.inc();
        }
        Ok(an.finish())
    }

    /// Store path, pooled: a producer feeds `(interval, hour)` items
    /// through a bounded channel to `threads` workers, each running
    /// read → decode → ingest into its own [`Analyzer`]; partials are
    /// merged at the end. On the first error a stop flag halts the
    /// producer and the error with the smallest interval wins, so the
    /// reported failure is deterministic.
    fn run_store_pooled(
        &self,
        store: &FlowStore,
        work: &[(u32, UnixHour)],
        threads: usize,
        decode: DecodeOptions,
        registry: &Registry,
        pm: &PipelineMetrics,
    ) -> Result<Analysis, NetError> {
        let stop = AtomicBool::new(false);
        let first_err: Mutex<Option<(u32, NetError)>> = Mutex::new(None);
        let fail = |interval: u32, err: NetError| {
            let mut slot = first_err.lock().expect("error slot not poisoned");
            match &*slot {
                Some((seen, _)) if *seen <= interval => {}
                _ => *slot = Some((interval, err)),
            }
            stop.store(true, Ordering::Relaxed);
        };

        let partials: Vec<Analyzer<'_>> = crossbeam::scope(|scope| {
            let (tx, rx) = crossbeam::channel::bounded::<(u32, UnixHour)>(threads * 2);
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let rx = rx.clone();
                    let fail = &fail;
                    let stop = &stop;
                    let registry = registry.clone();
                    let pm = PipelineMetrics::register(&registry);
                    scope.spawn(move |_| {
                        let worker = PipelineMetrics::worker_hours(&registry, i);
                        let mut an = Analyzer::with_metrics(self.db, self.hours, &registry);
                        while let Ok((interval, hour)) = rx.recv() {
                            if stop.load(Ordering::Relaxed) {
                                continue; // drain so the producer never blocks
                            }
                            let t0 = Instant::now();
                            let bytes = match store.fetch_hour_bytes(hour) {
                                Ok(b) => b,
                                Err(e) => {
                                    fail(interval, e);
                                    continue;
                                }
                            };
                            let t1 = Instant::now();
                            // Fused decode→ingest: blocks stream into the
                            // analyzer as they are decoded. On error the
                            // unfinished `HourIngest` is dropped — its
                            // partial prefix dies with the worker partial
                            // when the run as a whole fails.
                            let mut ingest = an.begin_hour(interval);
                            match store.visit_hour_for(hour, &bytes, decode, &mut ingest) {
                                Ok(_) => ingest.finish(),
                                Err(e) => {
                                    fail(interval, e);
                                    continue;
                                }
                            }
                            let t2 = Instant::now();
                            pm.read_time.record(t1 - t0);
                            pm.ingest_time.record(t2 - t1);
                            pm.hours_ingested.inc();
                            worker.inc();
                        }
                        an
                    })
                })
                .collect();
            drop(rx);
            for &(interval, hour) in work {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if tx.send((interval, hour)).is_err() {
                    break;
                }
            }
            drop(tx);
            handles
                .into_iter()
                .map(|h| h.join().expect("store worker does not panic"))
                .collect()
        })
        .expect("store analysis scope does not panic");

        if let Some((_, err)) = first_err.into_inner().expect("error slot not poisoned") {
            return Err(err);
        }

        let merge_span = pm.merge_time.span();
        let mut iter = partials.into_iter();
        let mut first = iter.next().expect("at least one worker partial");
        for p in iter {
            first.merge(p);
        }
        drop(merge_span);
        Ok(first.finish())
    }

    /// Store path, device-sharded: like
    /// [`run_memory_sharded`](Self::run_memory_sharded), but each
    /// routed hour is read and fused-decoded straight into the router
    /// (no `Vec<FlowTuple>` materialization). On the first error a stop
    /// flag halts further routing; the in-flight hour protocol still
    /// runs to completion (stopped workers keep draining their inboxes
    /// without applying), and the error with the smallest interval
    /// wins, as in the pooled path.
    fn run_store_sharded(
        &self,
        store: &FlowStore,
        work: &[(u32, UnixHour)],
        threads: usize,
        decode: DecodeOptions,
        registry: &Registry,
        pm: &PipelineMetrics,
    ) -> Result<Analysis, NetError> {
        let stop = AtomicBool::new(false);
        let first_err: Mutex<Option<(u32, NetError)>> = Mutex::new(None);
        let fail = |interval: u32, err: NetError| {
            let mut slot = first_err.lock().expect("error slot not poisoned");
            match &*slot {
                Some((seen, _)) if *seen <= interval => {}
                _ => *slot = Some((interval, err)),
            }
            stop.store(true, Ordering::Relaxed);
        };

        let map = ShardMap::new(self.db.len(), threads);
        let next = AtomicUsize::new(0);
        let partials: Vec<(RouterPartial, ShardPartial)> = crossbeam::scope(|scope| {
            let channels: Vec<_> = (0..threads)
                .map(|_| crossbeam::channel::unbounded::<ShardMsg>())
                .collect();
            let senders: Vec<_> = channels.iter().map(|(tx, _)| tx.clone()).collect();
            let handles: Vec<_> = (0..threads)
                .map(|i| {
                    let rx = channels[i].1.clone();
                    let senders = senders.clone();
                    let next = &next;
                    let stop = &stop;
                    let fail = &fail;
                    let registry = registry.clone();
                    let wpm = PipelineMetrics::register(&registry);
                    scope.spawn(move |_| {
                        let worker = PipelineMetrics::worker_hours(&registry, i);
                        let mut router = ShardRouter::new(self.db, self.hours, map);
                        let mut acc = ShardAccumulator::new(self.hours, map.range(i));
                        let mut dones = 0usize;
                        loop {
                            while let Ok(msg) = rx.try_recv() {
                                match msg {
                                    ShardMsg::Batch { interval, flows } => {
                                        if !stop.load(Ordering::Relaxed) {
                                            let t = Instant::now();
                                            acc.apply_hour(interval, &flows);
                                            wpm.ingest_time.record(t.elapsed());
                                        }
                                    }
                                    ShardMsg::Done => dones += 1,
                                }
                            }
                            if stop.load(Ordering::Relaxed) {
                                break;
                            }
                            let k = next.fetch_add(1, Ordering::Relaxed);
                            if k >= work.len() {
                                break;
                            }
                            let (interval, hour) = work[k];
                            let t0 = Instant::now();
                            let bytes = match store.fetch_hour_bytes(hour) {
                                Ok(b) => b,
                                Err(e) => {
                                    fail(interval, e);
                                    continue;
                                }
                            };
                            let t1 = Instant::now();
                            // Fused decode→route. On error the hour is
                            // abandoned unfinished: nothing was
                            // committed or sent, and the next
                            // begin_hour clears the buffers.
                            router.begin_hour(interval);
                            match store.visit_hour_for(hour, &bytes, decode, &mut router) {
                                Ok(_) => {}
                                Err(e) => {
                                    fail(interval, e);
                                    continue;
                                }
                            }
                            for (s, flows) in router.finish_hour().into_iter().enumerate() {
                                if flows.is_empty() {
                                    continue;
                                }
                                if s == i {
                                    acc.apply_hour(interval, &flows);
                                } else {
                                    let batch = ShardMsg::Batch { interval, flows };
                                    senders[s]
                                        .send(batch)
                                        .expect("shard inbox outlives workers");
                                }
                            }
                            let t2 = Instant::now();
                            wpm.read_time.record(t1 - t0);
                            wpm.ingest_time.record(t2 - t1);
                            wpm.hours_ingested.inc();
                            worker.inc();
                        }
                        for tx in &senders {
                            tx.send(ShardMsg::Done)
                                .expect("shard inbox outlives workers");
                        }
                        drop(senders);
                        while dones < threads {
                            match rx.recv() {
                                Ok(ShardMsg::Batch { interval, flows }) => {
                                    if !stop.load(Ordering::Relaxed) {
                                        acc.apply_hour(interval, &flows);
                                    }
                                }
                                Ok(ShardMsg::Done) => dones += 1,
                                Err(_) => break,
                            }
                        }
                        (router.into_partial(), acc.finish())
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("sharded store worker does not panic"))
                .collect()
        })
        .expect("sharded store scope does not panic");

        if let Some((_, err)) = first_err.into_inner().expect("error slot not poisoned") {
            return Err(err);
        }
        Ok(self.assemble_sharded(partials, registry, pm))
    }
}

/// Single pass over `window` computing the paper's day-completeness
/// rule (days with fewer than `hours_in_day - 1` present hours are
/// dropped, §III-A2) and the resulting work list of hours to read.
/// Each hour is probed and mapped to its day exactly once.
fn coverage(store: &FlowStore, window: &AnalysisWindow) -> Result<Coverage, NetError> {
    let num_days = window.num_days() as usize;
    let mut present_per_day: Vec<u32> = vec![0; num_days];
    let mut entries: Vec<(u32, UnixHour, u32, bool)> =
        Vec::with_capacity(window.num_hours() as usize);
    for (interval, hour) in window.iter_intervals() {
        let day = window.day_of_interval(interval)?;
        let present = store.has_hour(hour);
        if present {
            present_per_day[day as usize] += 1;
        }
        entries.push((interval, hour, day, present));
    }
    let mut day_kept = vec![false; num_days];
    let mut dropped_days = Vec::new();
    for d in 0..window.num_days() {
        let expected = window.hours_in_day(d);
        let bar = expected.saturating_sub(1).max(1);
        if present_per_day[d as usize] < bar {
            dropped_days.push(d);
        } else {
            day_kept[d as usize] = true;
        }
    }
    let mut work = Vec::with_capacity(entries.len());
    let mut hours_missing = 0;
    let mut hours_skipped = 0;
    for (interval, hour, day, present) in entries {
        if !present {
            hours_missing += 1;
        } else if day_kept[day as usize] {
            work.push((interval, hour));
        } else {
            hours_skipped += 1;
        }
    }
    Ok(Coverage {
        dropped_days,
        work,
        hours_missing,
        hours_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_net::store::StoreOptions;
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iotscope-pipe-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_equals_sequential() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(21));
        let traffic: Vec<HourTraffic> = (1..=24).map(|i| built.scenario.generate_hour(i)).collect();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let seq = pipeline
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let par = pipeline
            .run(&traffic, &AnalyzeOptions::new().threads(4))
            .unwrap()
            .analysis;
        assert_eq!(seq.devices, par.devices);
        assert_eq!(seq.protocol_packets, par.protocol_packets);
        assert_eq!(seq.scan_services, par.scan_services);
        assert_eq!(seq.udp_ports, par.udp_ports);
        assert_eq!(seq.unmatched_flows, par.unmatched_flows);
    }

    #[test]
    fn stable_metrics_identical_across_thread_counts() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(25));
        let traffic: Vec<HourTraffic> = (1..=24).map(|i| built.scenario.generate_hour(i)).collect();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let r1 = Registry::new();
        let r4 = Registry::new();
        pipeline
            .run(&traffic, &AnalyzeOptions::new().metrics(&r1))
            .unwrap();
        pipeline
            .run(&traffic, &AnalyzeOptions::new().threads(4).metrics(&r4))
            .unwrap();
        assert_eq!(
            r1.snapshot().stable_only(),
            r4.snapshot().stable_only(),
            "stable counters must not depend on thread count"
        );
    }

    #[test]
    fn outcome_carries_stats_and_metrics_only_when_requested() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(26));
        let traffic: Vec<HourTraffic> = (1..=4).map(|i| built.scenario.generate_hour(i)).collect();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let bare = pipeline.run(&traffic, &AnalyzeOptions::new()).unwrap();
        assert!(bare.stats.is_none());
        assert!(bare.metrics.is_none());
        assert!(bare.dropped_days.is_empty());
        let registry = Registry::new();
        let full = pipeline
            .run(
                &traffic,
                &AnalyzeOptions::new().stats(true).metrics(&registry),
            )
            .unwrap();
        let stats = full.stats.unwrap();
        assert_eq!(stats.threads, 1);
        assert_eq!(stats.hours_ingested, 4);
        let snap = full.metrics.unwrap();
        assert_eq!(snap.counter("pipeline.hours_ingested"), Some(4));
        assert!(snap.get("analysis.packets.consumer.tcp_scan").is_some());
    }

    #[test]
    fn store_run_without_window_errors() {
        let dir = tmpdir("no-window");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        let db =
            iotscope_devicedb::DeviceDb::from_devices(Vec::<iotscope_devicedb::IotDevice>::new());
        let pipeline = AnalysisPipeline::new(&db, 4);
        let err = pipeline.run(&store, &AnalyzeOptions::new()).unwrap_err();
        assert!(format!("{err}").contains("window"));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn store_roundtrip_with_complete_days() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(22));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("complete");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let registry = Registry::new();
        let out = pipeline
            .run(
                &store,
                &AnalyzeOptions::new().window(window).metrics(&registry),
            )
            .unwrap();
        assert!(
            out.dropped_days.is_empty(),
            "dropped {:?}",
            out.dropped_days
        );
        let in_memory = pipeline
            .run(&built.scenario.generate(), &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        assert_eq!(out.analysis.device_count(), in_memory.device_count());
        assert_eq!(out.analysis.total_packets(), in_memory.total_packets());
        // The store's own metrics flowed into the run registry.
        let snap = out.metrics.unwrap();
        assert_eq!(
            snap.counter("store.hours_read"),
            Some(u64::from(window.num_hours()))
        );
        assert!(snap.counter("store.bytes_read").unwrap() > 0);
        assert_eq!(snap.counter("store.checksum_failures"), Some(0));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_day_is_dropped_like_april_18() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(23));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("partial");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        // Simulate the telescope outage: delete 9 hours of day 2.
        for (interval, hour) in window.iter_intervals() {
            let day = window.day_of_interval(interval).unwrap();
            if day == 2 && (interval - 1) % 24 >= 15 {
                std::fs::remove_file(store.hour_path(hour)).unwrap();
            }
        }
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let out = pipeline
            .run(&store, &AnalyzeOptions::new().window(window))
            .unwrap();
        assert_eq!(out.dropped_days, vec![2]);
        // No traffic attributed to day-2 intervals (49..=72).
        for i in 48..72usize {
            assert_eq!(out.analysis.tcp_scan[0].packets[i], 0, "interval {}", i + 1);
            assert_eq!(out.analysis.tcp_scan[1].packets[i], 0);
            assert_eq!(out.analysis.udp[0].packets[i], 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_hour_fails_loudly_and_counts_checksum_failures() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(24));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("corrupt");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        // Corrupt one file.
        let victim = store.hour_path(window.start());
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim, bytes).unwrap();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let registry = Registry::new();
        let err = pipeline
            .run(
                &store,
                &AnalyzeOptions::new().window(window).metrics(&registry),
            )
            .unwrap_err();
        assert!(format!("{err}").contains("checksum"));
        assert_eq!(
            registry.snapshot().counter("store.checksum_failures"),
            Some(1)
        );
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn concurrent_runs_sharing_a_registry_keep_stats_separate() {
        // Regression: stats used to be a diff of the *shared* registry,
        // so two overlapping runs would count each other's reads. Each
        // run now accounts privately and absorbs into the caller's
        // registry at the end.
        let small = PaperScenario::build(PaperScenarioConfig::tiny(31));
        let big = PaperScenario::build(PaperScenarioConfig::tiny(32));
        let small_window = small.scenario.telescope().window;
        let big_window = big.scenario.telescope().window;
        let small_dir = tmpdir("concurrent-small");
        let big_dir = tmpdir("concurrent-big");
        let small_store = FlowStore::create(&small_dir, StoreOptions::default()).unwrap();
        let big_store = FlowStore::create(&big_dir, StoreOptions::default()).unwrap();
        small.scenario.write_to_store(&small_store).unwrap();
        big.scenario.write_to_store(&big_store).unwrap();
        // Thin out the small store to 1 complete day so the two runs
        // ingest different hour counts.
        for (interval, hour) in small_window.iter_intervals() {
            if small_window.day_of_interval(interval).unwrap() != 0 {
                std::fs::remove_file(small_store.hour_path(hour)).unwrap();
            }
        }
        let shared = Registry::new();
        let (small_stats, big_stats) = std::thread::scope(|s| {
            let h_small = s.spawn(|| {
                let pipeline = AnalysisPipeline::new(&small.inventory.db, small_window.num_hours());
                pipeline
                    .run(
                        &small_store,
                        &AnalyzeOptions::new()
                            .window(small_window)
                            .stats(true)
                            .metrics(&shared),
                    )
                    .unwrap()
                    .stats
                    .unwrap()
            });
            let h_big = s.spawn(|| {
                let pipeline = AnalysisPipeline::new(&big.inventory.db, big_window.num_hours());
                pipeline
                    .run(
                        &big_store,
                        &AnalyzeOptions::new()
                            .window(big_window)
                            .threads(2)
                            .stats(true)
                            .metrics(&shared),
                    )
                    .unwrap()
                    .stats
                    .unwrap()
            });
            (h_small.join().unwrap(), h_big.join().unwrap())
        });
        assert_eq!(small_stats.hours_ingested, 24);
        assert_eq!(
            big_stats.hours_ingested,
            u64::from(big_window.num_hours()),
            "each run's stats must count only its own reads"
        );
        // The shared registry still holds the cumulative totals.
        assert_eq!(
            shared.snapshot().counter("pipeline.hours_ingested"),
            Some(small_stats.hours_ingested + big_stats.hours_ingested)
        );
        std::fs::remove_dir_all(&small_dir).unwrap();
        std::fs::remove_dir_all(&big_dir).unwrap();
    }
}
