//! End-to-end analysis orchestration: in-memory, parallel, and
//! store-backed (with the paper's day-completeness rule).

use crate::analysis::{Analysis, Analyzer};
use iotscope_devicedb::DeviceDb;
use iotscope_net::store::FlowStore;
use iotscope_net::time::{AnalysisWindow, UnixHour};
use iotscope_net::NetError;
use iotscope_telescope::HourTraffic;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Accounting for one store-backed analysis run.
///
/// Stage times are summed across workers, so with N threads they can
/// add up to roughly N× the wall time — compare them to each other (is
/// this run I/O-bound or decode-bound?) rather than to `wall_time`.
#[derive(Debug, Clone, Default)]
pub struct StoreReadStats {
    /// Worker threads actually used (after clamping to the work list).
    pub threads: usize,
    /// Hour files read, decoded, and ingested.
    pub hours_ingested: u64,
    /// Window hours with no file on disk.
    pub hours_missing: u64,
    /// Hour files present but skipped by the day-completeness rule.
    pub hours_skipped: u64,
    /// Total on-disk bytes read.
    pub bytes_read: u64,
    /// Total flowtuple records decoded.
    pub records_decoded: u64,
    /// Time spent reading files (summed across workers).
    pub read_time: Duration,
    /// Time spent decoding payloads (summed across workers).
    pub decode_time: Duration,
    /// Time spent aggregating decoded hours (summed across workers).
    pub ingest_time: Duration,
    /// Time spent merging worker partials (single-threaded).
    pub merge_time: Duration,
    /// End-to-end elapsed time for the whole run.
    pub wall_time: Duration,
}

/// Result of a store-backed analysis: the aggregation itself, the days
/// dropped by the completeness rule, and per-stage accounting.
#[derive(Debug, Clone)]
pub struct StoreAnalysis {
    /// The aggregation, identical to what the sequential path produces.
    pub analysis: Analysis,
    /// Day indices dropped by the paper's completeness rule (§III-A2).
    pub dropped_days: Vec<u32>,
    /// Per-stage accounting for this run.
    pub stats: StoreReadStats,
}

/// One run's window coverage: which days are dropped, which present
/// hours remain to be read, and how many hours fell to each rule.
struct Coverage {
    dropped_days: Vec<u32>,
    work: Vec<(u32, UnixHour)>,
    hours_missing: u64,
    hours_skipped: u64,
}

/// Analysis entry points bound to a device inventory and window length.
///
/// # Example
///
/// ```
/// use iotscope_core::pipeline::AnalysisPipeline;
/// use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
///
/// let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
/// let hours = built.scenario.generate();
/// let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
/// let analysis = pipeline.analyze(&hours);
/// assert!(analysis.observations.len() > 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AnalysisPipeline<'a> {
    db: &'a DeviceDb,
    hours: u32,
}

impl<'a> AnalysisPipeline<'a> {
    /// Bind to a device database and a window of `hours` intervals.
    pub fn new(db: &'a DeviceDb, hours: u32) -> Self {
        AnalysisPipeline { db, hours }
    }

    /// Sequential single-pass analysis.
    pub fn analyze(&self, traffic: &[HourTraffic]) -> Analysis {
        let mut an = Analyzer::new(self.db, self.hours);
        for hour in traffic {
            an.ingest_hour(hour);
        }
        an.finish()
    }

    /// Parallel analysis: hours are partitioned across `threads` workers,
    /// partial aggregations are merged. Produces the *same result* as
    /// [`analyze`](Self::analyze) (see `Analyzer::merge`).
    pub fn analyze_parallel(&self, traffic: &[HourTraffic], threads: usize) -> Analysis {
        let threads = threads.clamp(1, 64).min(traffic.len().max(1));
        if threads <= 1 {
            return self.analyze(traffic);
        }
        let chunk = traffic.len().div_ceil(threads);
        let partials: Vec<Analyzer<'_>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = traffic
                .chunks(chunk)
                .map(|hours| {
                    scope.spawn(move |_| {
                        let mut an = Analyzer::new(self.db, self.hours);
                        for h in hours {
                            an.ingest_hour(h);
                        }
                        an
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("analysis worker does not panic"))
                .collect()
        })
        .expect("analysis scope does not panic");
        let mut iter = partials.into_iter();
        let mut first = iter.next().expect("at least one partial");
        for p in iter {
            first.merge(p);
        }
        first.finish()
    }

    /// Read and analyze a window from a [`FlowStore`], applying the
    /// paper's data-quality rule: days with fewer than 23 present hours
    /// are dropped entirely (April 18 had only 15 of 24 hours and was
    /// removed, §III-A2).
    ///
    /// Returns the analysis plus the list of dropped day indices.
    ///
    /// # Errors
    ///
    /// Propagates store read failures (corrupt files fail loudly; missing
    /// hours are handled by the completeness rule instead).
    pub fn analyze_store(
        &self,
        store: &FlowStore,
        window: &AnalysisWindow,
    ) -> Result<(Analysis, Vec<u32>), NetError> {
        let out = self.analyze_store_with_stats(store, window, 1)?;
        Ok((out.analysis, out.dropped_days))
    }

    /// Parallel [`analyze_store`](Self::analyze_store): hour files are
    /// read and decoded by a pool of `threads` workers and the partial
    /// aggregations merged, producing the *same result* as the
    /// sequential path (see `Analyzer::merge`).
    ///
    /// # Errors
    ///
    /// As [`analyze_store`](Self::analyze_store); when several hours are
    /// corrupt the error for the earliest interval is reported, matching
    /// what the sequential path would hit first.
    pub fn analyze_store_parallel(
        &self,
        store: &FlowStore,
        window: &AnalysisWindow,
        threads: usize,
    ) -> Result<(Analysis, Vec<u32>), NetError> {
        let out = self.analyze_store_with_stats(store, window, threads)?;
        Ok((out.analysis, out.dropped_days))
    }

    /// The full store-backed entry point: analyze `window` from `store`
    /// with `threads` workers (`<= 1` runs inline on the caller's
    /// thread) and return per-stage accounting alongside the analysis.
    ///
    /// # Errors
    ///
    /// As [`analyze_store`](Self::analyze_store).
    pub fn analyze_store_with_stats(
        &self,
        store: &FlowStore,
        window: &AnalysisWindow,
        threads: usize,
    ) -> Result<StoreAnalysis, NetError> {
        let wall_start = Instant::now();
        let cov = coverage(store, window)?;
        let threads = threads.clamp(1, 64).min(cov.work.len().max(1));
        let mut stats = StoreReadStats {
            threads,
            hours_missing: cov.hours_missing,
            hours_skipped: cov.hours_skipped,
            ..StoreReadStats::default()
        };
        let analysis = if threads <= 1 {
            let mut an = Analyzer::new(self.db, self.hours);
            for &(interval, hour) in &cov.work {
                let t0 = Instant::now();
                let bytes = store.read_hour_bytes(hour)?;
                let t1 = Instant::now();
                let flows = store.decode_hour_for(hour, &bytes)?;
                let t2 = Instant::now();
                stats.bytes_read += bytes.len() as u64;
                stats.records_decoded += flows.len() as u64;
                an.ingest_hour(&HourTraffic {
                    interval,
                    hour,
                    flows,
                });
                let t3 = Instant::now();
                stats.read_time += t1 - t0;
                stats.decode_time += t2 - t1;
                stats.ingest_time += t3 - t2;
                stats.hours_ingested += 1;
            }
            an.finish()
        } else {
            self.analyze_store_pooled(store, &cov.work, threads, &mut stats)?
        };
        stats.wall_time = wall_start.elapsed();
        Ok(StoreAnalysis {
            analysis,
            dropped_days: cov.dropped_days,
            stats,
        })
    }

    /// The worker pool behind the parallel store path: a producer feeds
    /// `(interval, hour)` items through a bounded channel to `threads`
    /// workers, each running read → decode → ingest into its own
    /// [`Analyzer`]; partials are merged at the end. On the first error
    /// a stop flag halts the producer and the error with the smallest
    /// interval wins, so the reported failure is deterministic.
    fn analyze_store_pooled(
        &self,
        store: &FlowStore,
        work: &[(u32, UnixHour)],
        threads: usize,
        stats: &mut StoreReadStats,
    ) -> Result<Analysis, NetError> {
        let stop = AtomicBool::new(false);
        let first_err: Mutex<Option<(u32, NetError)>> = Mutex::new(None);
        let fail = |interval: u32, err: NetError| {
            let mut slot = first_err.lock().expect("error slot not poisoned");
            match &*slot {
                Some((seen, _)) if *seen <= interval => {}
                _ => *slot = Some((interval, err)),
            }
            stop.store(true, Ordering::Relaxed);
        };

        let partials: Vec<(Analyzer<'_>, StoreReadStats)> = crossbeam::scope(|scope| {
            let (tx, rx) = crossbeam::channel::bounded::<(u32, UnixHour)>(threads * 2);
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    let rx = rx.clone();
                    let fail = &fail;
                    let stop = &stop;
                    scope.spawn(move |_| {
                        let mut an = Analyzer::new(self.db, self.hours);
                        let mut w = StoreReadStats::default();
                        while let Ok((interval, hour)) = rx.recv() {
                            if stop.load(Ordering::Relaxed) {
                                continue; // drain so the producer never blocks
                            }
                            let t0 = Instant::now();
                            let bytes = match store.read_hour_bytes(hour) {
                                Ok(b) => b,
                                Err(e) => {
                                    fail(interval, e);
                                    continue;
                                }
                            };
                            let t1 = Instant::now();
                            let flows = match store.decode_hour_for(hour, &bytes) {
                                Ok(f) => f,
                                Err(e) => {
                                    fail(interval, e);
                                    continue;
                                }
                            };
                            let t2 = Instant::now();
                            w.bytes_read += bytes.len() as u64;
                            w.records_decoded += flows.len() as u64;
                            an.ingest_hour(&HourTraffic {
                                interval,
                                hour,
                                flows,
                            });
                            let t3 = Instant::now();
                            w.read_time += t1 - t0;
                            w.decode_time += t2 - t1;
                            w.ingest_time += t3 - t2;
                            w.hours_ingested += 1;
                        }
                        (an, w)
                    })
                })
                .collect();
            drop(rx);
            for &(interval, hour) in work {
                if stop.load(Ordering::Relaxed) {
                    break;
                }
                if tx.send((interval, hour)).is_err() {
                    break;
                }
            }
            drop(tx);
            handles
                .into_iter()
                .map(|h| h.join().expect("store worker does not panic"))
                .collect()
        })
        .expect("store analysis scope does not panic");

        if let Some((_, err)) = first_err.into_inner().expect("error slot not poisoned") {
            return Err(err);
        }

        let merge_start = Instant::now();
        let mut iter = partials.into_iter();
        let (mut first, w) = iter.next().expect("at least one worker partial");
        add_worker_stats(stats, &w);
        for (p, w) in iter {
            add_worker_stats(stats, &w);
            first.merge(p);
        }
        stats.merge_time = merge_start.elapsed();
        Ok(first.finish())
    }
}

/// Accumulate one worker's counters into the run totals.
fn add_worker_stats(stats: &mut StoreReadStats, w: &StoreReadStats) {
    stats.hours_ingested += w.hours_ingested;
    stats.bytes_read += w.bytes_read;
    stats.records_decoded += w.records_decoded;
    stats.read_time += w.read_time;
    stats.decode_time += w.decode_time;
    stats.ingest_time += w.ingest_time;
}

/// Single pass over `window` computing the paper's day-completeness
/// rule (days with fewer than `hours_in_day - 1` present hours are
/// dropped, §III-A2) and the resulting work list of hours to read.
/// Each hour is probed and mapped to its day exactly once.
fn coverage(store: &FlowStore, window: &AnalysisWindow) -> Result<Coverage, NetError> {
    let num_days = window.num_days() as usize;
    let mut present_per_day: Vec<u32> = vec![0; num_days];
    let mut entries: Vec<(u32, UnixHour, u32, bool)> =
        Vec::with_capacity(window.num_hours() as usize);
    for (interval, hour) in window.iter_intervals() {
        let day = window.day_of_interval(interval)?;
        let present = store.has_hour(hour);
        if present {
            present_per_day[day as usize] += 1;
        }
        entries.push((interval, hour, day, present));
    }
    let mut day_kept = vec![false; num_days];
    let mut dropped_days = Vec::new();
    for d in 0..window.num_days() {
        let expected = window.hours_in_day(d);
        let bar = expected.saturating_sub(1).max(1);
        if present_per_day[d as usize] < bar {
            dropped_days.push(d);
        } else {
            day_kept[d as usize] = true;
        }
    }
    let mut work = Vec::with_capacity(entries.len());
    let mut hours_missing = 0;
    let mut hours_skipped = 0;
    for (interval, hour, day, present) in entries {
        if !present {
            hours_missing += 1;
        } else if day_kept[day as usize] {
            work.push((interval, hour));
        } else {
            hours_skipped += 1;
        }
    }
    Ok(Coverage {
        dropped_days,
        work,
        hours_missing,
        hours_skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_net::store::StoreOptions;
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iotscope-pipe-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_equals_sequential() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(21));
        let traffic: Vec<HourTraffic> = (1..=24).map(|i| built.scenario.generate_hour(i)).collect();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let seq = pipeline.analyze(&traffic);
        let par = pipeline.analyze_parallel(&traffic, 4);
        assert_eq!(seq.observations, par.observations);
        assert_eq!(seq.protocol_packets, par.protocol_packets);
        assert_eq!(seq.scan_services, par.scan_services);
        assert_eq!(seq.udp_ports, par.udp_ports);
        assert_eq!(seq.unmatched_flows, par.unmatched_flows);
    }

    #[test]
    fn store_roundtrip_with_complete_days() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(22));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("complete");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let (analysis, dropped) = pipeline.analyze_store(&store, &window).unwrap();
        assert!(dropped.is_empty(), "dropped {dropped:?}");
        let in_memory = pipeline.analyze(&built.scenario.generate());
        assert_eq!(analysis.observations.len(), in_memory.observations.len());
        assert_eq!(analysis.total_packets(), in_memory.total_packets());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_day_is_dropped_like_april_18() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(23));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("partial");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        // Simulate the telescope outage: delete 9 hours of day 2.
        for (interval, hour) in window.iter_intervals() {
            let day = window.day_of_interval(interval).unwrap();
            if day == 2 && (interval - 1) % 24 >= 15 {
                std::fs::remove_file(store.hour_path(hour)).unwrap();
            }
        }
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let (analysis, dropped) = pipeline.analyze_store(&store, &window).unwrap();
        assert_eq!(dropped, vec![2]);
        // No traffic attributed to day-2 intervals (49..=72).
        for i in 48..72usize {
            assert_eq!(analysis.tcp_scan[0].packets[i], 0, "interval {}", i + 1);
            assert_eq!(analysis.tcp_scan[1].packets[i], 0);
            assert_eq!(analysis.udp[0].packets[i], 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_hour_fails_loudly() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(24));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("corrupt");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        // Corrupt one file.
        let victim = store.hour_path(window.start());
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim, bytes).unwrap();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let err = pipeline.analyze_store(&store, &window).unwrap_err();
        assert!(format!("{err}").contains("checksum"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
