//! End-to-end analysis orchestration: in-memory, parallel, and
//! store-backed (with the paper's day-completeness rule).

use crate::analysis::{Analysis, Analyzer};
use iotscope_devicedb::DeviceDb;
use iotscope_net::store::FlowStore;
use iotscope_net::time::AnalysisWindow;
use iotscope_net::NetError;
use iotscope_telescope::HourTraffic;

/// Analysis entry points bound to a device inventory and window length.
///
/// # Example
///
/// ```
/// use iotscope_core::pipeline::AnalysisPipeline;
/// use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
///
/// let built = PaperScenario::build(PaperScenarioConfig::tiny(1));
/// let hours = built.scenario.generate();
/// let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
/// let analysis = pipeline.analyze(&hours);
/// assert!(analysis.observations.len() > 100);
/// ```
#[derive(Debug, Clone, Copy)]
pub struct AnalysisPipeline<'a> {
    db: &'a DeviceDb,
    hours: u32,
}

impl<'a> AnalysisPipeline<'a> {
    /// Bind to a device database and a window of `hours` intervals.
    pub fn new(db: &'a DeviceDb, hours: u32) -> Self {
        AnalysisPipeline { db, hours }
    }

    /// Sequential single-pass analysis.
    pub fn analyze(&self, traffic: &[HourTraffic]) -> Analysis {
        let mut an = Analyzer::new(self.db, self.hours);
        for hour in traffic {
            an.ingest_hour(hour);
        }
        an.finish()
    }

    /// Parallel analysis: hours are partitioned across `threads` workers,
    /// partial aggregations are merged. Produces the *same result* as
    /// [`analyze`](Self::analyze) (see `Analyzer::merge`).
    pub fn analyze_parallel(&self, traffic: &[HourTraffic], threads: usize) -> Analysis {
        let threads = threads.clamp(1, 64).min(traffic.len().max(1));
        if threads <= 1 {
            return self.analyze(traffic);
        }
        let chunk = traffic.len().div_ceil(threads);
        let partials: Vec<Analyzer<'_>> = crossbeam::scope(|scope| {
            let handles: Vec<_> = traffic
                .chunks(chunk)
                .map(|hours| {
                    scope.spawn(move |_| {
                        let mut an = Analyzer::new(self.db, self.hours);
                        for h in hours {
                            an.ingest_hour(h);
                        }
                        an
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("analysis worker does not panic"))
                .collect()
        })
        .expect("analysis scope does not panic");
        let mut iter = partials.into_iter();
        let mut first = iter.next().expect("at least one partial");
        for p in iter {
            first.merge(p);
        }
        first.finish()
    }

    /// Read and analyze a window from a [`FlowStore`], applying the
    /// paper's data-quality rule: days with fewer than 23 present hours
    /// are dropped entirely (April 18 had only 15 of 24 hours and was
    /// removed, §III-A2).
    ///
    /// Returns the analysis plus the list of dropped day indices.
    ///
    /// # Errors
    ///
    /// Propagates store read failures (corrupt files fail loudly; missing
    /// hours are handled by the completeness rule instead).
    pub fn analyze_store(
        &self,
        store: &FlowStore,
        window: &AnalysisWindow,
    ) -> Result<(Analysis, Vec<u32>), NetError> {
        // Determine per-day coverage.
        let mut present_per_day: Vec<u32> = vec![0; window.num_days() as usize];
        for (interval, hour) in window.iter_intervals() {
            if store.has_hour(hour) {
                let day = window.day_of_interval(interval)?;
                present_per_day[day as usize] += 1;
            }
        }
        let dropped: Vec<u32> = (0..window.num_days())
            .filter(|d| {
                let expected = window.hours_in_day(*d);
                let bar = expected.saturating_sub(1);
                present_per_day[*d as usize] < bar.max(1)
            })
            .collect();

        let mut an = Analyzer::new(self.db, self.hours);
        for (interval, hour) in window.iter_intervals() {
            let day = window.day_of_interval(interval)?;
            if dropped.contains(&day) || !store.has_hour(hour) {
                continue;
            }
            let flows = store.read_hour(hour)?;
            an.ingest_hour(&HourTraffic {
                interval,
                hour,
                flows,
            });
        }
        Ok((an.finish(), dropped))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_net::store::StoreOptions;
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
    use std::path::PathBuf;

    fn tmpdir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("iotscope-pipe-{name}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn parallel_equals_sequential() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(21));
        let traffic: Vec<HourTraffic> = (1..=24).map(|i| built.scenario.generate_hour(i)).collect();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let seq = pipeline.analyze(&traffic);
        let par = pipeline.analyze_parallel(&traffic, 4);
        assert_eq!(seq.observations, par.observations);
        assert_eq!(seq.protocol_packets, par.protocol_packets);
        assert_eq!(seq.scan_services, par.scan_services);
        assert_eq!(seq.udp_ports, par.udp_ports);
        assert_eq!(seq.unmatched_flows, par.unmatched_flows);
    }

    #[test]
    fn store_roundtrip_with_complete_days() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(22));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("complete");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let (analysis, dropped) = pipeline.analyze_store(&store, &window).unwrap();
        assert!(dropped.is_empty(), "dropped {dropped:?}");
        let in_memory = pipeline.analyze(&built.scenario.generate());
        assert_eq!(analysis.observations.len(), in_memory.observations.len());
        assert_eq!(analysis.total_packets(), in_memory.total_packets());
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn incomplete_day_is_dropped_like_april_18() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(23));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("partial");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        // Simulate the telescope outage: delete 9 hours of day 2.
        for (interval, hour) in window.iter_intervals() {
            let day = window.day_of_interval(interval).unwrap();
            if day == 2 && (interval - 1) % 24 >= 15 {
                std::fs::remove_file(store.hour_path(hour)).unwrap();
            }
        }
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let (analysis, dropped) = pipeline.analyze_store(&store, &window).unwrap();
        assert_eq!(dropped, vec![2]);
        // No traffic attributed to day-2 intervals (49..=72).
        for i in 48..72usize {
            assert_eq!(analysis.tcp_scan[0].packets[i], 0, "interval {}", i + 1);
            assert_eq!(analysis.tcp_scan[1].packets[i], 0);
            assert_eq!(analysis.udp[0].packets[i], 0);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn corrupt_hour_fails_loudly() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(24));
        let window = built.scenario.telescope().window;
        let dir = tmpdir("corrupt");
        let store = FlowStore::create(&dir, StoreOptions::default()).unwrap();
        built.scenario.write_to_store(&store).unwrap();
        // Corrupt one file.
        let victim = store.hour_path(window.start());
        let mut bytes = std::fs::read(&victim).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xff;
        std::fs::write(&victim, bytes).unwrap();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, window.num_hours());
        let err = pipeline.analyze_store(&store, &window).unwrap_err();
        assert!(format!("{err}").contains("checksum"));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
