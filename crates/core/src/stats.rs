//! Statistical tools used by the paper's characterization:
//!
//! * descriptive statistics (daily mean/σ of packet counts, §IV);
//! * the empirical CDF behind Figs 6 and 11;
//! * Pearson correlation with a two-sided p-value (UDP ports↔destinations
//!   r = 0.95, §IV-A1; scanners↔packets r ≈ 0, §IV-C);
//! * the Mann–Whitney U test with normal approximation and tie correction
//!   (CPS vs consumer packet comparisons, §IV and §IV-B1).
//!
//! Special functions (erf, log-gamma, regularized incomplete beta) are
//! implemented locally so the crate needs no numerical dependency.

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n−1 denominator); 0 for fewer than two
/// values.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// An empirical cumulative distribution function over a sample.
///
/// # Example
///
/// ```
/// use iotscope_core::stats::Ecdf;
///
/// let e = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(e.eval(0.5), 0.0);
/// assert_eq!(e.eval(2.0), 0.75);
/// assert_eq!(e.eval(100.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Build from a sample (non-finite values are dropped).
    pub fn new(mut values: Vec<f64>) -> Self {
        values.retain(|v| v.is_finite());
        values.sort_by(|a, b| a.partial_cmp(b).expect("values are finite"));
        Ecdf { sorted: values }
    }

    /// Sample size.
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of the sample ≤ `x` (0 for an empty sample).
    pub fn eval(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let idx = self.sorted.partition_point(|v| *v <= x);
        idx as f64 / self.sorted.len() as f64
    }

    /// The `q`-quantile (0 ≤ q ≤ 1) by nearest-rank; `None` when empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        if self.sorted.is_empty() {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let idx = ((q * self.sorted.len() as f64).ceil() as usize).max(1) - 1;
        Some(self.sorted[idx.min(self.sorted.len() - 1)])
    }

    /// `(value, cdf)` step points, one per sample element.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let n = self.sorted.len() as f64;
        self.sorted
            .iter()
            .enumerate()
            .map(|(i, v)| (*v, (i + 1) as f64 / n))
            .collect()
    }
}

/// Result of a correlation test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Correlation {
    /// Pearson's r.
    pub r: f64,
    /// Two-sided p-value against r = 0 (t-distribution, df = n−2).
    pub p_value: f64,
    /// Sample size.
    pub n: usize,
}

/// Pearson correlation of two equal-length samples.
///
/// Returns `None` when lengths differ, n < 3, or either sample is
/// constant.
pub fn pearson(xs: &[f64], ys: &[f64]) -> Option<Correlation> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    let n = xs.len();
    let mx = mean(xs);
    let my = mean(ys);
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx <= 0.0 || syy <= 0.0 {
        return None;
    }
    let r = (sxy / (sxx * syy).sqrt()).clamp(-1.0, 1.0);
    let df = (n - 2) as f64;
    let p_value = if r.abs() >= 1.0 {
        0.0
    } else {
        let t = r * (df / (1.0 - r * r)).sqrt();
        student_t_two_sided_p(t, df)
    };
    Some(Correlation { r, p_value, n })
}

/// Spearman rank correlation of two equal-length samples (Pearson over
/// average ranks — robust to monotone nonlinearity, used to sanity-check
/// the Fig 5 ports↔destinations relationship).
///
/// Returns `None` under the same conditions as [`pearson`].
pub fn spearman(xs: &[f64], ys: &[f64]) -> Option<Correlation> {
    if xs.len() != ys.len() || xs.len() < 3 {
        return None;
    }
    pearson(&ranks(xs), &ranks(ys))
}

/// Average ranks (1-based) with ties sharing their mean rank.
pub fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|a, b| xs[*a].partial_cmp(&xs[*b]).expect("finite values"));
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        for k in i..=j {
            out[idx[k]] = avg_rank;
        }
        i = j + 1;
    }
    out
}

/// Result of a Mann–Whitney U test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MannWhitney {
    /// The U statistic of the first sample.
    pub u: f64,
    /// Normal-approximation z-score (sign: negative when the first sample
    /// ranks lower).
    pub z: f64,
    /// Two-sided p-value.
    pub p_value: f64,
    /// Sample sizes.
    pub n1: usize,
    /// Second sample size.
    pub n2: usize,
}

/// Two-sided Mann–Whitney U test with average ranks for ties and tie
/// correction in the variance; `None` if either sample is empty.
pub fn mann_whitney_u(xs: &[f64], ys: &[f64]) -> Option<MannWhitney> {
    let n1 = xs.len();
    let n2 = ys.len();
    if n1 == 0 || n2 == 0 {
        return None;
    }
    // Rank the pooled sample.
    let mut pooled: Vec<(f64, usize)> = xs
        .iter()
        .map(|v| (*v, 0usize))
        .chain(ys.iter().map(|v| (*v, 1usize)))
        .collect();
    pooled.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
    let n = pooled.len();
    let mut rank_sum_x = 0.0;
    let mut tie_term = 0.0;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && pooled[j + 1].0 == pooled[i].0 {
            j += 1;
        }
        let avg_rank = (i + j) as f64 / 2.0 + 1.0;
        let t = (j - i + 1) as f64;
        if t > 1.0 {
            tie_term += t * t * t - t;
        }
        for item in &pooled[i..=j] {
            if item.1 == 0 {
                rank_sum_x += avg_rank;
            }
        }
        i = j + 1;
    }
    let n1f = n1 as f64;
    let n2f = n2 as f64;
    let u = rank_sum_x - n1f * (n1f + 1.0) / 2.0;
    let mu = n1f * n2f / 2.0;
    let nf = n as f64;
    let var = n1f * n2f / 12.0 * ((nf + 1.0) - tie_term / (nf * (nf - 1.0)));
    if var <= 0.0 {
        // All values tied: no evidence of difference.
        return Some(MannWhitney {
            u,
            z: 0.0,
            p_value: 1.0,
            n1,
            n2,
        });
    }
    let z = (u - mu) / var.sqrt();
    let p_value = 2.0 * normal_sf(z.abs());
    Some(MannWhitney {
        u,
        z,
        p_value: p_value.min(1.0),
        n1,
        n2,
    })
}

/// Standard-normal survival function P(Z > z).
pub fn normal_sf(z: f64) -> f64 {
    0.5 * erfc(z / std::f64::consts::SQRT_2)
}

/// Complementary error function (Abramowitz & Stegun 7.1.26, |ε| ≤ 1.5e-7).
pub fn erfc(x: f64) -> f64 {
    let sign_negative = x < 0.0;
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let poly = t
        * (0.254829592
            + t * (-0.284496736 + t * (1.421413741 + t * (-1.453152027 + t * 1.061405429))));
    let e = poly * (-x * x).exp();
    if sign_negative {
        2.0 - e
    } else {
        e
    }
}

/// Two-sided p-value of a t statistic with `df` degrees of freedom.
pub fn student_t_two_sided_p(t: f64, df: f64) -> f64 {
    if !t.is_finite() {
        return 0.0;
    }
    let x = df / (df + t * t);
    reg_inc_beta(df / 2.0, 0.5, x).clamp(0.0, 1.0)
}

/// Natural log of the gamma function (Lanczos approximation).
pub fn ln_gamma(x: f64) -> f64 {
    const COEF: [f64; 6] = [
        76.18009172947146,
        -86.50532032941677,
        24.01409824083091,
        -1.231739572450155,
        0.1208650973866179e-2,
        -0.5395239384953e-5,
    ];
    let mut y = x;
    let tmp = x + 5.5;
    let tmp = tmp - (x + 0.5) * tmp.ln();
    let mut ser = 1.000000000190015;
    for c in COEF {
        y += 1.0;
        ser += c / y;
    }
    -tmp + (2.5066282746310005 * ser / x).ln()
}

/// Regularized incomplete beta function I_x(a, b) via the continued
/// fraction expansion (Numerical Recipes `betai`/`betacf`).
pub fn reg_inc_beta(a: f64, b: f64, x: f64) -> f64 {
    if x <= 0.0 {
        return 0.0;
    }
    if x >= 1.0 {
        return 1.0;
    }
    let ln_front = ln_gamma(a + b) - ln_gamma(a) - ln_gamma(b) + a * x.ln() + b * (1.0 - x).ln();
    let front = ln_front.exp();
    if x < (a + 1.0) / (a + b + 2.0) {
        front * betacf(a, b, x) / a
    } else {
        1.0 - front * betacf(b, a, 1.0 - x) / b
    }
}

fn betacf(a: f64, b: f64, x: f64) -> f64 {
    const MAX_ITER: usize = 200;
    const EPS: f64 = 3.0e-12;
    const FPMIN: f64 = 1.0e-300;
    let qab = a + b;
    let qap = a + 1.0;
    let qam = a - 1.0;
    let mut c = 1.0;
    let mut d = 1.0 - qab * x / qap;
    if d.abs() < FPMIN {
        d = FPMIN;
    }
    d = 1.0 / d;
    let mut h = d;
    for m in 1..=MAX_ITER {
        let m = m as f64;
        let m2 = 2.0 * m;
        let aa = m * (b - m) * x / ((qam + m2) * (a + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        h *= d * c;
        let aa = -(a + m) * (qab + m) * x / ((a + m2) * (qap + m2));
        d = 1.0 + aa * d;
        if d.abs() < FPMIN {
            d = FPMIN;
        }
        c = 1.0 + aa / c;
        if c.abs() < FPMIN {
            c = FPMIN;
        }
        d = 1.0 / d;
        let del = d * c;
        h *= del;
        if (del - 1.0).abs() < EPS {
            break;
        }
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn mean_and_std_dev_known_values() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0, 6.0]), 4.0);
        assert_eq!(std_dev(&[5.0]), 0.0);
        // Sample std dev of [2,4,4,4,5,5,7,9] is ~2.138.
        let s = std_dev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138).abs() < 0.01, "{s}");
    }

    #[test]
    fn ecdf_eval_and_quantiles() {
        let e = Ecdf::new(vec![3.0, 1.0, 2.0, 2.0]);
        assert_eq!(e.len(), 4);
        assert_eq!(e.eval(0.0), 0.0);
        assert_eq!(e.eval(1.0), 0.25);
        assert_eq!(e.eval(2.0), 0.75);
        assert_eq!(e.eval(3.0), 1.0);
        assert_eq!(e.quantile(0.5), Some(2.0));
        assert_eq!(e.quantile(1.0), Some(3.0));
        assert_eq!(e.quantile(0.0), Some(1.0));
        let pts = e.points();
        assert_eq!(pts.len(), 4);
        assert_eq!(pts[3], (3.0, 1.0));
    }

    #[test]
    fn ecdf_empty_and_nonfinite() {
        let e = Ecdf::new(vec![f64::NAN, f64::INFINITY]);
        // Infinity is finite? No — it is dropped along with NaN.
        assert!(e.is_empty());
        assert_eq!(e.eval(1.0), 0.0);
        assert_eq!(e.quantile(0.5), None);
    }

    #[test]
    fn pearson_perfect_and_known() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        let c = pearson(&xs, &ys).unwrap();
        assert!((c.r - 1.0).abs() < 1e-12);
        assert!(c.p_value < 1e-6);

        // Known example: r = 0.7746, p ≈ 0.124 (df = 3).
        let xs = [1.0, 2.0, 3.0, 4.0, 5.0];
        let ys = [2.0, 4.0, 5.0, 4.0, 5.0];
        let c = pearson(&xs, &ys).unwrap();
        assert!((c.r - 0.7746).abs() < 1e-3, "r = {}", c.r);
        assert!((0.10..=0.15).contains(&c.p_value), "p = {}", c.p_value);
    }

    #[test]
    fn pearson_rejects_degenerate_inputs() {
        assert!(pearson(&[1.0, 2.0], &[1.0, 2.0]).is_none()); // n < 3
        assert!(pearson(&[1.0, 2.0, 3.0], &[1.0, 2.0]).is_none()); // length mismatch
        assert!(pearson(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none()); // constant
    }

    #[test]
    fn pearson_near_zero_for_independent() {
        // Deterministic pseudo-random but uncorrelated sequences.
        let xs: Vec<f64> = (0..200).map(|i| ((i * 37 + 11) % 101) as f64).collect();
        let ys: Vec<f64> = (0..200).map(|i| ((i * 53 + 7) % 97) as f64).collect();
        let c = pearson(&xs, &ys).unwrap();
        assert!(c.r.abs() < 0.2, "r = {}", c.r);
        assert!(c.p_value > 0.01, "p = {}", c.p_value);
    }

    #[test]
    fn ranks_handle_ties() {
        assert_eq!(ranks(&[10.0, 20.0, 20.0, 30.0]), vec![1.0, 2.5, 2.5, 4.0]);
        assert_eq!(ranks(&[5.0]), vec![1.0]);
        assert_eq!(ranks(&[3.0, 1.0, 2.0]), vec![3.0, 1.0, 2.0]);
    }

    #[test]
    fn spearman_captures_monotone_nonlinear_relations() {
        // y = x³ is perfectly monotone: Spearman = 1, Pearson < 1.
        let xs: Vec<f64> = (-10..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| x.powi(3)).collect();
        let s = spearman(&xs, &ys).unwrap();
        assert!((s.r - 1.0).abs() < 1e-9, "spearman {}", s.r);
        let p = pearson(&xs, &ys).unwrap();
        assert!(p.r < 0.95, "pearson {}", p.r);
        // Reversed order → −1.
        let rev: Vec<f64> = ys.iter().rev().copied().collect();
        let s = spearman(&xs, &rev).unwrap();
        assert!((s.r + 1.0).abs() < 1e-9);
    }

    #[test]
    fn spearman_rejects_degenerate_inputs() {
        assert!(spearman(&[1.0, 2.0], &[1.0, 2.0]).is_none());
        assert!(spearman(&[1.0, 1.0, 1.0], &[1.0, 2.0, 3.0]).is_none());
    }

    #[test]
    fn mann_whitney_separated_samples() {
        // x = [1,2,3], y = [4,5,6]: U_x = 0, z ≈ −1.964, p ≈ 0.0495.
        let mw = mann_whitney_u(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]).unwrap();
        assert_eq!(mw.u, 0.0);
        assert!((mw.z + 1.964).abs() < 0.01, "z = {}", mw.z);
        assert!((0.045..=0.055).contains(&mw.p_value), "p = {}", mw.p_value);
    }

    #[test]
    fn mann_whitney_identical_samples() {
        let mw = mann_whitney_u(&[1.0, 2.0, 3.0], &[1.0, 2.0, 3.0]).unwrap();
        assert!((mw.u - 4.5).abs() < 1e-9);
        assert!(mw.p_value > 0.9, "p = {}", mw.p_value);
    }

    #[test]
    fn mann_whitney_all_tied() {
        let mw = mann_whitney_u(&[5.0, 5.0], &[5.0, 5.0, 5.0]).unwrap();
        assert_eq!(mw.z, 0.0);
        assert_eq!(mw.p_value, 1.0);
    }

    #[test]
    fn mann_whitney_strong_separation_is_significant() {
        let xs: Vec<f64> = (0..60).map(|i| i as f64).collect();
        let ys: Vec<f64> = (0..60).map(|i| 1000.0 + i as f64).collect();
        let mw = mann_whitney_u(&xs, &ys).unwrap();
        assert!(mw.p_value < 1e-4, "p = {}", mw.p_value);
        assert!(mw.z < -5.0, "z = {}", mw.z);
    }

    #[test]
    fn mann_whitney_empty_input() {
        assert!(mann_whitney_u(&[], &[1.0]).is_none());
        assert!(mann_whitney_u(&[1.0], &[]).is_none());
    }

    #[test]
    fn erfc_and_normal_sf_known_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-7);
        assert!((erfc(1.0) - 0.157299).abs() < 1e-5);
        assert!((erfc(-1.0) - 1.842701).abs() < 1e-5);
        assert!((normal_sf(0.0) - 0.5).abs() < 1e-7);
        assert!((normal_sf(1.96) - 0.025).abs() < 5e-4);
        assert!((normal_sf(-1.96) - 0.975).abs() < 5e-4);
    }

    #[test]
    fn ln_gamma_known_values() {
        // Γ(5) = 24.
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-9);
        // Γ(0.5) = √π.
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-9);
    }

    #[test]
    fn reg_inc_beta_boundaries_and_symmetry() {
        assert_eq!(reg_inc_beta(2.0, 3.0, 0.0), 0.0);
        assert_eq!(reg_inc_beta(2.0, 3.0, 1.0), 1.0);
        // I_x(1,1) = x.
        for x in [0.1, 0.4, 0.9] {
            assert!((reg_inc_beta(1.0, 1.0, x) - x).abs() < 1e-9);
        }
        // Symmetry: I_x(a,b) = 1 − I_{1−x}(b,a).
        let v = reg_inc_beta(2.5, 1.5, 0.3);
        let w = 1.0 - reg_inc_beta(1.5, 2.5, 0.7);
        assert!((v - w).abs() < 1e-9);
    }

    #[test]
    fn t_distribution_known_p() {
        // t = 2.1213, df = 3 → two-sided p ≈ 0.124.
        let p = student_t_two_sided_p(2.1213, 3.0);
        assert!((0.118..=0.130).contains(&p), "p = {p}");
        // Large t → tiny p.
        assert!(student_t_two_sided_p(50.0, 10.0) < 1e-8);
        assert!((student_t_two_sided_p(0.0, 10.0) - 1.0).abs() < 1e-9);
    }

    proptest! {
        #[test]
        fn prop_ecdf_monotone(values in proptest::collection::vec(-1e6f64..1e6, 1..100)) {
            let e = Ecdf::new(values.clone());
            let mut xs: Vec<f64> = values;
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            let mut prev = 0.0;
            for x in xs {
                let v = e.eval(x);
                prop_assert!(v >= prev - 1e-12);
                prop_assert!((0.0..=1.0).contains(&v));
                prev = v;
            }
        }

        #[test]
        fn prop_mann_whitney_symmetric(
            xs in proptest::collection::vec(-100f64..100.0, 1..40),
            ys in proptest::collection::vec(-100f64..100.0, 1..40),
        ) {
            let a = mann_whitney_u(&xs, &ys).unwrap();
            let b = mann_whitney_u(&ys, &xs).unwrap();
            prop_assert!((a.z + b.z).abs() < 1e-9);
            prop_assert!((a.p_value - b.p_value).abs() < 1e-9);
            // U_x + U_y = n1 * n2.
            prop_assert!((a.u + b.u - (xs.len() * ys.len()) as f64).abs() < 1e-6);
        }

        #[test]
        fn prop_pearson_bounded_and_symmetric(
            pairs in proptest::collection::vec((-100f64..100.0, -100f64..100.0), 3..50),
        ) {
            let xs: Vec<f64> = pairs.iter().map(|p| p.0).collect();
            let ys: Vec<f64> = pairs.iter().map(|p| p.1).collect();
            if let Some(c) = pearson(&xs, &ys) {
                prop_assert!((-1.0..=1.0).contains(&c.r));
                prop_assert!((0.0..=1.0).contains(&c.p_value));
                let d = pearson(&ys, &xs).unwrap();
                prop_assert!((c.r - d.r).abs() < 1e-9);
            }
        }
    }
}
