//! Botnet clustering from passive measurements (§VII future work).
//!
//! The paper closes with "identifying and clustering IoT botnets and
//! their illicit activities by solely scrutinizing passive measurements."
//! This module implements that: coordinated bots share a command channel,
//! so they scan the *same ports* on *synchronized schedules*. Clustering
//! links two scanners when their port sets overlap strongly (Jaccard) and
//! their hourly activity co-moves (Pearson), then takes connected
//! components. Steady, independently-operating scanners produce constant
//! activity series whose correlation is undefined, so they never link —
//! only genuinely synchronized populations cluster.

use crate::behavior::BehaviorVector;
use iotscope_devicedb::DeviceId;
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Thresholds for linking two scanners.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BotnetConfig {
    /// Minimum Jaccard similarity of scanned-port sets.
    pub min_port_jaccard: f64,
    /// Minimum Pearson correlation of hourly activity.
    pub min_activity_correlation: f64,
    /// Minimum members for a cluster to be reported.
    pub min_cluster_size: usize,
    /// Minimum scan packets for a source to participate.
    pub min_scan_packets: u64,
    /// Ports scanned by more than this fraction of all scanners are too
    /// common to be linking evidence on their own (e.g. Telnet/23).
    pub max_port_popularity: f64,
}

impl Default for BotnetConfig {
    fn default() -> Self {
        BotnetConfig {
            min_port_jaccard: 0.75,
            min_activity_correlation: 0.60,
            min_cluster_size: 3,
            min_scan_packets: 10,
            max_port_popularity: 0.05,
        }
    }
}

/// One discovered cluster of coordinated scanners.
#[derive(Debug, Clone, PartialEq)]
pub struct BotnetCluster {
    /// Member sources (inventory devices and/or unmatched addresses).
    pub members: Vec<Ipv4Addr>,
    /// Members that map to inventory devices.
    pub devices: Vec<DeviceId>,
    /// Ports scanned by every member.
    pub signature_ports: BTreeSet<u16>,
    /// Total scan packets across members.
    pub total_packets: u64,
    /// The interval (1-based) with the cluster's peak activity.
    pub peak_interval: u32,
}

impl BotnetCluster {
    /// Number of members.
    pub fn size(&self) -> usize {
        self.members.len()
    }
}

/// Cluster the scanners in `vectors`.
///
/// # Example
///
/// ```
/// use iotscope_core::botnet::{cluster, BotnetConfig};
/// use std::collections::HashMap;
///
/// let clusters = cluster(&HashMap::new(), &BotnetConfig::default());
/// assert!(clusters.is_empty());
/// ```
pub fn cluster(
    vectors: &HashMap<Ipv4Addr, BehaviorVector>,
    config: &BotnetConfig,
) -> Vec<BotnetCluster> {
    // Participating scanners.
    let scanners: Vec<&BehaviorVector> = vectors
        .values()
        .filter(|v| {
            let scan: u64 = v.scan_ports.values().sum();
            scan >= config.min_scan_packets
        })
        .collect();
    if scanners.is_empty() {
        return Vec::new();
    }

    // Candidate pairs share at least one *distinctive* port — bucketing by
    // port keeps this near-linear instead of all-pairs.
    let mut port_buckets: BTreeMap<u16, Vec<usize>> = BTreeMap::new();
    for (i, v) in scanners.iter().enumerate() {
        for port in v.scan_ports.keys() {
            port_buckets.entry(*port).or_default().push(i);
        }
    }
    // Fraction-based for large populations, with an absolute floor so
    // small test populations do not mark every port "popular".
    let popularity_cap =
        ((scanners.len() as f64 * config.max_port_popularity).ceil() as usize).max(8);

    let mut uf = UnionFind::new(scanners.len());
    let mut checked: BTreeSet<(usize, usize)> = BTreeSet::new();
    for members in port_buckets.values() {
        if members.len() > popularity_cap {
            continue; // too common to be a signature (e.g. Telnet)
        }
        for (ai, a) in members.iter().enumerate() {
            for b in &members[ai + 1..] {
                let key = (*a.min(b), *a.max(b));
                if !checked.insert(key) || uf.find(key.0) == uf.find(key.1) {
                    continue;
                }
                let va = scanners[key.0];
                let vb = scanners[key.1];
                if va.port_jaccard(vb) < config.min_port_jaccard {
                    continue;
                }
                match va.activity_correlation(vb) {
                    Some(r) if r >= config.min_activity_correlation => {
                        uf.union(key.0, key.1);
                    }
                    _ => {}
                }
            }
        }
    }

    // Materialize components.
    let mut groups: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
    for i in 0..scanners.len() {
        groups.entry(uf.find(i)).or_default().push(i);
    }
    let mut clusters = Vec::new();
    for idxs in groups.values() {
        if idxs.len() < config.min_cluster_size {
            continue;
        }
        let mut members: Vec<Ipv4Addr> = idxs.iter().map(|i| scanners[*i].ip).collect();
        members.sort();
        let mut devices: Vec<DeviceId> = idxs.iter().filter_map(|i| scanners[*i].device).collect();
        devices.sort();
        // Signature = ports scanned by every member.
        let mut signature: BTreeSet<u16> = scanners[idxs[0]].scan_ports.keys().copied().collect();
        for i in &idxs[1..] {
            signature.retain(|p| scanners[*i].scan_ports.contains_key(p));
        }
        let total_packets: u64 = idxs
            .iter()
            .map(|i| scanners[*i].scan_ports.values().sum::<u64>())
            .sum();
        // Peak interval of the summed activity.
        let hours = scanners[idxs[0]].hourly.len();
        let mut summed = vec![0u64; hours];
        for i in idxs {
            for (h, v) in scanners[*i].hourly.iter().enumerate() {
                summed[h] += v;
            }
        }
        let peak_interval = summed
            .iter()
            .enumerate()
            .max_by_key(|(_, v)| **v)
            .map(|(h, _)| h as u32 + 1)
            .unwrap_or(1);
        clusters.push(BotnetCluster {
            members,
            devices,
            signature_ports: signature,
            total_packets,
            peak_interval,
        });
    }
    clusters.sort_by(|a, b| b.size().cmp(&a.size()).then(a.members.cmp(&b.members)));
    clusters
}

/// Path-compressing union-find.
#[derive(Debug)]
struct UnionFind {
    parent: Vec<usize>,
}

impl UnionFind {
    fn new(n: usize) -> Self {
        UnionFind {
            parent: (0..n).collect(),
        }
    }

    fn find(&mut self, mut x: usize) -> usize {
        while self.parent[x] != x {
            self.parent[x] = self.parent[self.parent[x]];
            x = self.parent[x];
        }
        x
    }

    fn union(&mut self, a: usize, b: usize) {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra != rb {
            self.parent[ra.max(rb)] = ra.min(rb);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::extract;
    use iotscope_devicedb::DeviceDb;
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;

    fn syn(src: Ipv4Addr, port: u16, pkts: u32) -> FlowTuple {
        FlowTuple::tcp(src, Ipv4Addr::new(44, 0, 0, 1), 40000, port, TcpFlags::SYN)
            .with_packets(pkts)
    }

    /// Build traffic with: botnet A (5 bots, ports {5555, 7001}, active
    /// hours 2 and 6), botnet B (4 bots, port {30005}, active hours 3/7),
    /// and 6 independent scanners with unique ports on unsynced hours.
    fn traffic() -> Vec<HourTraffic> {
        let mut hours: Vec<HourTraffic> = (1..=8)
            .map(|i| HourTraffic {
                interval: i,
                hour: UnixHour::new(u64::from(i)),
                flows: Vec::new(),
            })
            .collect();
        for bot in 0..5u8 {
            let ip = Ipv4Addr::new(10, 0, 0, bot + 1);
            for h in [2usize, 6] {
                hours[h - 1].flows.push(syn(ip, 5555, 20));
                hours[h - 1].flows.push(syn(ip, 7001, 20));
            }
        }
        for bot in 0..4u8 {
            let ip = Ipv4Addr::new(10, 0, 1, bot + 1);
            for h in [3usize, 7] {
                hours[h - 1].flows.push(syn(ip, 30005, 30));
            }
        }
        for lone in 0..6u8 {
            let ip = Ipv4Addr::new(10, 0, 2, lone + 1);
            let h = (lone as usize % 8) + 1;
            hours[h - 1]
                .flows
                .push(syn(ip, 40000 + u16::from(lone), 50));
        }
        hours
    }

    #[test]
    fn recovers_planted_botnets() {
        let db = DeviceDb::new();
        let vectors = extract(&traffic(), &db, 8);
        let clusters = cluster(&vectors, &BotnetConfig::default());
        assert_eq!(clusters.len(), 2, "{clusters:#?}");
        let a = &clusters[0];
        let b = &clusters[1];
        assert_eq!(a.size(), 5);
        assert_eq!(b.size(), 4);
        assert_eq!(a.signature_ports, BTreeSet::from([5555u16, 7001]));
        assert_eq!(b.signature_ports, BTreeSet::from([30005u16]));
        // Peak interval lies on a planted active hour.
        assert!([2u32, 6].contains(&a.peak_interval));
        assert!([3u32, 7].contains(&b.peak_interval));
        // No lone scanner was absorbed.
        for c in &clusters {
            for ip in &c.members {
                assert_ne!(ip.octets()[2], 2, "lone scanner {ip} clustered");
            }
        }
    }

    #[test]
    fn popular_ports_do_not_link() {
        // Everyone scans Telnet; that alone must not form one giant
        // cluster.
        let db = DeviceDb::new();
        let mut hours: Vec<HourTraffic> = (1..=4)
            .map(|i| HourTraffic {
                interval: i,
                hour: UnixHour::new(u64::from(i)),
                flows: Vec::new(),
            })
            .collect();
        for i in 0..30u8 {
            let ip = Ipv4Addr::new(10, 1, 0, i + 1);
            let h = (i as usize % 4) + 1;
            hours[h - 1].flows.push(syn(ip, 23, 40));
        }
        let vectors = extract(&hours, &db, 4);
        let clusters = cluster(&vectors, &BotnetConfig::default());
        assert!(clusters.is_empty(), "{clusters:#?}");
    }

    #[test]
    fn steady_scanners_never_cluster() {
        // Same rare port, but perfectly constant activity (no variance →
        // correlation undefined → no link).
        let db = DeviceDb::new();
        let hours: Vec<HourTraffic> = (1..=4)
            .map(|i| HourTraffic {
                interval: i,
                hour: UnixHour::new(u64::from(i)),
                flows: (0..5u8)
                    .map(|b| syn(Ipv4Addr::new(10, 2, 0, b + 1), 9999, 10))
                    .collect(),
            })
            .collect();
        let vectors = extract(&hours, &db, 4);
        let clusters = cluster(&vectors, &BotnetConfig::default());
        assert!(clusters.is_empty(), "{clusters:#?}");
    }

    #[test]
    fn min_cluster_size_filters_pairs() {
        let db = DeviceDb::new();
        let mut hours: Vec<HourTraffic> = (1..=4)
            .map(|i| HourTraffic {
                interval: i,
                hour: UnixHour::new(u64::from(i)),
                flows: Vec::new(),
            })
            .collect();
        for b in 0..2u8 {
            let ip = Ipv4Addr::new(10, 3, 0, b + 1);
            hours[0].flows.push(syn(ip, 12345, 30));
            hours[2].flows.push(syn(ip, 12345, 30));
        }
        let vectors = extract(&hours, &db, 4);
        assert!(cluster(&vectors, &BotnetConfig::default()).is_empty());
        let cfg = BotnetConfig {
            min_cluster_size: 2,
            ..BotnetConfig::default()
        };
        assert_eq!(cluster(&vectors, &cfg).len(), 1);
    }

    #[test]
    fn min_packets_gate() {
        let db = DeviceDb::new();
        let vectors = extract(&traffic(), &db, 8);
        let cfg = BotnetConfig {
            min_scan_packets: 1_000_000,
            ..BotnetConfig::default()
        };
        assert!(cluster(&vectors, &cfg).is_empty());
    }

    #[test]
    fn union_find_basics() {
        let mut uf = UnionFind::new(5);
        uf.union(0, 1);
        uf.union(3, 4);
        assert_eq!(uf.find(0), uf.find(1));
        assert_ne!(uf.find(1), uf.find(3));
        uf.union(1, 3);
        assert_eq!(uf.find(0), uf.find(4));
        assert_ne!(uf.find(2), uf.find(0));
    }
}
