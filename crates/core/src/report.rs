//! The full paper report: every table and figure computed into one struct,
//! with a text renderer used by the `repro` binary and the examples.

use crate::analysis::Analysis;
use crate::characterize::{self, CountryRow, IspRow};
use crate::dos::{self, DosSummary, SpikeEvent, VictimCountryRow};
use crate::malicious::{self, MalwareFindings, ThreatSummary};
use crate::query::{QueryApi, QueryContext};
use crate::scan::{self, ScanSummary, ServiceRow};
use crate::stats::{Correlation, MannWhitney};
use crate::udp::{self, UdpPortRow, UdpSummary};
use iotscope_devicedb::isp::IspRegistry;
use iotscope_devicedb::{ConsumerKind, CpsService, DeviceDb, Realm};
use iotscope_intel::family::FamilyResolver;
use iotscope_intel::{IntelIndex, MalwareDb, ThreatRepo};
use iotscope_net::ports::ServiceRegistry;
use std::fmt::Write as _;

/// Intelligence inputs for the Section V parts of the report.
#[derive(Debug, Clone, Copy)]
pub struct ReportIntel<'a> {
    /// The threat repository.
    pub threats: &'a ThreatRepo,
    /// The malware database.
    pub malware: &'a MalwareDb,
    /// The hash→family resolver.
    pub resolver: &'a FamilyResolver,
    /// Top devices per realm to explore (paper: 4,000).
    pub top_n_per_realm: usize,
}

/// Everything [`Report::build`] reads, as one borrowed context — so the
/// signature stays put as inputs grow, and call sites name what they
/// pass.
#[derive(Debug, Clone, Copy)]
pub struct ReportContext<'a> {
    /// The aggregation to report on.
    pub analysis: &'a Analysis,
    /// The device inventory it was correlated against.
    pub db: &'a DeviceDb,
    /// ISP metadata for Tables I–II.
    pub isps: &'a IspRegistry,
    /// Section V intelligence inputs, if available.
    pub intel: Option<ReportIntel<'a>>,
}

/// Everything the paper reports, computed.
#[derive(Debug, Clone)]
pub struct Report {
    /// Compromised device counts `(consumer, cps)`.
    pub compromised: (usize, usize),
    /// Daily packet totals `(mean, std dev)` per realm
    /// `[all, consumer, cps]` (§IV's daily mean/σ statistics).
    pub daily_packets: [(f64, f64); 3],
    /// Flows and packets from sources outside the inventory, filtered out
    /// by correlation.
    pub unmatched: (u64, u64),
    /// Total packets from compromised devices.
    pub total_packets: u64,
    /// Countries hosting compromised devices.
    pub countries: usize,
    /// Fig 1a rows (top deployment countries).
    pub fig1a: Vec<CountryRow>,
    /// Fig 1b rows (top compromised countries).
    pub fig1b: Vec<CountryRow>,
    /// Fig 2: cumulative discovered devices per day `(all, consumer, cps)`.
    pub fig2: Vec<(usize, usize, usize)>,
    /// Fig 3: compromised consumer kinds.
    pub fig3: Vec<(ConsumerKind, usize, f64)>,
    /// Table I: top consumer ISPs.
    pub table1: Vec<IspRow>,
    /// Table II: top CPS ISPs.
    pub table2: Vec<IspRow>,
    /// Table III: top CPS services.
    pub table3: Vec<(CpsService, usize, f64)>,
    /// Fig 4: `[realm][TCP,UDP,ICMP]` percentages.
    pub fig4: [[f64; 3]; 2],
    /// §IV Mann–Whitney: per-device packets, CPS vs consumer.
    pub realm_packet_test: Option<MannWhitney>,
    /// UDP summary (§IV-A).
    pub udp_summary: UdpSummary,
    /// Table IV rows.
    pub table4: Vec<UdpPortRow>,
    /// Fig 5 Pearson (consumer ports↔destinations).
    pub udp_correlation: Option<Correlation>,
    /// DoS summary (§IV-B).
    pub dos_summary: DosSummary,
    /// Fig 7 spike events.
    pub dos_spikes: Vec<SpikeEvent>,
    /// §IV-B1 Mann–Whitney: hourly backscatter, consumer vs CPS.
    pub backscatter_test: Option<MannWhitney>,
    /// Fig 8 rows.
    pub fig8: Vec<VictimCountryRow>,
    /// Scan summary (§IV-C).
    pub scan_summary: ScanSummary,
    /// Table V rows.
    pub table5: Vec<ServiceRow>,
    /// Table V named-group coverage (paper: 93.3%).
    pub table5_coverage: f64,
    /// §IV-C Pearson: hourly scanners vs scan packets (≈ 0).
    pub scanners_correlation: Option<Correlation>,
    /// Section V results, when intel inputs were provided.
    pub threat_summary: Option<ThreatSummary>,
    /// Table VII results, when intel inputs were provided.
    pub malware_findings: Option<MalwareFindings>,
}

impl Report {
    /// Compute the full report from one borrowed [`ReportContext`].
    pub fn build(ctx: &ReportContext<'_>) -> Report {
        let ReportContext {
            analysis,
            db,
            isps,
            intel,
        } = *ctx;
        let registry = ServiceRegistry::standard();
        // Every aggregate the query surface serves is read through it, so
        // the daemon's endpoints and this report can never disagree.
        let api = QueryContext::batch(analysis, db, isps);
        let summary = api.summary();
        let (threat_summary, malware_findings) = match intel {
            Some(i) => {
                // The §V join now runs through the scoring engine: build
                // the streaming-lookup index, fold the finished analysis
                // once, and read both tables off the score table —
                // bit-identical to the old direct joins.
                let candidates = api.candidates(i.top_n_per_realm);
                let index = IntelIndex::build(i.threats, i.malware);
                let scores =
                    crate::score::ScoreTable::from_batch(analysis, db, &index, Default::default());
                (
                    Some(malicious::threat_summary(&scores, db, &index, &candidates)),
                    Some(malicious::malware_correlation(
                        &scores, i.malware, i.resolver,
                    )),
                )
            }
            None => (None, None),
        };
        let daily = |realm| {
            let days: Vec<f64> = analysis
                .daily_packet_totals(realm)
                .into_iter()
                .map(|d| d as f64)
                .collect();
            (crate::stats::mean(&days), crate::stats::std_dev(&days))
        };
        Report {
            compromised: (summary.consumer, summary.cps),
            daily_packets: [
                daily(None),
                daily(Some(Realm::Consumer)),
                daily(Some(Realm::Cps)),
            ],
            unmatched: (summary.unmatched_flows, summary.unmatched_packets),
            total_packets: summary.total_packets,
            countries: summary.countries,
            fig1a: characterize::country_deployment(db)
                .into_iter()
                .take(15)
                .collect(),
            fig1b: api.countries().into_iter().take(15).collect(),
            fig2: analysis.discovery_curve(),
            fig3: characterize::consumer_kind_breakdown(analysis, db),
            table1: api.isps(Realm::Consumer, 5),
            table2: api.isps(Realm::Cps, 5),
            table3: characterize::cps_service_breakdown(analysis, db)
                .into_iter()
                .take(10)
                .collect(),
            fig4: characterize::protocol_mix(analysis),
            realm_packet_test: characterize::realm_packet_test(analysis),
            udp_summary: udp::summary(analysis),
            table4: udp::top_ports(analysis, &registry, 10),
            udp_correlation: udp::ports_ips_correlation(analysis, Realm::Consumer),
            dos_summary: dos::summary(analysis, 1000),
            dos_spikes: dos::detect_spikes(analysis, 6.0),
            backscatter_test: dos::backscatter_realm_test(analysis),
            fig8: dos::victim_countries(analysis, db)
                .into_iter()
                .take(15)
                .collect(),
            scan_summary: scan::summary(analysis),
            table5: scan::protocol_table(analysis),
            table5_coverage: scan::named_coverage(analysis),
            scanners_correlation: scan::scanners_vs_packets_correlation(analysis),
            threat_summary,
            malware_findings,
        }
    }

    /// Render the report as readable text, one section per paper artifact.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(s, "==== iotscope report ====");
        let _ = writeln!(
            s,
            "compromised devices: {} ({} consumer / {} CPS), {} countries, {} packets",
            self.compromised.0 + self.compromised.1,
            self.compromised.0,
            self.compromised.1,
            self.countries,
            self.total_packets,
        );
        let _ = writeln!(
            s,
            "daily packets: mean={:.0} sd={:.0} (consumer {:.0}/{:.0}, cps {:.0}/{:.0}); {} noise flows filtered",
            self.daily_packets[0].0,
            self.daily_packets[0].1,
            self.daily_packets[1].0,
            self.daily_packets[1].1,
            self.daily_packets[2].0,
            self.daily_packets[2].1,
            self.unmatched.0,
        );

        let _ = writeln!(s, "\n-- Fig 1a: top countries by deployed IoT devices --");
        for r in &self.fig1a {
            let _ = writeln!(
                s,
                "{:<16} consumer={:<8} cps={:<8}",
                r.country.name(),
                r.consumer,
                r.cps
            );
        }
        let _ = writeln!(
            s,
            "\n-- Fig 1b: top countries by compromised IoT devices --"
        );
        for r in &self.fig1b {
            let pct = r.pct_compromised.unwrap_or(0.0);
            let _ = writeln!(
                s,
                "{:<16} consumer={:<7} cps={:<7} compromised={:.1}%",
                r.country.name(),
                r.consumer,
                r.cps,
                pct
            );
        }
        let _ = writeln!(s, "\n-- Fig 2: cumulative discovered devices per day --");
        let window = iotscope_net::time::AnalysisWindow::paper();
        for (d, (all, c, x)) in self.fig2.iter().enumerate() {
            let (y, mo, day, _) = window.start().plus(d as u64 * 24).civil();
            let _ = writeln!(
                s,
                "day {d} ({y:04}-{mo:02}-{day:02}): all={all} consumer={c} cps={x}"
            );
        }
        let _ = writeln!(s, "\n-- Fig 3: compromised consumer devices by type --");
        for (kind, n, pct) in &self.fig3 {
            let _ = writeln!(s, "{kind:<26} {n:>7} ({pct:.1}%)");
        }
        let _ = writeln!(s, "\n-- Table I: top ISPs, compromised consumer devices --");
        for r in &self.table1 {
            let _ = writeln!(
                s,
                "{:<20} {:<14} {:>6} ({:.1}%)",
                r.name, r.country, r.devices, r.pct
            );
        }
        let _ = writeln!(s, "\n-- Table II: top ISPs, compromised CPS devices --");
        for r in &self.table2 {
            let _ = writeln!(
                s,
                "{:<20} {:<14} {:>6} ({:.1}%)",
                r.name, r.country, r.devices, r.pct
            );
        }
        let _ = writeln!(
            s,
            "\n-- Table III: top CPS services among compromised devices --"
        );
        for (svc, n, pct) in &self.table3 {
            let _ = writeln!(s, "{:<28} {:>6} ({:.1}%)", svc.to_string(), n, pct);
        }
        let _ = writeln!(s, "\n-- Fig 4: protocol mix (% of all device traffic) --");
        for (r, name) in [(0usize, "Consumer"), (1, "CPS")] {
            let _ = writeln!(
                s,
                "{name:<9} TCP={:.1}% UDP={:.1}% ICMP={:.1}%",
                self.fig4[r][0], self.fig4[r][1], self.fig4[r][2]
            );
        }
        if let Some(mw) = &self.realm_packet_test {
            let _ = writeln!(
                s,
                "per-device packets CPS vs consumer: U={:.0} Z={:.2} p={:.2e}",
                mw.u, mw.z, mw.p_value
            );
        }

        let u = &self.udp_summary;
        let _ = writeln!(s, "\n-- §IV-A / Fig 5 / Table IV: UDP --");
        let _ = writeln!(
            s,
            "udp packets={} devices={} consumer pkt share={:.0}% device share={:.0}%",
            u.total_packets,
            u.devices,
            100.0 * u.consumer_packet_share,
            100.0 * u.consumer_device_share
        );
        let _ = writeln!(
            s,
            "hourly mean dsts: consumer={:.0} cps={:.0}; mean ports: consumer={:.0} cps={:.0}",
            u.consumer_mean_dsts, u.cps_mean_dsts, u.consumer_mean_ports, u.cps_mean_ports
        );
        if let Some(c) = &self.udp_correlation {
            let _ = writeln!(
                s,
                "consumer ports~destinations Pearson r={:.2} p={:.1e}",
                c.r, c.p_value
            );
        }
        for r in &self.table4 {
            let _ = writeln!(
                s,
                "{:<14}/{:<6} pkts={:<9} ({:.2}%) devices={}",
                r.label, r.port, r.packets, r.pct, r.devices
            );
        }

        let d = &self.dos_summary;
        let _ = writeln!(s, "\n-- §IV-B / Figs 6-8: backscatter --");
        let _ = writeln!(
            s,
            "victims={} (CPS {:.0}%), backscatter pkts={} (CPS {:.0}%), {:.1}% of traffic, heavy(>{})={}",
            d.victims,
            100.0 * d.cps_victim_share,
            d.packets,
            100.0 * d.cps_packet_share,
            100.0 * d.backscatter_traffic_share,
            d.heavy_threshold,
            d.heavy_victims
        );
        if let Some(mw) = &self.backscatter_test {
            let _ = writeln!(
                s,
                "hourly backscatter consumer vs CPS: U={:.0} Z={:.2} p={:.2e}",
                mw.u, mw.z, mw.p_value
            );
        }
        let _ = writeln!(s, "DoS spike intervals (dominant victim share):");
        for e in &self.dos_spikes {
            let _ = writeln!(
                s,
                "  interval {:<4} pkts={:<8} victim dev#{} share={:.0}%",
                e.interval,
                e.total,
                e.victim.0,
                100.0 * e.victim_share
            );
        }
        let _ = writeln!(
            s,
            "Fig 8: top countries by DoS victims / backscatter packets:"
        );
        for r in &self.fig8 {
            let _ = writeln!(
                s,
                "  {:<16} victims={:<4} (consumer {} / cps {}) pkts={}",
                r.country.name(),
                r.victims(),
                r.consumer_victims,
                r.cps_victims,
                r.packets
            );
        }

        let sc = &self.scan_summary;
        let _ = writeln!(s, "\n-- §IV-C / Fig 9 / Table V / Fig 10: scanning --");
        let _ = writeln!(
            s,
            "tcp scan pkts={} devices={} (consumer {:.0}%), hourly mean pkts consumer={:.0} cps={:.0}",
            sc.tcp_packets,
            sc.tcp_devices,
            100.0 * sc.consumer_device_share,
            sc.consumer_mean_packets,
            sc.cps_mean_packets
        );
        let _ = writeln!(
            s,
            "hourly mean ports consumer={:.0} cps={:.0}; icmp scan pkts={} from {} devices (consumer {:.0}%)",
            sc.consumer_mean_ports,
            sc.cps_mean_ports,
            sc.icmp_packets,
            sc.icmp_devices,
            100.0 * sc.icmp_consumer_packet_share
        );
        if let Some(c) = &self.scanners_correlation {
            let _ = writeln!(
                s,
                "scanners~packets Pearson r={:.2} p={:.2}",
                c.r, c.p_value
            );
        }
        let _ = writeln!(
            s,
            "Table V (named-group coverage {:.1}%):",
            self.table5_coverage
        );
        for r in &self.table5 {
            let _ = writeln!(
                s,
                "  {:<26} pkts={:<9} ({:>5.1}%) consumer={:>5.1}%/{:<5} cps={:>5.1}%/{}",
                r.label,
                r.packets,
                r.pct,
                r.consumer_pct,
                r.consumer_devices,
                r.cps_pct,
                r.cps_devices
            );
        }

        if let Some(t) = &self.threat_summary {
            let _ = writeln!(s, "\n-- §V-A / Table VI / Fig 11: threat repository --");
            let _ = writeln!(
                s,
                "explored={} flagged={} ({:.1}%), malware-linked: {} CPS / {} consumer",
                t.explored,
                t.flagged.len(),
                if t.explored == 0 {
                    0.0
                } else {
                    100.0 * t.flagged.len() as f64 / t.explored as f64
                },
                t.cps_malware_devices,
                t.consumer_malware_devices
            );
            for r in &t.rows {
                let _ = writeln!(
                    s,
                    "  {:<55} {:>5} ({:.1}%)",
                    r.category.to_string(),
                    r.devices,
                    r.pct
                );
            }
        }
        if let Some(m) = &self.malware_findings {
            let _ = writeln!(s, "\n-- §V-B / Table VII: malware families --");
            let _ = writeln!(
                s,
                "devices={} hashes={} domains={}",
                m.devices.len(),
                m.hashes.len(),
                m.domains.len()
            );
            for f in &m.families {
                let _ = writeln!(s, "  {f}");
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pipeline::{AnalysisPipeline, AnalyzeOptions};
    use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

    #[test]
    fn full_report_builds_and_renders() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(31));
        let traffic = built.scenario.generate();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let analysis = pipeline
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let candidates: Vec<_> = analysis.compromised_devices();
        let intel =
            IntelBuilder::new(IntelSynthConfig::paper(31)).build(&built.inventory.db, &candidates);
        let report = Report::build(&ReportContext {
            analysis: &analysis,
            db: &built.inventory.db,
            isps: &built.inventory.isps,
            intel: Some(ReportIntel {
                threats: &intel.threats,
                malware: &intel.malware,
                resolver: &intel.resolver,
                top_n_per_realm: 400,
            }),
        });
        assert!(report.compromised.0 > 0);
        assert!(report.compromised.1 > 0);
        assert!(!report.fig1b.is_empty());
        assert!(!report.table5.is_empty());
        assert!(report.threat_summary.is_some());
        assert!(report.malware_findings.is_some());

        let text = report.render();
        for needle in [
            "Fig 1a",
            "Fig 1b",
            "Fig 2",
            "Fig 3",
            "Table I:",
            "Table II:",
            "Table III:",
            "Fig 4",
            "Table IV",
            "Figs 6-8",
            "Table V",
            "Table VI",
            "Table VII",
        ] {
            assert!(text.contains(needle), "render missing {needle}");
        }
    }

    #[test]
    fn daily_stats_and_unmatched_are_populated() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(33));
        let traffic = built.scenario.generate();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let analysis = pipeline
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let report = Report::build(&ReportContext {
            analysis: &analysis,
            db: &built.inventory.db,
            isps: &built.inventory.isps,
            intel: None,
        });
        // Six days of traffic → positive daily means; consumer + cps means
        // roughly compose the overall mean.
        assert!(report.daily_packets[0].0 > 0.0);
        let composed = report.daily_packets[1].0 + report.daily_packets[2].0;
        let rel = (composed - report.daily_packets[0].0).abs() / report.daily_packets[0].0;
        assert!(rel < 1e-9, "consumer+cps should equal all: {rel}");
        // Noise was filtered.
        assert!(report.unmatched.0 > 0);
        let text = report.render();
        assert!(text.contains("daily packets: mean="));
        assert!(text.contains("noise flows filtered"));
    }

    #[test]
    fn report_without_intel_omits_section_v() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(32));
        let traffic: Vec<_> = (1..=12).map(|i| built.scenario.generate_hour(i)).collect();
        let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
        let analysis = pipeline
            .run(&traffic, &AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let report = Report::build(&ReportContext {
            analysis: &analysis,
            db: &built.inventory.db,
            isps: &built.inventory.isps,
            intel: None,
        });
        assert!(report.threat_summary.is_none());
        assert!(report.malware_findings.is_none());
        let text = report.render();
        assert!(!text.contains("Table VI"));
    }
}
