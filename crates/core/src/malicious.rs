//! Maliciousness analysis (Section V): the threat-repository join behind
//! Table VI and Fig 11, and the malware-database correlation behind
//! Table VII.
//!
//! Since the streaming refactor these are *thin reads* of a finished
//! [`ScoreTable`]: the actual join — intel
//! lookup per device, evidence accumulation — happens in
//! [`core::score`](crate::score), identically for batch and streaming
//! runs. The outputs here are bit-identical to the pre-refactor direct
//! joins (proptested in `tests/score_streaming.rs`).
//!
//! [`ScoreTable`]: crate::score::ScoreTable

use crate::analysis::Analysis;
use crate::classify::TrafficClass;
use crate::score::ScoreTable;
use crate::stats::Ecdf;
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_intel::family::FamilyResolver;
use iotscope_intel::{IntelIndex, MalwareDb, MalwareFamily, MalwareHash, ThreatCategory};
use std::collections::BTreeSet;

/// §V-A's exploration set: every DoS victim plus the top-`n` devices per
/// realm by generated scanning+UDP packets (the paper used n = 4,000 on
/// top of the 839 victims, totaling 8,839).
pub fn select_candidates(analysis: &Analysis, top_n_per_realm: usize) -> Vec<DeviceId> {
    let mut set: BTreeSet<DeviceId> = analysis.view().dos_victims().iter().copied().collect();
    for realm in [Realm::Consumer, Realm::Cps] {
        let mut devices: Vec<(u64, DeviceId)> = analysis
            .devices
            .rows()
            .filter(|o| o.realm == realm)
            .map(|o| (o.scan_packets() + o.packets(TrafficClass::Udp), o.device))
            .filter(|(pkts, _)| *pkts > 0)
            .collect();
        devices.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, id) in devices.into_iter().take(top_n_per_realm) {
            set.insert(id);
        }
    }
    set.into_iter().collect()
}

/// One row of Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreatRow {
    /// The category.
    pub category: ThreatCategory,
    /// Flagged devices carrying the category.
    pub devices: usize,
    /// Percentage of all flagged devices (categories overlap).
    pub pct: f64,
}

/// The Table VI join result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreatSummary {
    /// Devices explored against the repository.
    pub explored: usize,
    /// Devices with at least one event.
    pub flagged: Vec<DeviceId>,
    /// Per-category rows, Table VI order.
    pub rows: Vec<ThreatRow>,
    /// Flagged devices in CPS realms linked to malware (§V-A: 91).
    pub cps_malware_devices: usize,
    /// Flagged consumer devices linked to malware (§V-A: 26).
    pub consumer_malware_devices: usize,
}

/// Read the Table VI summary for `candidates` off a finished score
/// table. The category mask per device was resolved from the threat
/// repository when the device was first scored; unobserved candidates
/// (not in the table) fall back to a direct index lookup with the
/// pre-refactor default realm.
pub fn threat_summary(
    score: &ScoreTable,
    db: &DeviceDb,
    index: &IntelIndex,
    candidates: &[DeviceId],
) -> ThreatSummary {
    let mut flagged = Vec::new();
    let mut counts = [0usize; 6];
    let mut cps_malware = 0usize;
    let mut consumer_malware = 0usize;
    for id in candidates {
        let (mask, realm) = match score.get(*id) {
            Some(row) => (row.cat_mask, row.realm),
            None => (
                index.lookup(db.device(*id).ip).map_or(0, |h| h.cat_mask),
                Realm::Consumer,
            ),
        };
        if mask == 0 {
            continue;
        }
        flagged.push(*id);
        for (i, cat) in ThreatCategory::ALL.iter().enumerate() {
            if mask & cat.bit() != 0 {
                counts[i] += 1;
            }
        }
        if mask & ThreatCategory::Malware.bit() != 0 {
            match realm {
                Realm::Cps => cps_malware += 1,
                Realm::Consumer => consumer_malware += 1,
            }
        }
    }
    let n = flagged.len();
    let rows = ThreatCategory::ALL
        .iter()
        .enumerate()
        .map(|(i, cat)| ThreatRow {
            category: *cat,
            devices: counts[i],
            pct: if n == 0 {
                0.0
            } else {
                100.0 * counts[i] as f64 / n as f64
            },
        })
        .collect();
    ThreatSummary {
        explored: candidates.len(),
        flagged,
        rows,
        cps_malware_devices: cps_malware,
        consumer_malware_devices: consumer_malware,
    }
}

/// Fig 11: CDFs of total generated packets for (a) all explored devices
/// and (b) the repository-flagged subset, read off the score table.
pub fn packet_cdfs(score: &ScoreTable, candidates: &[DeviceId]) -> (Ecdf, Ecdf) {
    let mut all = Vec::with_capacity(candidates.len());
    let mut flagged = Vec::new();
    for id in candidates {
        let Some(row) = score.get(*id) else {
            continue;
        };
        let pkts = row.total_packets as f64;
        all.push(pkts);
        if row.cat_mask != 0 {
            flagged.push(pkts);
        }
    }
    (Ecdf::new(all), Ecdf::new(flagged))
}

/// The Table VII correlation result.
#[derive(Debug, Clone, PartialEq)]
pub struct MalwareFindings {
    /// Inferred devices contacted by at least one instrumented sample.
    pub devices: Vec<DeviceId>,
    /// Distinct sample hashes involved.
    pub hashes: Vec<MalwareHash>,
    /// Distinct domains associated with those samples.
    pub domains: Vec<String>,
    /// Families resolved from the hashes, Table VII's list.
    pub families: Vec<MalwareFamily>,
}

/// §V-B: read the malware correlation for **all** inferred devices off
/// a finished score table, then resolve the hashes to families.
///
/// Expects a [`normalize`](ScoreTable::normalize)d table so the device
/// list comes out in ascending id order (the pre-refactor iteration
/// order over `Analysis::compromised_devices`).
pub fn malware_correlation(
    score: &ScoreTable,
    malware: &MalwareDb,
    resolver: &FamilyResolver,
) -> MalwareFindings {
    let mut devices = Vec::new();
    let mut hashes: BTreeSet<MalwareHash> = BTreeSet::new();
    let mut domains: BTreeSet<String> = BTreeSet::new();
    for row in 0..score.len() {
        let samples = score.samples_at(row);
        if samples.is_empty() {
            continue;
        }
        devices.push(score.ids()[row]);
        for &r in samples {
            let report = &malware.reports()[r as usize];
            hashes.insert(report.sha256.clone());
            domains.extend(report.network.domains.iter().cloned());
        }
    }
    let families: BTreeSet<MalwareFamily> =
        hashes.iter().filter_map(|h| resolver.resolve(h)).collect();
    MalwareFindings {
        devices,
        hashes: hashes.into_iter().collect(),
        domains: domains.into_iter().collect(),
        families: families.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use crate::score::ScoreConfig;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, CpsService, IotDevice, IspId};
    use iotscope_intel::sandbox::{NetworkActivity, SandboxReport, SystemActivity};
    use iotscope_intel::{ThreatEvent, ThreatRepo};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices((1..=4u8).map(|i| IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::new(i, 0, 0, 1),
            profile: if i % 2 == 0 {
                DeviceProfile::Cps(vec![CpsService::ModbusTcp])
            } else {
                DeviceProfile::Consumer(ConsumerKind::Router)
            },
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }))
    }

    fn syn(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            23,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
    }

    fn bs(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 2),
            80,
            40000,
            TcpFlags::SYN | TcpFlags::ACK,
        )
        .with_packets(pkts)
    }

    fn analysis(dbv: &DeviceDb) -> Analysis {
        let mut an = Analyzer::new(dbv, 4);
        an.ingest_hour(&HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows: vec![
                syn([1, 0, 0, 1], 100),
                syn([3, 0, 0, 1], 5),
                bs([2, 0, 0, 1], 50),
                syn([4, 0, 0, 1], 30),
            ],
        });
        an.finish()
    }

    fn score(a: &Analysis, dbv: &DeviceDb, index: &IntelIndex) -> ScoreTable {
        ScoreTable::from_batch(a, dbv, index, ScoreConfig::default())
    }

    #[test]
    fn candidates_include_victims_and_top_scanners() {
        let dbv = db();
        let a = analysis(&dbv);
        // top 1 per realm + victims.
        let c = select_candidates(&a, 1);
        // Victim = device 2.0.0.1 (id 1). Top consumer = id 0 (100 pkts),
        // top CPS = id 3 (30 pkts).
        assert_eq!(c.len(), 3);
        assert!(c.contains(&DeviceId(1)));
        assert!(c.contains(&DeviceId(0)));
        assert!(c.contains(&DeviceId(3)));
        // Larger n brings in the small scanner too.
        assert_eq!(select_candidates(&a, 10).len(), 4);
    }

    #[test]
    fn threat_summary_counts_overlapping_categories() {
        let dbv = db();
        let a = analysis(&dbv);
        let mut repo = ThreatRepo::new();
        for (ip, cat) in [
            ([1u8, 0, 0, 1], ThreatCategory::Scanning),
            ([1, 0, 0, 1], ThreatCategory::Malware),
            ([2, 0, 0, 1], ThreatCategory::Scanning),
        ] {
            repo.add(ThreatEvent {
                ip: Ipv4Addr::from(ip),
                category: cat,
                source: "t".into(),
                reported_at: 0,
            });
        }
        let index = IntelIndex::build(&repo, &MalwareDb::new());
        let table = score(&a, &dbv, &index);
        let candidates = select_candidates(&a, 10);
        let s = threat_summary(&table, &dbv, &index, &candidates);
        assert_eq!(s.explored, 4);
        assert_eq!(s.flagged.len(), 2);
        let scanning = s
            .rows
            .iter()
            .find(|r| r.category == ThreatCategory::Scanning)
            .unwrap();
        assert_eq!(scanning.devices, 2);
        assert!((scanning.pct - 100.0).abs() < 1e-9);
        let malware = s
            .rows
            .iter()
            .find(|r| r.category == ThreatCategory::Malware)
            .unwrap();
        assert_eq!(malware.devices, 1);
        assert_eq!(s.consumer_malware_devices, 1);
        assert_eq!(s.cps_malware_devices, 0);
    }

    #[test]
    fn fig_11_cdfs() {
        let dbv = db();
        let a = analysis(&dbv);
        let mut repo = ThreatRepo::new();
        repo.add(ThreatEvent {
            ip: Ipv4Addr::new(1, 0, 0, 1),
            category: ThreatCategory::Scanning,
            source: "t".into(),
            reported_at: 0,
        });
        let index = IntelIndex::build(&repo, &MalwareDb::new());
        let table = score(&a, &dbv, &index);
        let candidates = select_candidates(&a, 10);
        let (all, flagged) = packet_cdfs(&table, &candidates);
        assert_eq!(all.len(), 4);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged.quantile(1.0), Some(100.0));
    }

    #[test]
    fn malware_correlation_resolves_families() {
        let dbv = db();
        let a = analysis(&dbv);
        let mut malware = MalwareDb::new();
        let h = MalwareHash::from_hex("cafe");
        malware.ingest(SandboxReport {
            sha256: h.clone(),
            network: NetworkActivity {
                contacted_ips: vec![Ipv4Addr::new(3, 0, 0, 1), Ipv4Addr::new(99, 9, 9, 9)],
                contacted_ports: vec![23],
                domains: vec!["c2.example".into()],
                payload_bytes: 10,
            },
            system: SystemActivity::default(),
        });
        let mut resolver = FamilyResolver::new();
        resolver.register(h, MalwareFamily::Ramnit);
        let index = IntelIndex::build(&ThreatRepo::new(), &malware);
        let table = score(&a, &dbv, &index);
        let f = malware_correlation(&table, &malware, &resolver);
        assert_eq!(f.devices, vec![DeviceId(2)]);
        assert_eq!(f.hashes.len(), 1);
        assert_eq!(f.domains, vec!["c2.example".to_string()]);
        assert_eq!(f.families, vec![MalwareFamily::Ramnit]);
    }

    #[test]
    fn empty_intel_yields_empty_findings() {
        let dbv = db();
        let a = analysis(&dbv);
        let index = IntelIndex::empty();
        let table = score(&a, &dbv, &index);
        let candidates = select_candidates(&a, 10);
        let s = threat_summary(&table, &dbv, &index, &candidates);
        assert!(s.flagged.is_empty());
        assert!(s.rows.iter().all(|r| r.devices == 0));
        let f = malware_correlation(&table, &MalwareDb::new(), &FamilyResolver::new());
        assert!(f.devices.is_empty());
        assert!(f.families.is_empty());
    }
}
