//! Maliciousness analysis (Section V): the threat-repository join behind
//! Table VI and Fig 11, and the malware-database correlation behind
//! Table VII.

use crate::analysis::Analysis;
use crate::classify::TrafficClass;
use crate::stats::Ecdf;
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_intel::family::FamilyResolver;
use iotscope_intel::{MalwareDb, MalwareFamily, MalwareHash, ThreatCategory, ThreatRepo};
use std::collections::BTreeSet;

/// §V-A's exploration set: every DoS victim plus the top-`n` devices per
/// realm by generated scanning+UDP packets (the paper used n = 4,000 on
/// top of the 839 victims, totaling 8,839).
pub fn select_candidates(analysis: &Analysis, top_n_per_realm: usize) -> Vec<DeviceId> {
    let mut set: BTreeSet<DeviceId> = analysis.view().dos_victims().iter().copied().collect();
    for realm in [Realm::Consumer, Realm::Cps] {
        let mut devices: Vec<(u64, DeviceId)> = analysis
            .devices
            .rows()
            .filter(|o| o.realm == realm)
            .map(|o| (o.scan_packets() + o.packets(TrafficClass::Udp), o.device))
            .filter(|(pkts, _)| *pkts > 0)
            .collect();
        devices.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        for (_, id) in devices.into_iter().take(top_n_per_realm) {
            set.insert(id);
        }
    }
    set.into_iter().collect()
}

/// One row of Table VI.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreatRow {
    /// The category.
    pub category: ThreatCategory,
    /// Flagged devices carrying the category.
    pub devices: usize,
    /// Percentage of all flagged devices (categories overlap).
    pub pct: f64,
}

/// The Table VI join result.
#[derive(Debug, Clone, PartialEq)]
pub struct ThreatSummary {
    /// Devices explored against the repository.
    pub explored: usize,
    /// Devices with at least one event.
    pub flagged: Vec<DeviceId>,
    /// Per-category rows, Table VI order.
    pub rows: Vec<ThreatRow>,
    /// Flagged devices in CPS realms linked to malware (§V-A: 91).
    pub cps_malware_devices: usize,
    /// Flagged consumer devices linked to malware (§V-A: 26).
    pub consumer_malware_devices: usize,
}

/// Join `candidates` against the threat repository (Table VI).
pub fn threat_summary(
    analysis: &Analysis,
    db: &DeviceDb,
    repo: &ThreatRepo,
    candidates: &[DeviceId],
) -> ThreatSummary {
    let mut flagged = Vec::new();
    let mut counts = [0usize; 6];
    let mut cps_malware = 0usize;
    let mut consumer_malware = 0usize;
    for id in candidates {
        let ip = db.device(*id).ip;
        let cats = repo.categories_for(ip);
        if cats.is_empty() {
            continue;
        }
        flagged.push(*id);
        for (i, cat) in ThreatCategory::ALL.iter().enumerate() {
            if cats.contains(cat) {
                counts[i] += 1;
            }
        }
        if cats.contains(&ThreatCategory::Malware) {
            match analysis
                .devices
                .get(*id)
                .map(|o| o.realm)
                .unwrap_or(Realm::Consumer)
            {
                Realm::Cps => cps_malware += 1,
                Realm::Consumer => consumer_malware += 1,
            }
        }
    }
    let n = flagged.len();
    let rows = ThreatCategory::ALL
        .iter()
        .enumerate()
        .map(|(i, cat)| ThreatRow {
            category: *cat,
            devices: counts[i],
            pct: if n == 0 {
                0.0
            } else {
                100.0 * counts[i] as f64 / n as f64
            },
        })
        .collect();
    ThreatSummary {
        explored: candidates.len(),
        flagged,
        rows,
        cps_malware_devices: cps_malware,
        consumer_malware_devices: consumer_malware,
    }
}

/// Fig 11: CDFs of total generated packets for (a) all explored devices
/// and (b) the repository-flagged subset.
pub fn packet_cdfs(
    analysis: &Analysis,
    db: &DeviceDb,
    repo: &ThreatRepo,
    candidates: &[DeviceId],
) -> (Ecdf, Ecdf) {
    let mut all = Vec::with_capacity(candidates.len());
    let mut flagged = Vec::new();
    for id in candidates {
        let Some(obs) = analysis.devices.get(*id) else {
            continue;
        };
        let pkts = obs.total_packets() as f64;
        all.push(pkts);
        if repo.is_flagged(db.device(*id).ip) {
            flagged.push(pkts);
        }
    }
    (Ecdf::new(all), Ecdf::new(flagged))
}

/// The Table VII correlation result.
#[derive(Debug, Clone, PartialEq)]
pub struct MalwareFindings {
    /// Inferred devices contacted by at least one instrumented sample.
    pub devices: Vec<DeviceId>,
    /// Distinct sample hashes involved.
    pub hashes: Vec<MalwareHash>,
    /// Distinct domains associated with those samples.
    pub domains: Vec<String>,
    /// Families resolved from the hashes, Table VII's list.
    pub families: Vec<MalwareFamily>,
}

/// §V-B: correlate **all** inferred devices against the malware database,
/// then resolve the hashes to families.
pub fn malware_correlation(
    analysis: &Analysis,
    db: &DeviceDb,
    malware: &MalwareDb,
    resolver: &FamilyResolver,
) -> MalwareFindings {
    let mut devices = Vec::new();
    let mut hashes: BTreeSet<MalwareHash> = BTreeSet::new();
    let mut domains: BTreeSet<String> = BTreeSet::new();
    for id in analysis.compromised_devices() {
        let ip = db.device(id).ip;
        let sample_hashes = malware.hashes_contacting(ip);
        if sample_hashes.is_empty() {
            continue;
        }
        devices.push(id);
        hashes.extend(sample_hashes);
        domains.extend(malware.domains_contacting(ip));
    }
    let families: BTreeSet<MalwareFamily> =
        hashes.iter().filter_map(|h| resolver.resolve(h)).collect();
    MalwareFindings {
        devices,
        hashes: hashes.into_iter().collect(),
        domains: domains.into_iter().collect(),
        families: families.into_iter().collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, CpsService, IotDevice, IspId};
    use iotscope_intel::sandbox::{NetworkActivity, SandboxReport, SystemActivity};
    use iotscope_intel::ThreatEvent;
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices((1..=4u8).map(|i| IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::new(i, 0, 0, 1),
            profile: if i % 2 == 0 {
                DeviceProfile::Cps(vec![CpsService::ModbusTcp])
            } else {
                DeviceProfile::Consumer(ConsumerKind::Router)
            },
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }))
    }

    fn syn(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            23,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
    }

    fn bs(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 2),
            80,
            40000,
            TcpFlags::SYN | TcpFlags::ACK,
        )
        .with_packets(pkts)
    }

    fn analysis(dbv: &DeviceDb) -> Analysis {
        let mut an = Analyzer::new(dbv, 4);
        an.ingest_hour(&HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows: vec![
                syn([1, 0, 0, 1], 100),
                syn([3, 0, 0, 1], 5),
                bs([2, 0, 0, 1], 50),
                syn([4, 0, 0, 1], 30),
            ],
        });
        an.finish()
    }

    #[test]
    fn candidates_include_victims_and_top_scanners() {
        let dbv = db();
        let a = analysis(&dbv);
        // top 1 per realm + victims.
        let c = select_candidates(&a, 1);
        // Victim = device 2.0.0.1 (id 1). Top consumer = id 0 (100 pkts),
        // top CPS = id 3 (30 pkts).
        assert_eq!(c.len(), 3);
        assert!(c.contains(&DeviceId(1)));
        assert!(c.contains(&DeviceId(0)));
        assert!(c.contains(&DeviceId(3)));
        // Larger n brings in the small scanner too.
        assert_eq!(select_candidates(&a, 10).len(), 4);
    }

    #[test]
    fn threat_summary_counts_overlapping_categories() {
        let dbv = db();
        let a = analysis(&dbv);
        let mut repo = ThreatRepo::new();
        for (ip, cat) in [
            ([1u8, 0, 0, 1], ThreatCategory::Scanning),
            ([1, 0, 0, 1], ThreatCategory::Malware),
            ([2, 0, 0, 1], ThreatCategory::Scanning),
        ] {
            repo.add(ThreatEvent {
                ip: Ipv4Addr::from(ip),
                category: cat,
                source: "t".into(),
                reported_at: 0,
            });
        }
        let candidates = select_candidates(&a, 10);
        let s = threat_summary(&a, &dbv, &repo, &candidates);
        assert_eq!(s.explored, 4);
        assert_eq!(s.flagged.len(), 2);
        let scanning = s
            .rows
            .iter()
            .find(|r| r.category == ThreatCategory::Scanning)
            .unwrap();
        assert_eq!(scanning.devices, 2);
        assert!((scanning.pct - 100.0).abs() < 1e-9);
        let malware = s
            .rows
            .iter()
            .find(|r| r.category == ThreatCategory::Malware)
            .unwrap();
        assert_eq!(malware.devices, 1);
        assert_eq!(s.consumer_malware_devices, 1);
        assert_eq!(s.cps_malware_devices, 0);
    }

    #[test]
    fn fig_11_cdfs() {
        let dbv = db();
        let a = analysis(&dbv);
        let mut repo = ThreatRepo::new();
        repo.add(ThreatEvent {
            ip: Ipv4Addr::new(1, 0, 0, 1),
            category: ThreatCategory::Scanning,
            source: "t".into(),
            reported_at: 0,
        });
        let candidates = select_candidates(&a, 10);
        let (all, flagged) = packet_cdfs(&a, &dbv, &repo, &candidates);
        assert_eq!(all.len(), 4);
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged.quantile(1.0), Some(100.0));
    }

    #[test]
    fn malware_correlation_resolves_families() {
        let dbv = db();
        let a = analysis(&dbv);
        let mut malware = MalwareDb::new();
        let h = MalwareHash::from_hex("cafe");
        malware.ingest(SandboxReport {
            sha256: h.clone(),
            network: NetworkActivity {
                contacted_ips: vec![Ipv4Addr::new(3, 0, 0, 1), Ipv4Addr::new(99, 9, 9, 9)],
                contacted_ports: vec![23],
                domains: vec!["c2.example".into()],
                payload_bytes: 10,
            },
            system: SystemActivity::default(),
        });
        let mut resolver = FamilyResolver::new();
        resolver.register(h, MalwareFamily::Ramnit);
        let f = malware_correlation(&a, &dbv, &malware, &resolver);
        assert_eq!(f.devices, vec![DeviceId(2)]);
        assert_eq!(f.hashes.len(), 1);
        assert_eq!(f.domains, vec!["c2.example".to_string()]);
        assert_eq!(f.families, vec![MalwareFamily::Ramnit]);
    }

    #[test]
    fn empty_intel_yields_empty_findings() {
        let dbv = db();
        let a = analysis(&dbv);
        let repo = ThreatRepo::new();
        let candidates = select_candidates(&a, 10);
        let s = threat_summary(&a, &dbv, &repo, &candidates);
        assert!(s.flagged.is_empty());
        assert!(s.rows.iter().all(|r| r.devices == 0));
        let f = malware_correlation(&a, &dbv, &MalwareDb::new(), &FamilyResolver::new());
        assert!(f.devices.is_empty());
        assert!(f.families.is_empty());
    }
}
