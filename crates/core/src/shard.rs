//! Device-space sharded parallel analysis (DESIGN.md §3e).
//!
//! The hour-partitioned pool carries one full-width [`Analyzer`] per
//! worker, so at paper scale the single-threaded merge of N 331k-row
//! device tables dominates and `analyze_store_parallel4` *loses* to
//! sequential. This module partitions the *device space* instead: a
//! [`ShardMap`] assigns every dense intern index to one contiguous
//! shard, each worker owns one shard's aggregates, and the final merge
//! is a concatenation of disjoint dense-index ranges
//! ([`DeviceTable::concat_from`]) plus a cheap scalar reduction.
//!
//! Two roles cooperate, and every pool worker plays both:
//!
//! * a **router** ([`ShardRouter`]) decodes whole hours (it is the
//!   [`FlowSink`] on the fused decode path), correlates each flow to a
//!   dense index, and fans compact [`RoutedFlow`] records out to shard
//!   owners. Destination-keyed per-hour distincts (dst IPs / dst ports)
//!   cannot be split by source device — the same destination shows up
//!   in several shards — so the router, which sees the whole hour,
//!   folds them into its own [`RouterPartial`]. Hours are disjoint
//!   across routers, so summing router partials is exact.
//! * a **shard owner** ([`ShardAccumulator`]) applies whole-hour
//!   batches of routed flows for its dense-index range. Everything
//!   keyed by source device — the device table, per-hour distinct
//!   device counts, per-service/per-port device sets, backscatter
//!   attribution — is shard-disjoint, so per-shard results sum or
//!   concatenate exactly.
//!
//! [`assemble`] folds router and shard partials into an [`Analysis`]
//! bit-identical to the sequential pass: per-shard tables are
//! normalized on their worker and concatenated in ascending shard
//! order, so the assembled table is already globally sorted and the
//! final [`DeviceTable::normalize`] is a no-op.
//!
//! [`Analyzer`]: crate::analysis::Analyzer
//! [`FlowSink`]: iotscope_net::store::FlowSink

use crate::analysis::{
    class_idx, merge_top_victim, realm_idx, Analysis, BackscatterInterval, PortScratch,
    RealmSeries, ServiceKey, ServiceStat, TOP5_SERVICES,
};
use crate::analysis::{DeviceSet, DeviceTable, PortStat};
use crate::classify::{classify, TrafficClass};
use crate::view::ViewCache;
use iotscope_devicedb::{DeviceDb, DeviceId, Realm, ShardMap};
use iotscope_net::flowtuple::FlowTuple;
use iotscope_net::ports::ScanService;
use iotscope_net::protocol::TransportProtocol;
use std::collections::{BTreeMap, HashMap, HashSet};
use std::ops::Range;

/// Realm lookup by [`realm_idx`] value.
const REALMS: [Realm; 2] = [Realm::Consumer, Realm::Cps];

/// `class_idx` values a [`RoutedFlow`] can carry (asserted against
/// [`class_idx`] in tests).
const CLASS_TCP_SCAN: u8 = 0;
const CLASS_BACKSCATTER: u8 = 2;
const CLASS_UDP: u8 = 3;

/// One correlated, classified flow, reduced to what a shard owner
/// needs: 16 bytes instead of a full `FlowTuple`. The destination
/// address is deliberately absent — destination-keyed distincts are the
/// router's job (see the module docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RoutedFlow {
    /// Dense intern index of the source device (== `DeviceId` value).
    pub dense: u32,
    /// Packets in the flow record.
    pub packets: u32,
    /// Destination port (drives per-service / per-UDP-port stats).
    pub dst_port: u16,
    /// [`class_idx`] of the classified flow.
    pub class: u8,
    /// [`realm_idx`] of the source device.
    pub realm: u8,
    /// Transport in Fig 4 order: ICMP 0, TCP 1, UDP 2.
    pub proto: u8,
}

/// The hour-disjoint aggregates a router accumulates while decoding:
/// destination-keyed per-hour distinct counts and unmatched-traffic
/// totals. Summing the partials of all routers is exact because each
/// hour is decoded by exactly one router.
#[derive(Debug, Clone)]
pub struct RouterPartial {
    /// Distinct UDP destination addresses per `[realm][interval]`.
    pub udp_dst_ips: [Vec<u64>; 2],
    /// Distinct UDP destination ports per `[realm][interval]`.
    pub udp_dst_ports: [Vec<u64>; 2],
    /// Distinct TCP-scan destination addresses per `[realm][interval]`.
    pub scan_dst_ips: [Vec<u64>; 2],
    /// Distinct TCP-scan destination ports per `[realm][interval]`.
    pub scan_dst_ports: [Vec<u64>; 2],
    /// Flows from sources outside the inventory.
    pub unmatched_flows: u64,
    /// Packets from unmatched sources.
    pub unmatched_packets: u64,
}

impl RouterPartial {
    fn new(hours: usize) -> Self {
        RouterPartial {
            udp_dst_ips: [vec![0; hours], vec![0; hours]],
            udp_dst_ports: [vec![0; hours], vec![0; hours]],
            scan_dst_ips: [vec![0; hours], vec![0; hours]],
            scan_dst_ports: [vec![0; hours], vec![0; hours]],
            unmatched_flows: 0,
            unmatched_packets: 0,
        }
    }
}

/// Correlates, classifies, and fans one hour of flows out to device
/// shards; the decode-side half of the sharded pipeline.
///
/// Call [`begin_hour`](Self::begin_hour), feed flow slices (directly or
/// as the `FlowSink` of a fused store decode), then
/// [`finish_hour`](Self::finish_hour) to commit the hour's
/// destination distincts and take the per-shard batches. Skipping
/// `finish_hour` (after a decode error) abandons the hour: nothing was
/// committed, and the next `begin_hour` clears the buffers.
#[derive(Debug)]
pub struct ShardRouter<'a> {
    db: &'a DeviceDb,
    hours: u32,
    map: ShardMap,
    idx: usize,
    in_hour: bool,
    /// Per-shard routed flows for the current hour.
    buffers: Vec<Vec<RoutedFlow>>,
    /// Per-hour destination-distinct scratch, mirroring the sequential
    /// analyzer's `HourScratch` destination half.
    udp_ips: [HashSet<u32>; 2],
    scan_ips: [HashSet<u32>; 2],
    udp_ports: [PortScratch; 2],
    scan_ports: [PortScratch; 2],
    /// Per-block correlation results from the sorted-column merge-join
    /// (batched `visit_block` path); capacity reused across blocks.
    corr: Vec<Option<(u32, Realm)>>,
    out: RouterPartial,
}

impl<'a> ShardRouter<'a> {
    /// A router over `db` for a window of `hours`, fanning out to
    /// `map.shards()` shards.
    pub fn new(db: &'a DeviceDb, hours: u32, map: ShardMap) -> Self {
        ShardRouter {
            db,
            hours,
            map,
            idx: 0,
            in_hour: false,
            buffers: (0..map.shards()).map(|_| Vec::new()).collect(),
            udp_ips: [HashSet::new(), HashSet::new()],
            scan_ips: [HashSet::new(), HashSet::new()],
            udp_ports: [PortScratch::new(), PortScratch::new()],
            scan_ports: [PortScratch::new(), PortScratch::new()],
            corr: Vec::new(),
            out: RouterPartial::new(hours as usize),
        }
    }

    /// Start routing the hour at `interval` (1-based).
    ///
    /// # Panics
    ///
    /// Panics if `interval` is outside the window.
    pub fn begin_hour(&mut self, interval: u32) {
        assert!(
            interval >= 1 && interval <= self.hours,
            "interval {interval} outside 1..={}",
            self.hours
        );
        self.idx = (interval - 1) as usize;
        self.in_hour = true;
        for r in 0..2 {
            self.udp_ips[r].clear();
            self.scan_ips[r].clear();
            self.udp_ports[r].clear();
            self.scan_ports[r].clear();
        }
        for b in &mut self.buffers {
            b.clear();
        }
    }

    /// Route one slice of the current hour's flows.
    pub fn route(&mut self, flows: &[FlowTuple]) {
        let index = self.db.correlation_index();
        self.fold(flows, |_, flow| index.correlate(flow.src_ip));
    }

    /// Shared routing fold: `correlated` supplies each flow's device
    /// correlation (per-record binary search from
    /// [`route`](Self::route), a precomputed merge-join column from the
    /// batched `visit_block`), keeping both paths bit-identical.
    fn fold(
        &mut self,
        flows: &[FlowTuple],
        mut correlated: impl FnMut(usize, &FlowTuple) -> Option<(u32, Realm)>,
    ) {
        debug_assert!(self.in_hour, "route() outside begin_hour/finish_hour");
        for (flow_i, flow) in flows.iter().enumerate() {
            let Some((dense, realm)) = correlated(flow_i, flow) else {
                self.out.unmatched_flows += 1;
                self.out.unmatched_packets += u64::from(flow.packets);
                continue;
            };
            let class = classify(flow);
            let r = realm_idx(realm);
            match class {
                TrafficClass::Udp => {
                    self.udp_ips[r].insert(u32::from(flow.dst_ip));
                    self.udp_ports[r].insert(flow.dst_port);
                }
                TrafficClass::TcpScan => {
                    self.scan_ips[r].insert(u32::from(flow.dst_ip));
                    self.scan_ports[r].insert(flow.dst_port);
                }
                _ => {}
            }
            let proto = match flow.protocol {
                TransportProtocol::Icmp => 0u8,
                TransportProtocol::Tcp => 1,
                TransportProtocol::Udp => 2,
            };
            self.buffers[self.map.shard_of(dense)].push(RoutedFlow {
                dense,
                packets: flow.packets,
                dst_port: flow.dst_port,
                class: class_idx(class) as u8,
                realm: r as u8,
                proto,
            });
        }
    }

    /// Commit the hour's destination distincts and take the per-shard
    /// batches (indexed by shard; possibly empty for quiet shards).
    ///
    /// # Panics
    ///
    /// Panics without a preceding [`begin_hour`](Self::begin_hour).
    pub fn finish_hour(&mut self) -> Vec<Vec<RoutedFlow>> {
        assert!(self.in_hour, "finish_hour without begin_hour");
        self.in_hour = false;
        let idx = self.idx;
        for r in 0..2 {
            self.out.udp_dst_ips[r][idx] += self.udp_ips[r].len() as u64;
            self.out.udp_dst_ports[r][idx] += self.udp_ports[r].len as u64;
            self.out.scan_dst_ips[r][idx] += self.scan_ips[r].len() as u64;
            self.out.scan_dst_ports[r][idx] += self.scan_ports[r].len as u64;
        }
        let shards = self.map.shards();
        std::mem::replace(&mut self.buffers, (0..shards).map(|_| Vec::new()).collect())
    }

    /// Finish routing and surrender the hour-disjoint aggregates.
    pub fn into_partial(self) -> RouterPartial {
        self.out
    }
}

impl iotscope_net::store::FlowSink for ShardRouter<'_> {
    fn on_flows(&mut self, flows: &[FlowTuple]) {
        self.route(flows);
    }

    /// Batched tier: one merge-join pass over the block's ascending
    /// `src_ip` column, then the shared fold routes the whole column
    /// run — bit-identical to per-record routing.
    fn visit_block(&mut self, block: &iotscope_net::store::ColumnBlock) {
        let index = self.db.correlation_index();
        let mut corr = std::mem::take(&mut self.corr);
        index.correlate_sorted_block(block.src_ip(), &mut corr);
        self.fold(block.flows(), |i, _| corr[i]);
        self.corr = corr;
    }
}

/// The device-keyed aggregates for one contiguous dense-index shard.
///
/// Apply whole-hour [`RoutedFlow`] batches with
/// [`apply_hour`](Self::apply_hour); each batch must contain *all* of
/// an hour's flows for this shard (the per-batch distinct-device and
/// backscatter-attribution scratch folds once per batch, exactly like
/// the sequential per-hour fold).
#[derive(Debug)]
pub struct ShardAccumulator {
    hours: u32,
    range: Range<u32>,
    devices: DeviceTable,
    protocol_packets: [[u64; 3]; 2],
    udp_packets: [Vec<u64>; 2],
    udp_devices: [Vec<u64>; 2],
    scan_packets: [Vec<u64>; 2],
    scan_devices: [Vec<u64>; 2],
    backscatter_hourly: [Vec<u64>; 2],
    backscatter_intervals: Vec<BackscatterInterval>,
    scan_services: BTreeMap<ServiceKey, ServiceStat>,
    top5_series: Vec<[u64; 5]>,
    udp_ports: HashMap<u16, PortStat>,
    /// Per-batch scratch: distinct devices this hour, per realm.
    udp_devs: [DeviceSet; 2],
    scan_devs: [DeviceSet; 2],
    /// Per-batch backscatter packets, indexed by `dense - range.start`.
    bs_counts: Vec<u64>,
    bs_touched: Vec<u32>,
}

impl ShardAccumulator {
    /// An empty accumulator for the dense-index `range` of a window of
    /// `hours`.
    pub fn new(hours: u32, range: Range<u32>) -> Self {
        let h = hours as usize;
        let span = range.len();
        ShardAccumulator {
            hours,
            devices: DeviceTable::new(),
            protocol_packets: [[0; 3]; 2],
            udp_packets: [vec![0; h], vec![0; h]],
            udp_devices: [vec![0; h], vec![0; h]],
            scan_packets: [vec![0; h], vec![0; h]],
            scan_devices: [vec![0; h], vec![0; h]],
            backscatter_hourly: [vec![0; h], vec![0; h]],
            backscatter_intervals: vec![BackscatterInterval::default(); h],
            scan_services: BTreeMap::new(),
            top5_series: vec![[0; 5]; h],
            udp_ports: HashMap::new(),
            udp_devs: [
                DeviceSet::with_capacity(range.end as usize),
                DeviceSet::with_capacity(range.end as usize),
            ],
            scan_devs: [
                DeviceSet::with_capacity(range.end as usize),
                DeviceSet::with_capacity(range.end as usize),
            ],
            bs_counts: vec![0; span],
            bs_touched: Vec::new(),
            range,
        }
    }

    /// Number of devices observed in this shard so far.
    pub fn device_count(&self) -> usize {
        self.devices.len()
    }

    /// Apply one whole-hour batch of routed flows for this shard.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is outside the window; debug builds also
    /// assert every flow is within the shard's dense range.
    pub fn apply_hour(&mut self, interval: u32, flows: &[RoutedFlow]) {
        assert!(
            interval >= 1 && interval <= self.hours,
            "interval {interval} outside 1..={}",
            self.hours
        );
        let idx = (interval - 1) as usize;
        let day = (interval - 1) / 24;
        for r in 0..2 {
            self.udp_devs[r].clear();
            self.scan_devs[r].clear();
        }
        for &off in &self.bs_touched {
            self.bs_counts[off as usize] = 0;
        }
        self.bs_touched.clear();

        for f in flows {
            debug_assert!(self.range.contains(&f.dense), "flow outside shard range");
            let id = DeviceId(f.dense);
            let r = f.realm as usize;
            let pkts = u64::from(f.packets);
            self.devices
                .observe(id, REALMS[r], f.class as usize, pkts, interval, day);
            self.protocol_packets[r][f.proto as usize] += pkts;
            match f.class {
                CLASS_UDP => {
                    self.udp_packets[r][idx] += pkts;
                    self.udp_devs[r].insert(id);
                    let port = self.udp_ports.entry(f.dst_port).or_default();
                    port.packets += pkts;
                    port.devices.insert(id);
                }
                CLASS_TCP_SCAN => {
                    self.scan_packets[r][idx] += pkts;
                    self.scan_devs[r].insert(id);
                    let key = match ScanService::from_port(f.dst_port) {
                        Some(svc) => ServiceKey::Named(svc),
                        None => ServiceKey::Other,
                    };
                    let stat = self.scan_services.entry(key).or_default();
                    stat.packets[r] += pkts;
                    stat.devices[r].insert(id);
                    if let ServiceKey::Named(svc) = key {
                        if let Some(pos) = TOP5_SERVICES.iter().position(|s| *s == svc) {
                            self.top5_series[idx][pos] += pkts;
                        }
                    }
                }
                CLASS_BACKSCATTER => {
                    self.backscatter_hourly[r][idx] += pkts;
                    let off = (f.dense - self.range.start) as usize;
                    if self.bs_counts[off] == 0 {
                        self.bs_touched.push(off as u32);
                    }
                    self.bs_counts[off] += pkts;
                }
                _ => {}
            }
        }

        for r in 0..2 {
            self.udp_devices[r][idx] += self.udp_devs[r].len() as u64;
            self.scan_devices[r][idx] += self.scan_devs[r].len() as u64;
        }
        // This shard's dominant backscatter victim for the hour; the
        // global per-hour victim is the merge of shard maxima (exact,
        // because the tie-break toward the smaller id is order-free).
        let slot = &mut self.backscatter_intervals[idx];
        let mut top: Option<(DeviceId, u64)> = None;
        let mut total = 0u64;
        for &off in &self.bs_touched {
            let cnt = self.bs_counts[off as usize];
            let id = DeviceId(self.range.start + off);
            total += cnt;
            if top.is_none_or(|(bd, bc)| cnt > bc || (cnt == bc && id < bd)) {
                top = Some((id, cnt));
            }
        }
        slot.total += total;
        merge_top_victim(&mut slot.top_victim, top);
    }

    /// Finish the shard: normalize the device table (on the worker, so
    /// the sort itself parallelizes across shards) and surrender the
    /// aggregates.
    pub fn finish(mut self) -> ShardPartial {
        self.devices.normalize();
        ShardPartial {
            devices: self.devices,
            protocol_packets: self.protocol_packets,
            udp_packets: self.udp_packets,
            udp_devices: self.udp_devices,
            scan_packets: self.scan_packets,
            scan_devices: self.scan_devices,
            backscatter_hourly: self.backscatter_hourly,
            backscatter_intervals: self.backscatter_intervals,
            scan_services: self.scan_services,
            top5_series: self.top5_series,
            udp_ports: self.udp_ports,
        }
    }
}

/// One shard's finished device-keyed aggregates, ready for
/// [`assemble`].
#[derive(Debug)]
pub struct ShardPartial {
    /// Per-device rows for this shard's dense range, sorted by id.
    pub devices: DeviceTable,
    /// Packets per `[realm][transport]` from this shard's devices.
    pub protocol_packets: [[u64; 3]; 2],
    /// UDP packets per `[realm][interval]`.
    pub udp_packets: [Vec<u64>; 2],
    /// Distinct UDP-emitting devices per `[realm][interval]`.
    pub udp_devices: [Vec<u64>; 2],
    /// TCP-scan packets per `[realm][interval]`.
    pub scan_packets: [Vec<u64>; 2],
    /// Distinct scanning devices per `[realm][interval]`.
    pub scan_devices: [Vec<u64>; 2],
    /// Backscatter packets per `[realm][interval]`.
    pub backscatter_hourly: [Vec<u64>; 2],
    /// Per-interval backscatter totals and this shard's top victim.
    pub backscatter_intervals: Vec<BackscatterInterval>,
    /// Table V statistics restricted to this shard's devices.
    pub scan_services: BTreeMap<ServiceKey, ServiceStat>,
    /// Fig 10 series from this shard's devices.
    pub top5_series: Vec<[u64; 5]>,
    /// Table IV statistics restricted to this shard's devices.
    pub udp_ports: HashMap<u16, PortStat>,
}

/// Fold router and shard partials into the final [`Analysis`].
///
/// `shards` must be in ascending shard order so the per-shard device
/// tables — each covering its own dense-index range and already sorted
/// — concatenate into a globally sorted table, making the final
/// normalize a no-op and the result bit-identical to a sequential run.
pub fn assemble(hours: u32, routers: Vec<RouterPartial>, shards: Vec<ShardPartial>) -> Analysis {
    let h = hours as usize;
    let mut devices = DeviceTable::new();
    let mut protocol_packets = [[0u64; 3]; 2];
    let mut udp = [RealmSeries::new(h), RealmSeries::new(h)];
    let mut tcp_scan = [RealmSeries::new(h), RealmSeries::new(h)];
    let mut backscatter_hourly = [vec![0u64; h], vec![0u64; h]];
    let mut backscatter_intervals = vec![BackscatterInterval::default(); h];
    let mut scan_services: BTreeMap<ServiceKey, ServiceStat> = BTreeMap::new();
    let mut top5_series = vec![[0u64; 5]; h];
    let mut udp_ports: HashMap<u16, PortStat> = HashMap::new();
    let mut unmatched_flows = 0u64;
    let mut unmatched_packets = 0u64;

    for rp in routers {
        for r in 0..2 {
            for i in 0..h {
                udp[r].dst_ips[i] += rp.udp_dst_ips[r][i];
                udp[r].dst_ports[i] += rp.udp_dst_ports[r][i];
                tcp_scan[r].dst_ips[i] += rp.scan_dst_ips[r][i];
                tcp_scan[r].dst_ports[i] += rp.scan_dst_ports[r][i];
            }
        }
        unmatched_flows += rp.unmatched_flows;
        unmatched_packets += rp.unmatched_packets;
    }

    for sp in shards {
        devices.concat_from(sp.devices);
        for r in 0..2 {
            for (dst, src) in protocol_packets[r].iter_mut().zip(sp.protocol_packets[r]) {
                *dst += src;
            }
            for (i, bs) in backscatter_hourly[r].iter_mut().enumerate().take(h) {
                udp[r].packets[i] += sp.udp_packets[r][i];
                udp[r].devices[i] += sp.udp_devices[r][i];
                tcp_scan[r].packets[i] += sp.scan_packets[r][i];
                tcp_scan[r].devices[i] += sp.scan_devices[r][i];
                *bs += sp.backscatter_hourly[r][i];
            }
        }
        for (i, slot) in sp.backscatter_intervals.into_iter().enumerate() {
            let cur = &mut backscatter_intervals[i];
            cur.total += slot.total;
            merge_top_victim(&mut cur.top_victim, slot.top_victim);
        }
        for (key, stat) in sp.scan_services {
            let cur = scan_services.entry(key).or_default();
            for r in 0..2 {
                cur.packets[r] += stat.packets[r];
                cur.devices[r].union_with(&stat.devices[r]);
            }
        }
        for (i, row) in sp.top5_series.into_iter().enumerate() {
            for (j, v) in row.into_iter().enumerate() {
                top5_series[i][j] += v;
            }
        }
        for (port, stat) in sp.udp_ports {
            let cur = udp_ports.entry(port).or_default();
            cur.packets += stat.packets;
            cur.devices.union_with(&stat.devices);
        }
    }

    // Ascending sorted shards concatenate already-sorted; this is a
    // no-op then, and a safety net for out-of-order callers otherwise.
    devices.normalize();
    Analysis {
        hours,
        devices,
        protocol_packets,
        udp,
        tcp_scan,
        backscatter_hourly,
        backscatter_intervals,
        scan_services,
        top5_series,
        udp_ports,
        unmatched_flows,
        unmatched_packets,
        cache: ViewCache::default(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, CpsService, IotDevice, IspId};
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    #[test]
    fn routed_class_codes_match_class_idx() {
        assert_eq!(CLASS_TCP_SCAN as usize, class_idx(TrafficClass::TcpScan));
        assert_eq!(
            CLASS_BACKSCATTER as usize,
            class_idx(TrafficClass::Backscatter)
        );
        assert_eq!(CLASS_UDP as usize, class_idx(TrafficClass::Udp));
    }

    fn db(n: u32) -> DeviceDb {
        DeviceDb::from_devices((0..n).map(|i| IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::from(0x0a00_0001u32 + i * 7),
            profile: if i % 2 == 0 {
                DeviceProfile::Consumer(ConsumerKind::Router)
            } else {
                DeviceProfile::Cps(vec![CpsService::ModbusTcp])
            },
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }))
    }

    /// A deterministic mixed-traffic hour touching every class.
    fn hour(db: &DeviceDb, interval: u32, seed: u64) -> HourTraffic {
        let mut s = seed;
        let mut next = move || {
            s = s
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            s >> 33
        };
        let devices: Vec<_> = db.iter().collect();
        let mut flows = Vec::new();
        for _ in 0..200 {
            let r = next();
            let src = if r % 5 == 0 {
                Ipv4Addr::from(0xc0a8_0001u32 + (r % 50) as u32) // noise
            } else {
                devices[(r % devices.len() as u64) as usize].ip
            };
            let dst = Ipv4Addr::from(0x2c00_0000u32 + (next() % 300) as u32);
            let dport = (next() % 4000) as u16;
            let pkts = (next() % 9 + 1) as u32;
            let flow = match next() % 4 {
                0 => FlowTuple::tcp(src, dst, 40000, dport, TcpFlags::SYN),
                1 => FlowTuple::tcp(src, dst, 80, dport, TcpFlags::SYN | TcpFlags::ACK),
                2 => FlowTuple::udp(src, dst, 5000, dport),
                _ => FlowTuple::icmp(src, dst, iotscope_net::protocol::IcmpType::EchoRequest),
            };
            flows.push(flow.with_packets(pkts));
        }
        HourTraffic {
            interval,
            hour: UnixHour::new(7000 + u64::from(interval)),
            flows,
        }
    }

    /// Route hours through R routers and S shards, apply batches, and
    /// assemble — must be bit-identical to the sequential analyzer.
    fn sharded(
        db: &DeviceDb,
        hours: u32,
        traffic: &[HourTraffic],
        routers: usize,
        shards: usize,
    ) -> Analysis {
        let map = ShardMap::new(db.len(), shards);
        let mut accs: Vec<ShardAccumulator> = (0..shards)
            .map(|s| ShardAccumulator::new(hours, map.range(s)))
            .collect();
        let mut parts = Vec::new();
        for w in 0..routers {
            let mut router = ShardRouter::new(db, hours, map);
            for h in traffic.iter().skip(w).step_by(routers) {
                router.begin_hour(h.interval);
                router.route(&h.flows);
                for (s, batch) in router.finish_hour().into_iter().enumerate() {
                    accs[s].apply_hour(h.interval, &batch);
                }
            }
            parts.push(router.into_partial());
        }
        assemble(hours, parts, accs.into_iter().map(|a| a.finish()).collect())
    }

    #[test]
    fn sharded_matches_sequential_across_shapes() {
        let db = db(37);
        let traffic: Vec<HourTraffic> = (1..=6).map(|i| hour(&db, i, 40 + u64::from(i))).collect();
        let mut seq = Analyzer::new(&db, 8);
        for h in &traffic {
            seq.ingest_hour(h);
        }
        let seq = seq.finish();
        for (routers, shards) in [(1, 1), (1, 4), (2, 3), (3, 8), (2, 64)] {
            let par = sharded(&db, 8, &traffic, routers, shards);
            assert_eq!(par, seq, "routers={routers} shards={shards}");
            assert_eq!(
                par.devices.ids(),
                seq.devices.ids(),
                "concatenated table must be sorted: routers={routers} shards={shards}"
            );
            assert_eq!(par.udp, seq.udp);
            assert_eq!(par.tcp_scan, seq.tcp_scan);
            assert_eq!(par.backscatter_intervals, seq.backscatter_intervals);
            assert_eq!(par.unmatched_flows, seq.unmatched_flows);
            assert_eq!(par.unmatched_packets, seq.unmatched_packets);
        }
    }

    #[test]
    fn abandoned_hour_leaves_no_distincts_or_batches() {
        // An hour abandoned mid-decode (no finish_hour) never reaches
        // the shards and commits no per-hour distincts; only the
        // unmatched totals — committed per flow, like the sequential
        // sink — retain it. The pipeline aborts the whole run on a
        // decode error, so that leak is never observable there.
        let db = db(9);
        let h1 = hour(&db, 1, 99);
        let map = ShardMap::new(db.len(), 2);
        let mut router = ShardRouter::new(&db, 4, map);
        router.begin_hour(2);
        router.route(&h1.flows);
        // …then route a clean hour.
        router.begin_hour(1);
        router.route(&h1.flows);
        let batches = router.finish_hour();
        let mut accs: Vec<ShardAccumulator> = (0..2)
            .map(|s| ShardAccumulator::new(4, map.range(s)))
            .collect();
        for (s, batch) in batches.into_iter().enumerate() {
            accs[s].apply_hour(1, &batch);
        }
        let got = assemble(
            4,
            vec![router.into_partial()],
            accs.into_iter().map(|a| a.finish()).collect(),
        );

        let mut seq = Analyzer::new(&db, 4);
        seq.ingest_hour(&HourTraffic {
            interval: 1,
            ..h1.clone()
        });
        let seq = seq.finish();
        assert_eq!(got.devices, seq.devices, "abandoned flows never applied");
        assert_eq!(got.udp, seq.udp, "no distincts committed for hour 2");
        assert_eq!(got.tcp_scan, seq.tcp_scan);
        assert_eq!(got.backscatter_intervals, seq.backscatter_intervals);
        assert_eq!(got.udp[0].dst_ips[1], 0);
        assert_eq!(got.unmatched_flows, 2 * seq.unmatched_flows);
        assert_eq!(got.unmatched_packets, 2 * seq.unmatched_packets);
    }
}
