//! The `iotscope` analysis pipeline — the paper's primary contribution.
//!
//! This crate reproduces the data-driven methodology of *"Inferring,
//! Characterizing, and Investigating Internet-Scale Malicious IoT Device
//! Activities: A Network Telescope Perspective"* (Torabi et al., DSN
//! 2018):
//!
//! 1. **Correlation** ([`analysis`]) — join darknet flowtuples against an
//!    IoT inventory to infer compromised devices (§III-B);
//! 2. **Classification** ([`mod@classify`]) — split their traffic into
//!    scanning, backscatter, and UDP (§IV);
//! 3. **Characterization** ([`characterize`], [`udp`], [`scan`], [`dos`])
//!    — the aggregates behind every figure and table of §III–§IV;
//! 4. **Maliciousness** ([`malicious`]) — the threat-repository and
//!    malware-database joins of §V;
//! 5. **Statistics** ([`stats`]) — Mann–Whitney U, Pearson correlation,
//!    and ECDFs, as used throughout the paper;
//! 6. **Orchestration** ([`pipeline`], [`report`]) — end-to-end runs and
//!    a renderer that prints every artifact.
//!
//! # Quickstart
//!
//! ```
//! use iotscope_core::pipeline::{AnalysisPipeline, AnalyzeOptions};
//! use iotscope_core::report::{Report, ReportContext};
//! use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
//!
//! // Simulate a darknet (substituting for the UCSD telescope data).
//! let built = PaperScenario::build(PaperScenarioConfig::tiny(7));
//! let traffic = built.scenario.generate();
//!
//! // Infer and characterize compromised IoT devices.
//! let pipeline = AnalysisPipeline::new(&built.inventory.db, 143);
//! let outcome = pipeline.run(&traffic, &AnalyzeOptions::new()).unwrap();
//! let report = Report::build(&ReportContext {
//!     analysis: &outcome.analysis,
//!     db: &built.inventory.db,
//!     isps: &built.inventory.isps,
//!     intel: None,
//! });
//! assert!(report.compromised.0 + report.compromised.1 > 0);
//! ```

#![forbid(unsafe_code)]

pub mod analysis;
pub mod attribution;
pub mod behavior;
pub mod botnet;
pub mod characterize;
pub mod classify;
pub mod diff;
pub mod dos;
pub mod fingerprint;
pub mod malicious;
pub mod pipeline;
pub mod query;
pub mod report;
pub mod scan;
pub mod score;
pub mod shard;
pub mod stats;
pub mod stream;
pub mod table;
pub mod taxonomy;
pub mod udp;
pub mod view;

pub use analysis::{Analysis, Analyzer};
pub use classify::{classify, TrafficClass};
pub use pipeline::{
    AnalysisOutcome, AnalysisPipeline, AnalysisSource, AnalyzeOptions, ParallelMode, StoreReadStats,
};
pub use query::{DeviceDetail, QueryApi, QueryContext, RealmStats, Summary};
pub use report::{Report, ReportContext, ReportIntel};
pub use score::{Escalation, ScoreConfig, ScoreEngine, ScoreRow, ScoreTable, Severity};
pub use table::{DeviceObservation, DeviceSet, DeviceTable};
pub use view::AnalysisView;
