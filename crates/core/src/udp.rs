//! UDP traffic analysis (§IV-A): the hourly series of Fig 5, the top-port
//! table of Table IV, and the ports↔destinations correlation.

use crate::analysis::{realm_idx, Analysis, RealmSeries};
use crate::stats::{pearson, Correlation};
use iotscope_devicedb::Realm;
use iotscope_net::ports::ServiceRegistry;
use iotscope_net::protocol::TransportProtocol;

/// One row of Table IV.
#[derive(Debug, Clone, PartialEq)]
pub struct UdpPortRow {
    /// Destination port.
    pub port: u16,
    /// Service label (`"Not Assigned"` for unregistered ports).
    pub label: &'static str,
    /// UDP packets to the port.
    pub packets: u64,
    /// Percentage of all UDP packets.
    pub pct: f64,
    /// Number of devices that targeted the port.
    pub devices: usize,
}

/// Table IV: the top-`n` UDP destination ports by packets.
pub fn top_ports(analysis: &Analysis, registry: &ServiceRegistry, n: usize) -> Vec<UdpPortRow> {
    let total: u64 = analysis.udp_ports.values().map(|p| p.packets).sum();
    let mut rows: Vec<UdpPortRow> = analysis
        .udp_ports
        .iter()
        .map(|(port, stat)| UdpPortRow {
            port: *port,
            label: registry.label(TransportProtocol::Udp, *port),
            packets: stat.packets,
            pct: if total == 0 {
                0.0
            } else {
                100.0 * stat.packets as f64 / total as f64
            },
            devices: stat.devices.len(),
        })
        .collect();
    rows.sort_by(|a, b| b.packets.cmp(&a.packets).then(a.port.cmp(&b.port)));
    rows.truncate(n);
    rows
}

/// Number of distinct UDP destination ports observed.
pub fn distinct_ports(analysis: &Analysis) -> usize {
    analysis.udp_ports.len()
}

/// The hourly UDP series of one realm (Fig 5a/5b).
pub fn hourly(analysis: &Analysis, realm: Realm) -> &RealmSeries {
    &analysis.udp[realm_idx(realm)]
}

/// §IV-A1's Pearson correlation between hourly targeted ports and hourly
/// targeted destination addresses for one realm (consumer: r = 0.95).
pub fn ports_ips_correlation(analysis: &Analysis, realm: Realm) -> Option<Correlation> {
    let s = hourly(analysis, realm);
    let ports: Vec<f64> = s.dst_ports.iter().map(|v| *v as f64).collect();
    let ips: Vec<f64> = s.dst_ips.iter().map(|v| *v as f64).collect();
    pearson(&ports, &ips)
}

/// Aggregate UDP facts (§IV-A1's headline numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UdpSummary {
    /// Total UDP packets from correlated devices.
    pub total_packets: u64,
    /// Devices that emitted UDP.
    pub devices: usize,
    /// Consumer share of UDP packets.
    pub consumer_packet_share: f64,
    /// Consumer share of UDP devices.
    pub consumer_device_share: f64,
    /// Hourly mean distinct destinations, consumer.
    pub consumer_mean_dsts: f64,
    /// Hourly mean distinct destinations, CPS.
    pub cps_mean_dsts: f64,
    /// Hourly mean distinct ports, consumer.
    pub consumer_mean_ports: f64,
    /// Hourly mean distinct ports, CPS.
    pub cps_mean_ports: f64,
}

/// Compute the UDP summary.
pub fn summary(analysis: &Analysis) -> UdpSummary {
    let consumer = &analysis.udp[0];
    let cps = &analysis.udp[1];
    let c_pkts: u64 = consumer.packets.iter().sum();
    let x_pkts: u64 = cps.packets.iter().sum();
    let total = c_pkts + x_pkts;
    let mut c_devs = 0usize;
    let mut devices = 0usize;
    for obs in analysis.devices.rows() {
        if obs.packets(crate::classify::TrafficClass::Udp) > 0 {
            devices += 1;
            if obs.realm == Realm::Consumer {
                c_devs += 1;
            }
        }
    }
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    UdpSummary {
        total_packets: total,
        devices,
        consumer_packet_share: if total == 0 {
            0.0
        } else {
            c_pkts as f64 / total as f64
        },
        consumer_device_share: if devices == 0 {
            0.0
        } else {
            c_devs as f64 / devices as f64
        },
        consumer_mean_dsts: mean(&consumer.dst_ips),
        cps_mean_dsts: mean(&cps.dst_ips),
        consumer_mean_ports: mean(&consumer.dst_ports),
        cps_mean_ports: mean(&cps.dst_ports),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{
        ConsumerKind, CountryCode, CpsService, DeviceDb, DeviceId, IotDevice, IspId,
    };
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices([
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(1, 0, 0, 1),
                profile: DeviceProfile::Consumer(ConsumerKind::Router),
                country: CountryCode::from_code("RU").unwrap(),
                isp: IspId(0),
            },
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(2, 0, 0, 1),
                profile: DeviceProfile::Cps(vec![CpsService::Mqtt]),
                country: CountryCode::from_code("CN").unwrap(),
                isp: IspId(1),
            },
        ])
    }

    fn udp(src: [u8; 4], dst_last: u8, port: u16, pkts: u32) -> FlowTuple {
        FlowTuple::udp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, dst_last),
            5000,
            port,
        )
        .with_packets(pkts)
    }

    fn analysis() -> Analysis {
        let db = Box::leak(Box::new(db()));
        let mut an = Analyzer::new(db, 4);
        an.ingest_hour(&HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows: vec![
                udp([1, 0, 0, 1], 1, 37547, 5),
                udp([1, 0, 0, 1], 2, 137, 2),
                udp([2, 0, 0, 1], 3, 37547, 3),
            ],
        });
        an.ingest_hour(&HourTraffic {
            interval: 3,
            hour: UnixHour::new(2),
            flows: vec![udp([1, 0, 0, 1], 4, 53, 1)],
        });
        an.finish()
    }

    #[test]
    fn top_ports_table_iv_shape() {
        let a = analysis();
        let reg = ServiceRegistry::standard();
        let rows = top_ports(&a, &reg, 10);
        assert_eq!(rows[0].port, 37547);
        assert_eq!(rows[0].packets, 8);
        assert_eq!(rows[0].devices, 2);
        assert_eq!(rows[0].label, "Not Assigned");
        assert!((rows[0].pct - 8.0 / 11.0 * 100.0).abs() < 1e-9);
        let netbios = rows.iter().find(|r| r.port == 137).unwrap();
        assert_eq!(netbios.label, "NetBIOS");
        assert_eq!(distinct_ports(&a), 3);
    }

    #[test]
    fn hourly_series_per_realm() {
        let a = analysis();
        let c = hourly(&a, Realm::Consumer);
        assert_eq!(c.packets, vec![7, 0, 1, 0]);
        assert_eq!(c.dst_ips, vec![2, 0, 1, 0]);
        assert_eq!(c.dst_ports, vec![2, 0, 1, 0]);
        let x = hourly(&a, Realm::Cps);
        assert_eq!(x.packets, vec![3, 0, 0, 0]);
    }

    #[test]
    fn summary_shares() {
        let a = analysis();
        let s = summary(&a);
        assert_eq!(s.total_packets, 11);
        assert_eq!(s.devices, 2);
        assert!((s.consumer_packet_share - 8.0 / 11.0).abs() < 1e-9);
        assert!((s.consumer_device_share - 0.5).abs() < 1e-9);
        assert!(s.consumer_mean_dsts > s.cps_mean_dsts);
    }

    #[test]
    fn correlation_requires_variation() {
        let a = analysis();
        // 4 intervals with variation → correlation defined.
        let c = ports_ips_correlation(&a, Realm::Consumer).unwrap();
        assert!(c.r > 0.9, "r = {}", c.r);
        // CPS has activity in one hour only; ports/ips vary identically.
        let x = ports_ips_correlation(&a, Realm::Cps);
        assert!(x.is_some());
    }

    #[test]
    fn empty_analysis_summary_is_zero() {
        let dbv = db();
        let a = Analyzer::new(&dbv, 4).finish();
        let s = summary(&a);
        assert_eq!(s.total_packets, 0);
        assert_eq!(s.devices, 0);
        assert_eq!(s.consumer_packet_share, 0.0);
        let reg = ServiceRegistry::standard();
        assert!(top_ports(&a, &reg, 10).is_empty());
    }
}
