//! Characterization aggregates: the inventory- and device-level tables and
//! figures of §III (Figs 1–3, Tables I–III) plus the traffic mix of Fig 4
//! and the CDFs of Fig 6.

use crate::analysis::{realm_idx, Analysis};
use crate::classify::TrafficClass;
use crate::stats::Ecdf;
use iotscope_devicedb::isp::IspRegistry;
use iotscope_devicedb::{ConsumerKind, CountryCode, CpsService, DeviceDb, IspId, Realm};
use std::collections::HashMap;

/// One row of a per-country ranking.
#[derive(Debug, Clone, PartialEq)]
pub struct CountryRow {
    /// The country.
    pub country: CountryCode,
    /// Consumer devices counted.
    pub consumer: usize,
    /// CPS devices counted.
    pub cps: usize,
    /// Percentage of compromised among this country's deployed devices
    /// (only set for compromised rankings; the Fig 1b line).
    pub pct_compromised: Option<f64>,
}

impl CountryRow {
    /// Consumer + CPS.
    pub fn total(&self) -> usize {
        self.consumer + self.cps
    }
}

/// Fig 1a: deployed devices per country, descending.
pub fn country_deployment(db: &DeviceDb) -> Vec<CountryRow> {
    let mut map: HashMap<CountryCode, (usize, usize)> = HashMap::new();
    for d in db.iter() {
        let e = map.entry(d.country).or_default();
        match d.realm() {
            Realm::Consumer => e.0 += 1,
            Realm::Cps => e.1 += 1,
        }
    }
    let mut rows: Vec<CountryRow> = map
        .into_iter()
        .map(|(country, (consumer, cps))| CountryRow {
            country,
            consumer,
            cps,
            pct_compromised: None,
        })
        .collect();
    rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.country.cmp(&b.country)));
    rows
}

/// Fig 1b: compromised devices per country, descending, with the
/// percent-compromised line (compromised / deployed in that country).
pub fn compromised_by_country(analysis: &Analysis, db: &DeviceDb) -> Vec<CountryRow> {
    let deployed = db.count_by_country(None);
    let mut map: HashMap<CountryCode, (usize, usize)> = HashMap::new();
    for obs in analysis.devices.rows() {
        let d = db.device(obs.device);
        let e = map.entry(d.country).or_default();
        match obs.realm {
            Realm::Consumer => e.0 += 1,
            Realm::Cps => e.1 += 1,
        }
    }
    let mut rows: Vec<CountryRow> = map
        .into_iter()
        .map(|(country, (consumer, cps))| {
            let total = consumer + cps;
            let pct = deployed
                .get(&country)
                .filter(|d| **d > 0)
                .map(|d| 100.0 * total as f64 / *d as f64);
            CountryRow {
                country,
                consumer,
                cps,
                pct_compromised: pct,
            }
        })
        .collect();
    rows.sort_by(|a, b| b.total().cmp(&a.total()).then(a.country.cmp(&b.country)));
    rows
}

/// Number of countries hosting at least one compromised device.
pub fn compromised_country_count(analysis: &Analysis, db: &DeviceDb) -> usize {
    analysis
        .devices
        .rows()
        .map(|o| db.device(o.device).country)
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Fig 3: compromised consumer devices by kind with percentages,
/// descending.
pub fn consumer_kind_breakdown(
    analysis: &Analysis,
    db: &DeviceDb,
) -> Vec<(ConsumerKind, usize, f64)> {
    let mut counts: HashMap<ConsumerKind, usize> = HashMap::new();
    let mut total = 0usize;
    for obs in analysis.devices.rows() {
        if obs.realm != Realm::Consumer {
            continue;
        }
        if let Some(kind) = db.device(obs.device).profile.consumer_kind() {
            *counts.entry(kind).or_default() += 1;
            total += 1;
        }
    }
    let mut rows: Vec<(ConsumerKind, usize, f64)> = ConsumerKind::ALL
        .into_iter()
        .map(|k| {
            let c = counts.get(&k).copied().unwrap_or(0);
            (k, c, percentage(c, total))
        })
        .collect();
    rows.sort_by_key(|r| std::cmp::Reverse(r.1));
    rows
}

/// Table III: compromised CPS devices per service (non-exclusive),
/// descending with percentages of the compromised CPS population.
pub fn cps_service_breakdown(analysis: &Analysis, db: &DeviceDb) -> Vec<(CpsService, usize, f64)> {
    let mut counts: HashMap<CpsService, usize> = HashMap::new();
    let mut cps_total = 0usize;
    for obs in analysis.devices.rows() {
        if obs.realm != Realm::Cps {
            continue;
        }
        cps_total += 1;
        if let Some(services) = db.device(obs.device).profile.cps_services() {
            for s in services {
                *counts.entry(*s).or_default() += 1;
            }
        }
    }
    let mut rows: Vec<(CpsService, usize, f64)> = counts
        .into_iter()
        .map(|(s, c)| (s, c, percentage(c, cps_total)))
        .collect();
    rows.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    rows
}

/// One row of an ISP ranking (Tables I and II).
#[derive(Debug, Clone, PartialEq)]
pub struct IspRow {
    /// The ISP.
    pub isp: IspId,
    /// Its display name.
    pub name: String,
    /// Its country name.
    pub country: String,
    /// Compromised devices hosted.
    pub devices: usize,
    /// Percentage of the realm's compromised population.
    pub pct: f64,
}

/// Tables I / II: the top-`n` ISPs hosting compromised devices of `realm`.
pub fn top_isps(
    analysis: &Analysis,
    db: &DeviceDb,
    isps: &IspRegistry,
    realm: Realm,
    n: usize,
) -> Vec<IspRow> {
    let mut counts: HashMap<IspId, usize> = HashMap::new();
    let mut total = 0usize;
    for obs in analysis.devices.rows() {
        if obs.realm != realm {
            continue;
        }
        total += 1;
        *counts.entry(db.device(obs.device).isp).or_default() += 1;
    }
    let mut rows: Vec<IspRow> = counts
        .into_iter()
        .map(|(isp, devices)| {
            let rec = isps.isp(isp);
            IspRow {
                isp,
                name: rec.name().to_owned(),
                country: rec.country().name().to_owned(),
                devices,
                pct: percentage(devices, total),
            }
        })
        .collect();
    rows.sort_by(|a, b| b.devices.cmp(&a.devices).then(a.name.cmp(&b.name)));
    rows.truncate(n);
    rows
}

/// Number of distinct ISPs hosting compromised devices of `realm`.
pub fn isp_count(analysis: &Analysis, db: &DeviceDb, realm: Realm) -> usize {
    analysis
        .devices
        .rows()
        .filter(|o| o.realm == realm)
        .map(|o| db.device(o.device).isp)
        .collect::<std::collections::HashSet<_>>()
        .len()
}

/// Fig 4: percentage of total device traffic per `[realm][transport]`,
/// transports ordered `[TCP, UDP, ICMP]` as in the figure.
pub fn protocol_mix(analysis: &Analysis) -> [[f64; 3]; 2] {
    let total: u64 = analysis
        .protocol_packets
        .iter()
        .flat_map(|r| r.iter())
        .sum();
    let mut out = [[0.0; 3]; 2];
    for (r, row) in out.iter_mut().enumerate() {
        // protocol_packets is [ICMP, TCP, UDP]; Fig 4 orders TCP, UDP, ICMP.
        row[0] = percentage_u64(analysis.protocol_packets[r][1], total);
        row[1] = percentage_u64(analysis.protocol_packets[r][2], total);
        row[2] = percentage_u64(analysis.protocol_packets[r][0], total);
    }
    out
}

/// Fig 6: CDFs of per-device scanning packets (over scanning devices) and
/// per-victim backscatter packets (over DoS victims).
pub fn packet_cdfs(analysis: &Analysis) -> (Ecdf, Ecdf) {
    let scans: Vec<f64> = analysis
        .devices
        .rows()
        .filter(|o| o.scan_packets() > 0)
        .map(|o| o.scan_packets() as f64)
        .collect();
    let backscatter: Vec<f64> = analysis
        .devices
        .rows()
        .filter(|o| o.packets(TrafficClass::Backscatter) > 0)
        .map(|o| o.packets(TrafficClass::Backscatter) as f64)
        .collect();
    (Ecdf::new(scans), Ecdf::new(backscatter))
}

/// §IV's per-device packet comparison: Mann–Whitney U of total packets,
/// CPS sample vs consumer sample.
pub fn realm_packet_test(analysis: &Analysis) -> Option<crate::stats::MannWhitney> {
    let mut samples: [Vec<f64>; 2] = [Vec::new(), Vec::new()];
    for obs in analysis.devices.rows() {
        samples[realm_idx(obs.realm)].push(obs.total_packets() as f64);
    }
    let [consumer, cps] = samples;
    crate::stats::mann_whitney_u(&cps, &consumer)
}

fn percentage(part: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

fn percentage_u64(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{DeviceId, IotDevice};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn cc(code: &str) -> CountryCode {
        CountryCode::from_code(code).unwrap()
    }

    fn device(ip: [u8; 4], code: &str, profile: DeviceProfile, isp: u32) -> IotDevice {
        IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::from(ip),
            profile,
            country: cc(code),
            isp: IspId(isp),
        }
    }

    fn test_db() -> DeviceDb {
        DeviceDb::from_devices([
            device(
                [1, 0, 0, 1],
                "RU",
                DeviceProfile::Consumer(ConsumerKind::Router),
                0,
            ),
            device(
                [1, 0, 0, 2],
                "RU",
                DeviceProfile::Consumer(ConsumerKind::IpCamera),
                0,
            ),
            device(
                [1, 0, 0, 3],
                "US",
                DeviceProfile::Consumer(ConsumerKind::Printer),
                1,
            ),
            device(
                [1, 0, 0, 4],
                "CN",
                DeviceProfile::Cps(vec![CpsService::EthernetIp, CpsService::ModbusTcp]),
                2,
            ),
            device(
                [1, 0, 0, 5],
                "CN",
                DeviceProfile::Cps(vec![CpsService::EthernetIp]),
                2,
            ),
            device(
                [1, 0, 0, 6],
                "US",
                DeviceProfile::Consumer(ConsumerKind::Router),
                1,
            ),
        ])
    }

    fn syn(src: [u8; 4]) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            23,
            TcpFlags::SYN,
        )
    }

    /// Everyone except 1.0.0.6 contacts the darknet.
    fn analysis(db: &DeviceDb) -> Analysis {
        let mut an = Analyzer::new(db, 24);
        let flows: Vec<FlowTuple> = (1..=5u8).map(|i| syn([1, 0, 0, i])).collect();
        an.ingest_hour(&HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows,
        });
        an.finish()
    }

    #[test]
    fn deployment_ranking_counts_realms() {
        let db = test_db();
        let rows = country_deployment(&db);
        assert_eq!(rows.len(), 3); // RU, US, CN each host 2 devices.
        assert!(rows.iter().all(|r| r.total() == 2));
        let ru = rows.iter().find(|r| r.country == cc("RU")).unwrap();
        assert_eq!(ru.consumer, 2);
        assert_eq!(ru.cps, 0);
        let cn = rows.iter().find(|r| r.country == cc("CN")).unwrap();
        assert_eq!(cn.cps, 2);
    }

    #[test]
    fn compromised_ranking_and_pct() {
        let db = test_db();
        let a = analysis(&db);
        let rows = compromised_by_country(&a, &db);
        let ru = rows.iter().find(|r| r.country == cc("RU")).unwrap();
        assert_eq!(ru.total(), 2);
        assert_eq!(ru.pct_compromised, Some(100.0));
        let us = rows.iter().find(|r| r.country == cc("US")).unwrap();
        assert_eq!(us.total(), 1);
        assert_eq!(us.pct_compromised, Some(50.0));
        assert_eq!(compromised_country_count(&a, &db), 3);
    }

    #[test]
    fn kind_breakdown_percentages() {
        let db = test_db();
        let a = analysis(&db);
        let rows = consumer_kind_breakdown(&a, &db);
        let total: usize = rows.iter().map(|r| r.1).sum();
        assert_eq!(total, 3);
        let pct_sum: f64 = rows.iter().map(|r| r.2).sum();
        assert!((pct_sum - 100.0).abs() < 1e-9);
        assert_eq!(rows[0].1, 1); // all kinds have 1 here except zeros at end
        assert_eq!(rows.last().unwrap().1, 0);
    }

    #[test]
    fn cps_services_non_exclusive() {
        let db = test_db();
        let a = analysis(&db);
        let rows = cps_service_breakdown(&a, &db);
        let enip = rows.iter().find(|r| r.0 == CpsService::EthernetIp).unwrap();
        assert_eq!(enip.1, 2);
        assert!((enip.2 - 100.0).abs() < 1e-9); // 2 of 2 CPS devices
        let modbus = rows.iter().find(|r| r.0 == CpsService::ModbusTcp).unwrap();
        assert_eq!(modbus.1, 1);
        // Sorted descending.
        assert!(rows[0].1 >= rows[1].1);
    }

    #[test]
    fn top_isps_ranks_and_percentages() {
        let db = test_db();
        let a = analysis(&db);
        let isps = IspRegistry::bootstrap("44.0.0.0/8".parse().unwrap());
        let rows = top_isps(&a, &db, &isps, Realm::Consumer, 5);
        assert!(!rows.is_empty());
        assert_eq!(rows[0].devices, 2); // IspId(0) hosts both RU consumer devices
        assert!((rows[0].pct - 66.6667).abs() < 0.01);
        assert_eq!(isp_count(&a, &db, Realm::Consumer), 2);
        assert_eq!(isp_count(&a, &db, Realm::Cps), 1);
    }

    #[test]
    fn protocol_mix_sums_to_100() {
        let db = test_db();
        let a = analysis(&db);
        let mix = protocol_mix(&a);
        let sum: f64 = mix.iter().flat_map(|r| r.iter()).sum();
        assert!((sum - 100.0).abs() < 1e-9);
        // All traffic here is consumer+cps TCP.
        assert!(mix[0][0] > 0.0);
        assert_eq!(mix[0][1], 0.0);
    }

    #[test]
    fn packet_cdfs_cover_scanners_and_victims() {
        let db = test_db();
        let a = analysis(&db);
        let (scan, bs) = packet_cdfs(&a);
        assert_eq!(scan.len(), 5);
        assert!(bs.is_empty()); // no backscatter in this toy analysis
    }

    #[test]
    fn realm_test_needs_both_samples() {
        let db = test_db();
        let a = analysis(&db);
        let mw = realm_packet_test(&a).unwrap();
        assert_eq!(mw.n1, 2); // cps
        assert_eq!(mw.n2, 3); // consumer
    }

    #[test]
    fn empty_analysis_yields_empty_tables() {
        let db = test_db();
        let a = Analyzer::new(&db, 4).finish();
        assert!(compromised_by_country(&a, &db).is_empty());
        assert!(cps_service_breakdown(&a, &db).is_empty());
        assert!(realm_packet_test(&a).is_none());
        let mix = protocol_mix(&a);
        assert_eq!(mix, [[0.0; 3]; 2]);
    }
}
