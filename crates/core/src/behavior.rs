//! Per-device behavioral feature extraction.
//!
//! §VI and §VII of the paper sketch three follow-ups that all need richer
//! per-source features than the aggregate analysis keeps: fuzzy
//! fingerprinting of unindexed IoT devices, malware attribution, and
//! botnet clustering. This module makes one extra pass over the traffic
//! and produces a [`BehaviorVector`] per source — scanned-port histogram,
//! hourly activity series, protocol mix, and TTL profile — for both
//! inventory devices and unmatched sources.

use crate::classify::{classify, TrafficClass};
use iotscope_devicedb::{DeviceDb, DeviceId};
use iotscope_net::protocol::TransportProtocol;
use iotscope_telescope::HourTraffic;
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Behavioral features of one traffic source.
#[derive(Debug, Clone, PartialEq)]
pub struct BehaviorVector {
    /// Source address.
    pub ip: Ipv4Addr,
    /// Matched inventory device, if any.
    pub device: Option<DeviceId>,
    /// Packets per scanned TCP destination port (scan class only).
    pub scan_ports: BTreeMap<u16, u64>,
    /// Packets per hourly interval (1-based index − 1), all classes.
    pub hourly: Vec<u64>,
    /// Packets per transport `[ICMP, TCP, UDP]`.
    pub protocol: [u64; 3],
    /// Packets per traffic class (indexed by [`crate::analysis::class_idx`]).
    pub class: [u64; 5],
    /// Sum and count of observed TTLs (for the mean TTL fingerprint).
    ttl_sum: u64,
    /// Number of flows.
    pub flows: u64,
}

impl BehaviorVector {
    fn new(ip: Ipv4Addr, device: Option<DeviceId>, hours: usize) -> Self {
        BehaviorVector {
            ip,
            device,
            scan_ports: BTreeMap::new(),
            hourly: vec![0; hours],
            protocol: [0; 3],
            class: [0; 5],
            ttl_sum: 0,
            flows: 0,
        }
    }

    /// Total packets from the source.
    pub fn total_packets(&self) -> u64 {
        self.protocol.iter().sum()
    }

    /// Mean observed TTL (0 when no flows).
    pub fn mean_ttl(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.ttl_sum as f64 / self.flows as f64
        }
    }

    /// The scanned ports sorted by descending packet count.
    pub fn top_ports(&self, n: usize) -> Vec<u16> {
        let mut v: Vec<(u16, u64)> = self.scan_ports.iter().map(|(p, c)| (*p, *c)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(n);
        v.into_iter().map(|(p, _)| p).collect()
    }

    /// Cosine similarity of two scanned-port histograms (0 when either is
    /// empty).
    pub fn port_cosine(&self, other: &BehaviorVector) -> f64 {
        cosine(&self.scan_ports, &other.scan_ports)
    }

    /// Jaccard similarity of the scanned-port *sets*.
    pub fn port_jaccard(&self, other: &BehaviorVector) -> f64 {
        if self.scan_ports.is_empty() && other.scan_ports.is_empty() {
            return 0.0;
        }
        let inter = self
            .scan_ports
            .keys()
            .filter(|p| other.scan_ports.contains_key(*p))
            .count();
        let union = self.scan_ports.len() + other.scan_ports.len() - inter;
        inter as f64 / union as f64
    }

    /// Pearson correlation of the hourly activity series; `None` when
    /// either series is constant (e.g. perfectly steady scanners).
    pub fn activity_correlation(&self, other: &BehaviorVector) -> Option<f64> {
        let xs: Vec<f64> = self.hourly.iter().map(|v| *v as f64).collect();
        let ys: Vec<f64> = other.hourly.iter().map(|v| *v as f64).collect();
        crate::stats::pearson(&xs, &ys).map(|c| c.r)
    }
}

/// Cosine similarity over sparse `port → count` histograms.
pub fn cosine(a: &BTreeMap<u16, u64>, b: &BTreeMap<u16, u64>) -> f64 {
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let mut dot = 0.0;
    for (p, ca) in a {
        if let Some(cb) = b.get(p) {
            dot += *ca as f64 * *cb as f64;
        }
    }
    let na: f64 = a.values().map(|c| (*c as f64).powi(2)).sum::<f64>().sqrt();
    let nb: f64 = b.values().map(|c| (*c as f64).powi(2)).sum::<f64>().sqrt();
    if na == 0.0 || nb == 0.0 {
        0.0
    } else {
        dot / (na * nb)
    }
}

/// Extract behavior vectors for every source in `traffic`.
///
/// Sources are keyed by address; matched devices carry their
/// [`DeviceId`]. `hours` is the window length (1-based interval indices
/// must fit).
pub fn extract(
    traffic: &[HourTraffic],
    db: &DeviceDb,
    hours: u32,
) -> HashMap<Ipv4Addr, BehaviorVector> {
    let mut out: HashMap<Ipv4Addr, BehaviorVector> = HashMap::new();
    for hour in traffic {
        assert!(
            hour.interval >= 1 && hour.interval <= hours,
            "interval {} outside 1..={hours}",
            hour.interval
        );
        let idx = (hour.interval - 1) as usize;
        for flow in &hour.flows {
            let entry = out.entry(flow.src_ip).or_insert_with(|| {
                BehaviorVector::new(
                    flow.src_ip,
                    db.lookup_ip(flow.src_ip).map(|d| d.id),
                    hours as usize,
                )
            });
            let pkts = u64::from(flow.packets);
            entry.hourly[idx] += pkts;
            entry.flows += 1;
            entry.ttl_sum += u64::from(flow.ttl);
            let proto_i = match flow.protocol {
                TransportProtocol::Icmp => 0,
                TransportProtocol::Tcp => 1,
                TransportProtocol::Udp => 2,
            };
            entry.protocol[proto_i] += pkts;
            let class = classify(flow);
            entry.class[crate::analysis::class_idx(class)] += pkts;
            if class == TrafficClass::TcpScan {
                *entry.scan_ports.entry(flow.dst_port).or_insert(0) += pkts;
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, IotDevice, IspId};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;

    fn db() -> DeviceDb {
        DeviceDb::from_devices([IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::new(1, 0, 0, 1),
            profile: DeviceProfile::Consumer(ConsumerKind::Router),
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }])
    }

    fn syn(src: [u8; 4], port: u16, pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            port,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
        .with_ttl(60)
    }

    fn hour(interval: u32, flows: Vec<FlowTuple>) -> HourTraffic {
        HourTraffic {
            interval,
            hour: UnixHour::new(u64::from(interval)),
            flows,
        }
    }

    #[test]
    fn extract_builds_port_histograms_and_series() {
        let db = db();
        let traffic = vec![
            hour(1, vec![syn([1, 0, 0, 1], 23, 3), syn([1, 0, 0, 1], 80, 1)]),
            hour(3, vec![syn([1, 0, 0, 1], 23, 2), syn([9, 9, 9, 9], 445, 5)]),
        ];
        let vecs = extract(&traffic, &db, 4);
        assert_eq!(vecs.len(), 2);
        let dev = &vecs[&Ipv4Addr::new(1, 0, 0, 1)];
        assert_eq!(dev.device, Some(DeviceId(0)));
        assert_eq!(dev.scan_ports[&23], 5);
        assert_eq!(dev.scan_ports[&80], 1);
        assert_eq!(dev.hourly, vec![4, 0, 2, 0]);
        assert_eq!(dev.protocol, [0, 6, 0]);
        assert_eq!(dev.total_packets(), 6);
        assert_eq!(dev.top_ports(1), vec![23]);
        assert!((dev.mean_ttl() - 60.0).abs() < 1e-9);
        let noise = &vecs[&Ipv4Addr::new(9, 9, 9, 9)];
        assert_eq!(noise.device, None);
        assert_eq!(noise.scan_ports[&445], 5);
    }

    #[test]
    fn backscatter_does_not_pollute_scan_ports() {
        let db = db();
        let bs = FlowTuple::tcp(
            Ipv4Addr::new(1, 0, 0, 1),
            Ipv4Addr::new(44, 0, 0, 2),
            80,
            50000,
            TcpFlags::SYN | TcpFlags::ACK,
        );
        let vecs = extract(&[hour(1, vec![bs])], &db, 4);
        let dev = &vecs[&Ipv4Addr::new(1, 0, 0, 1)];
        assert!(dev.scan_ports.is_empty());
        assert_eq!(
            dev.class[crate::analysis::class_idx(TrafficClass::Backscatter)],
            1
        );
    }

    #[test]
    fn similarity_measures() {
        let db = db();
        let traffic = vec![hour(
            1,
            vec![
                syn([1, 0, 0, 1], 23, 4),
                syn([1, 0, 0, 1], 2323, 4),
                syn([9, 9, 9, 9], 23, 4),
                syn([9, 9, 9, 9], 2323, 4),
                syn([8, 8, 8, 8], 445, 9),
            ],
        )];
        let vecs = extract(&traffic, &db, 4);
        let a = &vecs[&Ipv4Addr::new(1, 0, 0, 1)];
        let b = &vecs[&Ipv4Addr::new(9, 9, 9, 9)];
        let c = &vecs[&Ipv4Addr::new(8, 8, 8, 8)];
        assert!((a.port_cosine(b) - 1.0).abs() < 1e-9);
        assert!((a.port_jaccard(b) - 1.0).abs() < 1e-9);
        assert_eq!(a.port_cosine(c), 0.0);
        assert_eq!(a.port_jaccard(c), 0.0);
    }

    #[test]
    fn activity_correlation_requires_variance() {
        let db = db();
        // Two sources active in the same two hours correlate; a constant
        // one yields None.
        let traffic = vec![
            hour(
                1,
                vec![syn([1, 0, 0, 1], 23, 10), syn([9, 9, 9, 9], 23, 20)],
            ),
            hour(2, vec![syn([8, 8, 8, 8], 445, 1)]),
            hour(
                3,
                vec![syn([1, 0, 0, 1], 23, 10), syn([9, 9, 9, 9], 23, 20)],
            ),
        ];
        let vecs = extract(&traffic, &db, 4);
        let a = &vecs[&Ipv4Addr::new(1, 0, 0, 1)];
        let b = &vecs[&Ipv4Addr::new(9, 9, 9, 9)];
        let r = a.activity_correlation(b).unwrap();
        assert!(r > 0.99, "r = {r}");
    }

    #[test]
    fn cosine_edge_cases() {
        let empty = BTreeMap::new();
        let mut one = BTreeMap::new();
        one.insert(23u16, 5u64);
        assert_eq!(cosine(&empty, &one), 0.0);
        assert_eq!(cosine(&empty, &empty), 0.0);
        assert!((cosine(&one, &one) - 1.0).abs() < 1e-9);
    }
}
