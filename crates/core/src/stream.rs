//! Near-real-time streaming analysis (§VI).
//!
//! The paper's operational follow-up: "we are currently working to
//! automate the devised methodologies in this work to index, in near
//! real-time, unsolicited Internet-scale IoT devices." This module wraps
//! the batch [`Analyzer`] in an hour-by-hour streaming interface that
//! emits **alerts** as each hour arrives:
//!
//! * [`Alert::NewDevices`] — previously-unseen IoT devices contacted the
//!   telescope (the live version of Fig 2's discovery curve);
//! * [`Alert::DosSpike`] — backscatter jumped above its trailing
//!   baseline, attributed to the dominant victim (live Fig 7 / §IV-B1);
//! * [`Alert::ScanSurge`] — one of the Fig 10 service groups surged
//!   (live SSH-burst / BackroomNet detection);
//! * [`Alert::PortSweep`] — a realm's hourly distinct-port count jumped
//!   (the live interval-119 camera detector).
//!
//! Baselines are trailing windows over past hours only, so detection is
//! causal: an alert at hour *t* uses nothing later than *t*.

use crate::analysis::{Analysis, Analyzer, TOP5_SERVICES};
use crate::score::{ScoreConfig, ScoreEngine, ScoreTable, Severity};
use iotscope_devicedb::{DeviceDb, DeviceId, Realm};
use iotscope_intel::IntelIndex;
use iotscope_net::ports::ScanService;
use iotscope_obs::{Counter, Registry};
use iotscope_telescope::HourTraffic;

/// Stream-layer metric handles (`stream.` prefix). Streaming is
/// single-threaded and causal, so every counter is
/// [stable](iotscope_obs::Stability::Stable).
#[derive(Debug, Clone)]
struct StreamMetrics {
    hours_pushed: Counter,
    alerts_new_devices: Counter,
    alerts_dos_spike: Counter,
    alerts_scan_surge: Counter,
    alerts_port_sweep: Counter,
    alerts_score_escalation: Counter,
}

impl StreamMetrics {
    fn register(registry: &Registry) -> Self {
        StreamMetrics {
            hours_pushed: registry.counter("stream.hours_pushed"),
            alerts_new_devices: registry.counter("stream.alerts.new_devices"),
            alerts_dos_spike: registry.counter("stream.alerts.dos_spike"),
            alerts_scan_surge: registry.counter("stream.alerts.scan_surge"),
            alerts_port_sweep: registry.counter("stream.alerts.port_sweep"),
            alerts_score_escalation: registry.counter("stream.alerts.score_escalation"),
        }
    }

    fn count(&self, alert: &Alert) {
        match alert {
            Alert::NewDevices { .. } => self.alerts_new_devices.inc(),
            Alert::DosSpike { .. } => self.alerts_dos_spike.inc(),
            Alert::ScanSurge { .. } => self.alerts_scan_surge.inc(),
            Alert::PortSweep { .. } => self.alerts_port_sweep.inc(),
            Alert::ScoreEscalation { .. } => self.alerts_score_escalation.inc(),
        }
    }
}

/// Streaming alert kinds.
#[derive(Debug, Clone, PartialEq)]
pub enum Alert {
    /// Previously-unseen devices appeared this hour.
    NewDevices {
        /// The hour's 1-based interval.
        interval: u32,
        /// How many devices were discovered.
        count: usize,
    },
    /// Backscatter spiked above baseline.
    DosSpike {
        /// The hour's interval.
        interval: u32,
        /// Total backscatter packets this hour.
        packets: u64,
        /// Spike factor over the trailing baseline.
        factor: f64,
        /// Dominant victim and its share of the hour's backscatter.
        victim: Option<(DeviceId, f64)>,
    },
    /// A Fig 10 service group surged above baseline.
    ScanSurge {
        /// The hour's interval.
        interval: u32,
        /// The surging service.
        service: ScanService,
        /// Scan packets to the service this hour.
        packets: u64,
        /// Surge factor over the trailing baseline.
        factor: f64,
    },
    /// A realm's distinct-port count jumped (wide port sweep).
    PortSweep {
        /// The hour's interval.
        interval: u32,
        /// The sweeping realm.
        realm: Realm,
        /// Distinct destination ports this hour.
        ports: u64,
        /// Jump factor over the trailing baseline.
        factor: f64,
    },
    /// A device's maliciousness score crossed into a new severity tier
    /// (the streaming §V join; requires
    /// [`with_intel`](StreamingAnalyzer::with_intel)). Deduplicated: a
    /// device re-alerts only when it crosses its *next* tier.
    ScoreEscalation {
        /// The hour's interval.
        interval: u32,
        /// The escalating device.
        device: DeviceId,
        /// The tier it reached.
        tier: Severity,
        /// Its point total at escalation.
        points: u32,
    },
}

impl Alert {
    /// The interval the alert fired at.
    pub fn interval(&self) -> u32 {
        match self {
            Alert::NewDevices { interval, .. }
            | Alert::DosSpike { interval, .. }
            | Alert::ScanSurge { interval, .. }
            | Alert::PortSweep { interval, .. }
            | Alert::ScoreEscalation { interval, .. } => *interval,
        }
    }
}

/// One alert as one log line — the format the CLI `watch` command
/// streams and the daemon's `/alerts` endpoint serves, so both logs
/// read identically.
impl std::fmt::Display for Alert {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Alert::NewDevices { interval, count } => {
                write!(f, "[h{interval:>3}] NEW   {count:>8} devices")
            }
            Alert::DosSpike {
                interval,
                packets,
                factor,
                victim,
            } => {
                let who = victim
                    .map(|(d, s)| format!("dev#{} ({:.0}%)", d.0, 100.0 * s))
                    .unwrap_or_default();
                write!(
                    f,
                    "[h{interval:>3}] DOS   {packets:>8} pkts  {factor:>6.1}x  {who}"
                )
            }
            Alert::ScanSurge {
                interval,
                service,
                packets,
                factor,
            } => {
                write!(
                    f,
                    "[h{interval:>3}] SURGE {packets:>8} pkts  {factor:>6.1}x  {service}"
                )
            }
            Alert::PortSweep {
                interval,
                realm,
                ports,
                factor,
            } => {
                write!(
                    f,
                    "[h{interval:>3}] SWEEP {ports:>8} ports {factor:>6.1}x  {realm}"
                )
            }
            Alert::ScoreEscalation {
                interval,
                device,
                tier,
                points,
            } => {
                write!(
                    f,
                    "[h{interval:>3}] SCORE {points:>8} pts   {:>8}  dev#{}",
                    tier.to_string(),
                    device.0
                )
            }
        }
    }
}

/// Detection thresholds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamConfig {
    /// Trailing-window length (hours) for baselines.
    pub window: usize,
    /// Hours of history required before spike alerts may fire.
    pub warmup: usize,
    /// Backscatter spike factor.
    pub dos_factor: f64,
    /// Service surge factor.
    pub surge_factor: f64,
    /// Distinct-port jump factor.
    pub sweep_factor: f64,
    /// Minimum packets for a DoS/scan alert (suppresses noise at tiny
    /// scales).
    pub min_packets: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            window: 24,
            warmup: 6,
            dos_factor: 5.0,
            surge_factor: 4.0,
            sweep_factor: 6.0,
            min_packets: 50,
        }
    }
}

/// Trailing mean over at most the last `window` pushed values.
#[derive(Debug, Clone)]
struct Trailing {
    window: usize,
    values: std::collections::VecDeque<f64>,
}

impl Trailing {
    fn new(window: usize) -> Self {
        Trailing {
            window: window.max(1),
            values: std::collections::VecDeque::new(),
        }
    }

    fn mean(&self) -> Option<f64> {
        if self.values.is_empty() {
            None
        } else {
            Some(self.values.iter().sum::<f64>() / self.values.len() as f64)
        }
    }

    fn len(&self) -> usize {
        self.values.len()
    }

    fn push(&mut self, v: f64) {
        self.values.push_back(v);
        if self.values.len() > self.window {
            self.values.pop_front();
        }
    }
}

/// Hour-by-hour streaming analyzer. Feed hours in arrival order with
/// [`push_hour`](Self::push_hour); call [`finish`](Self::finish) for the
/// final batch-equivalent [`Analysis`] plus the full alert log.
#[derive(Debug)]
pub struct StreamingAnalyzer<'a> {
    analyzer: Analyzer<'a>,
    db: &'a DeviceDb,
    config: StreamConfig,
    seen_devices: crate::table::DeviceSet,
    backscatter: Trailing,
    services: [Trailing; 5],
    ports: [Trailing; 2],
    score: Option<ScoreEngine<'a>>,
    alerts: Vec<Alert>,
    last_interval: Option<u32>,
    metrics: Option<StreamMetrics>,
}

impl<'a> StreamingAnalyzer<'a> {
    /// Create a streaming analyzer over `db` for a window of `hours`.
    pub fn new(db: &'a DeviceDb, hours: u32, config: StreamConfig) -> Self {
        StreamingAnalyzer {
            analyzer: Analyzer::new(db, hours),
            db,
            config,
            seen_devices: crate::table::DeviceSet::with_capacity(db.len()),
            backscatter: Trailing::new(config.window),
            services: std::array::from_fn(|_| Trailing::new(config.window)),
            ports: [Trailing::new(config.window), Trailing::new(config.window)],
            score: None,
            alerts: Vec::new(),
            last_interval: None,
            metrics: None,
        }
    }

    /// Attach the intel scoring stage: every pushed hour also folds the
    /// cumulative analysis into a [`ScoreEngine`] over `index`, and tier
    /// crossings surface as [`Alert::ScoreEscalation`]s.
    pub fn with_intel(mut self, index: &'a IntelIndex, config: ScoreConfig) -> Self {
        self.score = Some(ScoreEngine::new(self.db, index, config));
        self
    }

    /// Like [`new`](Self::new), but publishing `stream.hours_pushed`
    /// and per-kind `stream.alerts.*` counters into `registry` (and the
    /// inner analyzer's `analysis.*` counters with them).
    pub fn with_metrics(
        db: &'a DeviceDb,
        hours: u32,
        config: StreamConfig,
        registry: &Registry,
    ) -> Self {
        let mut s = Self::new(db, hours, config);
        s.analyzer = Analyzer::with_metrics(db, hours, registry);
        s.metrics = Some(StreamMetrics::register(registry));
        s
    }

    /// Ingest the next hour and return the alerts it raised.
    ///
    /// # Panics
    ///
    /// Panics if hours arrive out of order or outside the window.
    pub fn push_hour(&mut self, hour: &HourTraffic) -> Vec<Alert> {
        if let Some(last) = self.last_interval {
            assert!(
                hour.interval > last,
                "hours must arrive in order ({last} then {})",
                hour.interval
            );
        }
        self.last_interval = Some(hour.interval);
        self.analyzer.ingest_hour(hour);
        let snapshot = self.analyzer.peek();
        let idx = (hour.interval - 1) as usize;
        let mut new_alerts = Vec::new();

        // --- new-device discovery -----------------------------------------
        let mut discovered = 0usize;
        for obs in snapshot.devices.rows() {
            if obs.first_interval == hour.interval && self.seen_devices.insert(obs.device) {
                discovered += 1;
            }
        }
        if discovered > 0 {
            new_alerts.push(Alert::NewDevices {
                interval: hour.interval,
                count: discovered,
            });
        }

        // --- DoS spike ------------------------------------------------------
        let bs = snapshot.backscatter_intervals[idx].total;
        if let Some(mean) = self.backscatter.mean() {
            if self.backscatter.len() >= self.config.warmup
                && bs >= self.config.min_packets
                && bs as f64 > self.config.dos_factor * mean.max(1.0)
            {
                let victim = snapshot.backscatter_intervals[idx]
                    .top_victim
                    .map(|(d, p)| (d, p as f64 / bs as f64));
                new_alerts.push(Alert::DosSpike {
                    interval: hour.interval,
                    packets: bs,
                    factor: bs as f64 / mean.max(1.0),
                    victim,
                });
            }
        }
        self.backscatter.push(bs as f64);

        // --- service surges ---------------------------------------------------
        let row = snapshot.top5_series[idx];
        for (s, service) in TOP5_SERVICES.into_iter().enumerate() {
            let pkts = row[s];
            if let Some(mean) = self.services[s].mean() {
                if self.services[s].len() >= self.config.warmup
                    && pkts >= self.config.min_packets
                    && pkts as f64 > self.config.surge_factor * mean.max(1.0)
                {
                    new_alerts.push(Alert::ScanSurge {
                        interval: hour.interval,
                        service,
                        packets: pkts,
                        factor: pkts as f64 / mean.max(1.0),
                    });
                }
            }
            self.services[s].push(pkts as f64);
        }

        // --- port sweeps ------------------------------------------------------
        for (r, realm) in [(0usize, Realm::Consumer), (1, Realm::Cps)] {
            let ports = snapshot.tcp_scan[r].dst_ports[idx];
            if let Some(mean) = self.ports[r].mean() {
                if self.ports[r].len() >= self.config.warmup
                    && ports > 20
                    && ports as f64 > self.config.sweep_factor * mean.max(1.0)
                {
                    new_alerts.push(Alert::PortSweep {
                        interval: hour.interval,
                        realm,
                        ports,
                        factor: ports as f64 / mean.max(1.0),
                    });
                }
            }
            self.ports[r].push(ports as f64);
        }

        // --- intel scoring ----------------------------------------------------
        if let Some(engine) = &mut self.score {
            for esc in engine.fold(snapshot) {
                new_alerts.push(Alert::ScoreEscalation {
                    interval: hour.interval,
                    device: esc.device,
                    tier: esc.tier,
                    points: esc.points,
                });
            }
        }

        if let Some(m) = &self.metrics {
            m.hours_pushed.inc();
            for a in &new_alerts {
                m.count(a);
            }
        }
        self.alerts.extend(new_alerts.iter().cloned());
        new_alerts
    }

    /// All alerts raised so far.
    pub fn alerts(&self) -> &[Alert] {
        &self.alerts
    }

    /// The interval of the most recently pushed hour, if any.
    pub fn last_interval(&self) -> Option<u32> {
        self.last_interval
    }

    /// A structural clone of the analysis as of the last pushed hour —
    /// what the serve daemon publishes as one epoch's snapshot.
    ///
    /// [`finish`](Self::finish) only normalizes device-row order and
    /// resets the memo cache, and [`Analysis`] equality is
    /// row-order-insensitive, so this clone compares equal to a
    /// from-scratch batch analysis of exactly the hours pushed so far
    /// (the concurrent-reader property test holds the daemon to that).
    pub fn snapshot(&self) -> Analysis {
        self.analyzer.peek().clone()
    }

    /// The in-progress score table, if the intel stage is attached
    /// (first-seen row order until the run finishes).
    pub fn scores(&self) -> Option<&ScoreTable> {
        self.score.as_ref().map(|e| e.table())
    }

    /// Finish, returning the batch-equivalent analysis and the alert log.
    pub fn finish(self) -> (Analysis, Vec<Alert>) {
        let (analysis, alerts, _) = self.finish_with_scores();
        (analysis, alerts)
    }

    /// Finish, additionally handing over the normalized score table when
    /// the intel stage was attached. The table is bit-identical to
    /// [`ScoreTable::from_batch`] over the same hours (the streaming ≡
    /// batch contract, proptested in `tests/score_streaming.rs`).
    pub fn finish_with_scores(self) -> (Analysis, Vec<Alert>, Option<ScoreTable>) {
        (
            self.analyzer.finish(),
            self.alerts,
            self.score.map(ScoreEngine::finish),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_telescope::ground_truth::Role;
    use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};

    fn run() -> (
        iotscope_telescope::paper::BuiltScenario,
        Analysis,
        Vec<Alert>,
    ) {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(55));
        let mut stream = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default());
        for i in 1..=143 {
            let hour = built.scenario.generate_hour(i);
            stream.push_hour(&hour);
        }
        let (analysis, alerts) = stream.finish();
        (built, analysis, alerts)
    }

    #[test]
    fn streaming_matches_batch_analysis() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(56));
        let traffic = built.scenario.generate();
        let batch = crate::pipeline::AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &crate::pipeline::AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let mut stream = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default());
        for hour in &traffic {
            stream.push_hour(hour);
        }
        let (live, _) = stream.finish();
        // Full structural equality: every aggregate (observations,
        // protocol/udp/tcp series, backscatter, Table IV/V stats,
        // top5_series, unmatched counts) must match the batch path, so
        // streaming drift in any field fails here instead of hiding
        // behind a spot-check.
        assert_eq!(live, batch);
    }

    #[test]
    fn new_device_alerts_cover_every_device_once() {
        let (_, analysis, alerts) = run();
        let total: usize = alerts
            .iter()
            .filter_map(|a| match a {
                Alert::NewDevices { count, .. } => Some(*count),
                _ => None,
            })
            .sum();
        assert_eq!(total, analysis.device_count());
    }

    #[test]
    fn dos_spikes_fire_on_planted_episodes() {
        let (built, _, alerts) = run();
        let spike_intervals: Vec<u32> = alerts
            .iter()
            .filter_map(|a| match a {
                Alert::DosSpike { interval, .. } => Some(*interval),
                _ => None,
            })
            .collect();
        // The second big planted episode block (53..=56) must alert (the
        // 6..=8 block falls inside the warmup).
        assert!(
            spike_intervals.iter().any(|i| (53..=56).contains(i)),
            "spikes {spike_intervals:?}"
        );
        // Every alerted dominant victim is a planted victim.
        for a in &alerts {
            if let Alert::DosSpike {
                victim: Some((d, share)),
                ..
            } = a
            {
                assert!(built.truth.has_role(*d, Role::DosVictim));
                assert!(*share > 0.3);
            }
        }
    }

    #[test]
    fn ssh_bursts_raise_scan_surges() {
        let (_, _, alerts) = run();
        let ssh: Vec<u32> = alerts
            .iter()
            .filter_map(|a| match a {
                Alert::ScanSurge {
                    interval,
                    service: ScanService::Ssh,
                    ..
                } => Some(*interval),
                _ => None,
            })
            .collect();
        assert!(
            ssh.contains(&32) || ssh.contains(&69),
            "ssh surges at {ssh:?}"
        );
    }

    #[test]
    fn port_sweep_alert_at_interval_119() {
        let (_, _, alerts) = run();
        let sweeps: Vec<(u32, Realm)> = alerts
            .iter()
            .filter_map(|a| match a {
                Alert::PortSweep {
                    interval, realm, ..
                } => Some((*interval, *realm)),
                _ => None,
            })
            .collect();
        assert!(
            sweeps.contains(&(119, Realm::Consumer)),
            "sweeps {sweeps:?}"
        );
    }

    #[test]
    fn alerts_are_causal_and_ordered() {
        let (_, _, alerts) = run();
        let mut last = 0;
        for a in &alerts {
            assert!(a.interval() >= last);
            last = a.interval();
        }
    }

    #[test]
    fn gaps_in_the_hour_stream_are_tolerated() {
        // A telescope outage: hours 20..40 never arrive. Streaming keeps
        // working and later alerts still fire.
        let built = PaperScenario::build(PaperScenarioConfig::tiny(58));
        let mut stream = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default());
        for i in (1..=143u32).filter(|i| !(20..40).contains(i)) {
            stream.push_hour(&built.scenario.generate_hour(i));
        }
        let (analysis, alerts) = stream.finish();
        assert!(analysis.device_count() > 500);
        // The interval-119 port sweep still alerts after the gap.
        assert!(alerts
            .iter()
            .any(|a| matches!(a, Alert::PortSweep { interval: 119, .. })));
        // Nothing attributed to the missing hours.
        for i in 19..39usize {
            assert_eq!(analysis.tcp_scan[0].packets[i], 0);
        }
    }

    #[test]
    fn metrics_count_hours_and_alerts() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(59));
        let registry = Registry::new();
        let mut stream = StreamingAnalyzer::with_metrics(
            &built.inventory.db,
            143,
            StreamConfig::default(),
            &registry,
        );
        for i in 1..=48 {
            stream.push_hour(&built.scenario.generate_hour(i));
        }
        let (_, alerts) = stream.finish();
        let snap = registry.snapshot();
        assert_eq!(snap.counter("stream.hours_pushed"), Some(48));
        let counted = snap.counter("stream.alerts.new_devices").unwrap()
            + snap.counter("stream.alerts.dos_spike").unwrap()
            + snap.counter("stream.alerts.scan_surge").unwrap()
            + snap.counter("stream.alerts.port_sweep").unwrap()
            + snap.counter("stream.alerts.score_escalation").unwrap();
        assert_eq!(counted, alerts.len() as u64);
        // The inner analyzer's counters ride along.
        assert!(snap.counter("analysis.packets.consumer.tcp_scan").unwrap() > 0);
    }

    #[test]
    fn intel_stage_emits_deduped_escalations_and_batch_identical_scores() {
        use crate::score::{ScoreConfig, ScoreTable};
        use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
        use iotscope_intel::IntelIndex;

        let built = PaperScenario::build(PaperScenarioConfig::tiny(60));
        // Batch run first, to select candidates and synthesize intel
        // correlated with the scenario's ground truth.
        let traffic = built.scenario.generate();
        let batch = crate::pipeline::AnalysisPipeline::new(&built.inventory.db, 143)
            .run(&traffic, &crate::pipeline::AnalyzeOptions::new())
            .unwrap()
            .analysis;
        let candidates = crate::malicious::select_candidates(&batch, 200);
        let intel =
            IntelBuilder::new(IntelSynthConfig::paper(60)).build(&built.inventory.db, &candidates);
        let index = IntelIndex::build(&intel.threats, &intel.malware);
        let cfg = ScoreConfig::default();

        let mut stream = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default())
            .with_intel(&index, cfg);
        let mut mid_scores = 0usize;
        for hour in &traffic {
            stream.push_hour(hour);
            mid_scores = stream.scores().unwrap().len();
        }
        assert!(mid_scores > 0, "scores accumulate during the run");
        let (_, alerts, scores) = stream.finish_with_scores();
        let scores = scores.unwrap();

        // Escalations fired and never repeat a tier per device.
        let mut highest: std::collections::HashMap<DeviceId, Severity> =
            std::collections::HashMap::new();
        let mut escalations = 0usize;
        for a in &alerts {
            if let Alert::ScoreEscalation {
                device,
                tier,
                points,
                ..
            } = a
            {
                escalations += 1;
                let prev = highest.insert(*device, *tier);
                assert!(
                    prev.is_none_or(|p| *tier > p),
                    "dev#{} re-alerted at tier {tier} after {prev:?}",
                    device.0
                );
                assert_eq!(Severity::from_points(*points), *tier);
            }
        }
        assert!(escalations > 0, "flagged scenario must escalate someone");
        // Every alerted device's final tier matches its last escalation.
        for (device, tier) in &highest {
            assert_eq!(scores.get(*device).unwrap().tier, *tier);
        }

        // Streaming table ≡ one batch fold of the full analysis.
        let from_batch = ScoreTable::from_batch(&batch, &built.inventory.db, &index, cfg);
        assert_eq!(scores, from_batch);
    }

    #[test]
    fn score_escalation_alert_renders_and_orders() {
        let a = Alert::ScoreEscalation {
            interval: 7,
            device: DeviceId(42),
            tier: Severity::High,
            points: 5,
        };
        assert_eq!(a.interval(), 7);
        let line = a.to_string();
        assert!(line.contains("SCORE"), "{line}");
        assert!(line.contains("high"), "{line}");
        assert!(line.contains("dev#42"), "{line}");
    }

    #[test]
    #[should_panic(expected = "in order")]
    fn out_of_order_hours_rejected() {
        let built = PaperScenario::build(PaperScenarioConfig::tiny(57));
        let mut stream = StreamingAnalyzer::new(&built.inventory.db, 143, StreamConfig::default());
        stream.push_hour(&built.scenario.generate_hour(5));
        stream.push_hour(&built.scenario.generate_hour(4));
    }
}
