//! DoS / backscatter analysis (§IV-B): the Fig 7 hourly series and spike
//! attribution, the Fig 8 country rankings, and the realm comparison.

use crate::analysis::{realm_idx, Analysis};
use crate::classify::TrafficClass;
use crate::stats::{mann_whitney_u, MannWhitney};
use iotscope_devicedb::{CountryCode, DeviceDb, DeviceId, Realm};
use std::collections::HashMap;

/// A detected DoS episode: an interval dominated by one victim.
#[derive(Debug, Clone, PartialEq)]
pub struct SpikeEvent {
    /// 1-based interval index.
    pub interval: u32,
    /// Total backscatter packets in the interval.
    pub total: u64,
    /// The dominant victim.
    pub victim: DeviceId,
    /// The dominant victim's share of the interval's backscatter (0..=1).
    pub victim_share: f64,
}

/// Detect spike intervals: backscatter above `factor` × the hourly median,
/// attributed to the interval's dominant victim (§IV-B1's methodology).
pub fn detect_spikes(analysis: &Analysis, factor: f64) -> Vec<SpikeEvent> {
    let totals: Vec<u64> = analysis
        .backscatter_intervals
        .iter()
        .map(|b| b.total)
        .collect();
    let mut sorted = totals.clone();
    sorted.sort_unstable();
    let median = sorted[sorted.len() / 2] as f64;
    let mut out = Vec::new();
    for (i, slot) in analysis.backscatter_intervals.iter().enumerate() {
        if slot.total as f64 > factor * median.max(1.0) {
            if let Some((victim, pkts)) = slot.top_victim {
                out.push(SpikeEvent {
                    interval: i as u32 + 1,
                    total: slot.total,
                    victim,
                    victim_share: pkts as f64 / slot.total as f64,
                });
            }
        }
    }
    out
}

/// Hourly backscatter packets for one realm (Fig 7).
pub fn hourly(analysis: &Analysis, realm: Realm) -> &[u64] {
    &analysis.backscatter_hourly[realm_idx(realm)]
}

/// §IV-B1's Mann–Whitney comparison of hourly backscatter, CPS vs
/// consumer (the paper reports p < 0.0001, Z = −5.95 with consumer as the
/// first sample).
pub fn backscatter_realm_test(analysis: &Analysis) -> Option<MannWhitney> {
    let consumer: Vec<f64> = analysis.backscatter_hourly[0]
        .iter()
        .map(|v| *v as f64)
        .collect();
    let cps: Vec<f64> = analysis.backscatter_hourly[1]
        .iter()
        .map(|v| *v as f64)
        .collect();
    mann_whitney_u(&consumer, &cps)
}

/// One row of the Fig 8 country rankings.
#[derive(Debug, Clone, PartialEq)]
pub struct VictimCountryRow {
    /// The country.
    pub country: CountryCode,
    /// Consumer victims hosted.
    pub consumer_victims: usize,
    /// CPS victims hosted.
    pub cps_victims: usize,
    /// Backscatter packets generated from this country.
    pub packets: u64,
}

impl VictimCountryRow {
    /// Total victims.
    pub fn victims(&self) -> usize {
        self.consumer_victims + self.cps_victims
    }
}

/// Fig 8: per-country victim counts and backscatter packets. Sort by
/// `victims()` for Fig 8a or by `packets` for Fig 8b.
pub fn victim_countries(analysis: &Analysis, db: &DeviceDb) -> Vec<VictimCountryRow> {
    let mut map: HashMap<CountryCode, VictimCountryRow> = HashMap::new();
    for obs in analysis.devices.rows() {
        let bs = obs.packets(TrafficClass::Backscatter);
        if bs == 0 {
            continue;
        }
        let dev = db.device(obs.device);
        let row = map.entry(dev.country).or_insert_with(|| VictimCountryRow {
            country: dev.country,
            consumer_victims: 0,
            cps_victims: 0,
            packets: 0,
        });
        match obs.realm {
            Realm::Consumer => row.consumer_victims += 1,
            Realm::Cps => row.cps_victims += 1,
        }
        row.packets += bs;
    }
    let mut rows: Vec<VictimCountryRow> = map.into_values().collect();
    rows.sort_by(|a, b| {
        b.victims()
            .cmp(&a.victims())
            .then(a.country.cmp(&b.country))
    });
    rows
}

/// Aggregate backscatter facts (§IV-B's headline numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DosSummary {
    /// Inferred DoS victims.
    pub victims: usize,
    /// CPS share of the victims.
    pub cps_victim_share: f64,
    /// Total backscatter packets.
    pub packets: u64,
    /// CPS share of backscatter packets.
    pub cps_packet_share: f64,
    /// Backscatter share of all device traffic.
    pub backscatter_traffic_share: f64,
    /// Victims that generated ≥ 100k (scale-adjusted) of the heaviest
    /// packet counts — computed as victims above `heavy_threshold`.
    pub heavy_victims: usize,
    /// The threshold used for `heavy_victims`.
    pub heavy_threshold: u64,
}

/// Compute the DoS summary. `heavy_threshold` is the packet count above
/// which a victim counts as heavy (paper: 100,000 at full scale).
pub fn summary(analysis: &Analysis, heavy_threshold: u64) -> DosSummary {
    let mut victims = 0usize;
    let mut cps_victims = 0usize;
    let mut packets = 0u64;
    let mut cps_packets = 0u64;
    let mut heavy = 0usize;
    for obs in analysis.devices.rows() {
        let bs = obs.packets(TrafficClass::Backscatter);
        if bs == 0 {
            continue;
        }
        victims += 1;
        packets += bs;
        if obs.realm == Realm::Cps {
            cps_victims += 1;
            cps_packets += bs;
        }
        if bs >= heavy_threshold {
            heavy += 1;
        }
    }
    let total_traffic = analysis.total_packets();
    DosSummary {
        victims,
        cps_victim_share: if victims == 0 {
            0.0
        } else {
            cps_victims as f64 / victims as f64
        },
        packets,
        cps_packet_share: if packets == 0 {
            0.0
        } else {
            cps_packets as f64 / packets as f64
        },
        backscatter_traffic_share: if total_traffic == 0 {
            0.0
        } else {
            packets as f64 / total_traffic as f64
        },
        heavy_victims: heavy,
        heavy_threshold,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CpsService, IotDevice, IspId};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices([
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(1, 0, 0, 1),
                profile: DeviceProfile::Consumer(ConsumerKind::Printer),
                country: CountryCode::from_code("NL").unwrap(),
                isp: IspId(0),
            },
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(2, 0, 0, 1),
                profile: DeviceProfile::Cps(vec![CpsService::EthernetIp]),
                country: CountryCode::from_code("CN").unwrap(),
                isp: IspId(1),
            },
        ])
    }

    fn bs(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 3, 3, 3),
            44818,
            41000,
            TcpFlags::SYN | TcpFlags::ACK,
        )
        .with_packets(pkts)
    }

    fn analysis() -> Analysis {
        let dbv = Box::leak(Box::new(db()));
        let mut an = Analyzer::new(dbv, 10);
        // Baseline hours.
        for i in 1..=10u32 {
            let mut flows = vec![bs([1, 0, 0, 1], 2)];
            if i == 6 {
                flows.push(bs([2, 0, 0, 1], 500)); // the attack episode
            }
            an.ingest_hour(&HourTraffic {
                interval: i,
                hour: UnixHour::new(u64::from(i)),
                flows,
            });
        }
        an.finish()
    }

    #[test]
    fn spikes_detected_and_attributed() {
        let a = analysis();
        let spikes = detect_spikes(&a, 10.0);
        assert_eq!(spikes.len(), 1);
        let s = &spikes[0];
        assert_eq!(s.interval, 6);
        assert_eq!(s.total, 502);
        assert_eq!(s.victim, DeviceId(1));
        assert!(s.victim_share > 0.99, "share {}", s.victim_share);
    }

    #[test]
    fn hourly_split_by_realm() {
        let a = analysis();
        assert_eq!(hourly(&a, Realm::Consumer), &[2; 10]);
        let cps = hourly(&a, Realm::Cps);
        assert_eq!(cps[5], 500);
        assert_eq!(cps[0], 0);
    }

    #[test]
    fn country_rows_rank_and_count() {
        let a = analysis();
        let rows = victim_countries(&a, &db());
        assert_eq!(rows.len(), 2);
        let cn = rows.iter().find(|r| r.country.code() == "CN").unwrap();
        assert_eq!(cn.cps_victims, 1);
        assert_eq!(cn.consumer_victims, 0);
        assert_eq!(cn.packets, 500);
        let nl = rows.iter().find(|r| r.country.code() == "NL").unwrap();
        assert_eq!(nl.consumer_victims, 1);
        assert_eq!(nl.packets, 20);
    }

    #[test]
    fn summary_shares() {
        let a = analysis();
        let s = summary(&a, 100);
        assert_eq!(s.victims, 2);
        assert!((s.cps_victim_share - 0.5).abs() < 1e-9);
        assert_eq!(s.packets, 520);
        assert!((s.cps_packet_share - 500.0 / 520.0).abs() < 1e-9);
        assert!((s.backscatter_traffic_share - 1.0).abs() < 1e-9);
        assert_eq!(s.heavy_victims, 1);
    }

    #[test]
    fn realm_test_runs() {
        let a = analysis();
        let mw = backscatter_realm_test(&a).unwrap();
        assert_eq!(mw.n1, 10);
        assert_eq!(mw.n2, 10);
    }

    #[test]
    fn empty_analysis() {
        let dbv = db();
        let a = Analyzer::new(&dbv, 4).finish();
        assert!(detect_spikes(&a, 5.0).is_empty());
        assert!(victim_countries(&a, &dbv).is_empty());
        let s = summary(&a, 100);
        assert_eq!(s.victims, 0);
        assert_eq!(s.packets, 0);
    }
}
