//! Per-source darknet behavior taxonomy.
//!
//! The paper (after Liu & Fukuda, and Wustrow et al.) divides darknet
//! traffic into **scanning**, **backscatter**, and **misconfiguration**.
//! The flow classifier ([`mod@crate::classify`]) works per packet; this module
//! rolls the evidence up per *source* and labels each one — including
//! sources outside the inventory, where the label is the only context an
//! analyst has.

use crate::analysis::class_idx;
use crate::behavior::BehaviorVector;
use crate::classify::TrafficClass;
use std::collections::HashMap;
use std::net::Ipv4Addr;

/// What a source appears to be doing, taken over its whole history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SourceKind {
    /// Predominantly TCP-SYN/ICMP-echo probing.
    Scanner,
    /// Predominantly backscatter — the source is a DoS victim.
    DosVictim,
    /// Low-rate UDP to a handful of infrastructure ports with tiny
    /// destination fan-out: mis-addressed DNS/NTP/SSDP/SNMP traffic.
    Misconfiguration,
    /// Broad UDP spraying (high destination fan-out).
    UdpScanner,
    /// No class reaches the dominance threshold.
    Mixed,
}

impl std::fmt::Display for SourceKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            SourceKind::Scanner => "scanner",
            SourceKind::DosVictim => "dos-victim",
            SourceKind::Misconfiguration => "misconfiguration",
            SourceKind::UdpScanner => "udp-scanner",
            SourceKind::Mixed => "mixed",
        })
    }
}

/// The infrastructure ports whose low-fan-out UDP traffic reads as
/// misconfiguration rather than scanning.
pub const MISCONFIG_PORTS: [u16; 4] = [53, 123, 161, 1900];

/// Fraction of a source's packets one class must reach to dominate.
pub const DOMINANCE: f64 = 0.7;

/// Classify one source from its behavior vector.
///
/// `udp_dst_ports` is the set of UDP destination ports the source hit
/// (the behavior vector tracks only *scan* ports, so UDP ports arrive
/// separately via [`classify_sources`]).
pub fn classify_source(v: &BehaviorVector, udp_ports: &[u16]) -> SourceKind {
    let total = v.total_packets();
    if total == 0 {
        return SourceKind::Mixed;
    }
    let share = |class: TrafficClass| v.class[class_idx(class)] as f64 / total as f64;
    let scan = share(TrafficClass::TcpScan) + share(TrafficClass::IcmpScan);
    let backscatter = share(TrafficClass::Backscatter);
    let udp = share(TrafficClass::Udp);
    if backscatter >= DOMINANCE {
        return SourceKind::DosVictim;
    }
    if scan >= DOMINANCE {
        return SourceKind::Scanner;
    }
    if udp >= DOMINANCE {
        // Misconfiguration: everything goes to a few infrastructure ports.
        let all_infra =
            !udp_ports.is_empty() && udp_ports.iter().all(|p| MISCONFIG_PORTS.contains(p));
        if all_infra && udp_ports.len() <= MISCONFIG_PORTS.len() {
            return SourceKind::Misconfiguration;
        }
        return SourceKind::UdpScanner;
    }
    SourceKind::Mixed
}

/// Summary counts per [`SourceKind`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TaxonomySummary {
    counts: HashMap<SourceKind, usize>,
    /// Per-source labels.
    pub labels: HashMap<Ipv4Addr, SourceKind>,
}

impl TaxonomySummary {
    /// Number of sources labeled `kind`.
    pub fn count(&self, kind: SourceKind) -> usize {
        self.counts.get(&kind).copied().unwrap_or(0)
    }

    /// Total sources labeled.
    pub fn total(&self) -> usize {
        self.labels.len()
    }
}

/// Classify every source seen in `traffic`.
///
/// The extra pass collects each source's UDP destination ports (needed to
/// separate misconfiguration from UDP scanning).
pub fn classify_sources(
    traffic: &[iotscope_telescope::HourTraffic],
    vectors: &HashMap<Ipv4Addr, BehaviorVector>,
) -> TaxonomySummary {
    use crate::classify::classify;
    let mut udp_ports: HashMap<Ipv4Addr, std::collections::BTreeSet<u16>> = HashMap::new();
    for hour in traffic {
        for flow in &hour.flows {
            if classify(flow) == TrafficClass::Udp {
                udp_ports
                    .entry(flow.src_ip)
                    .or_default()
                    .insert(flow.dst_port);
            }
        }
    }
    let mut out = TaxonomySummary::default();
    for (ip, v) in vectors {
        let ports: Vec<u16> = udp_ports
            .get(ip)
            .map(|s| s.iter().copied().collect())
            .unwrap_or_default();
        let kind = classify_source(v, &ports);
        *out.counts.entry(kind).or_insert(0) += 1;
        out.labels.insert(*ip, kind);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::extract;
    use iotscope_devicedb::DeviceDb;
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;

    fn hour(flows: Vec<FlowTuple>) -> Vec<HourTraffic> {
        vec![HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows,
        }]
    }

    fn syn(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            23,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
    }

    fn udp(src: [u8; 4], dst_last: u8, port: u16, pkts: u32) -> FlowTuple {
        FlowTuple::udp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, dst_last),
            5000,
            port,
        )
        .with_packets(pkts)
    }

    fn bs(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 9),
            80,
            40001,
            TcpFlags::SYN | TcpFlags::ACK,
        )
        .with_packets(pkts)
    }

    #[test]
    fn labels_each_archetype() {
        let traffic = hour(vec![
            // A scanner.
            syn([9, 0, 0, 1], 50),
            // A DoS victim.
            bs([9, 0, 0, 2], 80),
            // A misconfigured host: DNS + NTP only, one destination each.
            udp([9, 0, 0, 3], 1, 53, 4),
            udp([9, 0, 0, 3], 2, 123, 3),
            // A UDP scanner spraying random high ports.
            udp([9, 0, 0, 4], 1, 37547, 10),
            udp([9, 0, 0, 4], 2, 49152, 10),
            udp([9, 0, 0, 4], 3, 617, 10),
            // Mixed: half scan, half backscatter.
            syn([9, 0, 0, 5], 10),
            bs([9, 0, 0, 5], 10),
        ]);
        let db = DeviceDb::new();
        let vectors = extract(&traffic, &db, 4);
        let summary = classify_sources(&traffic, &vectors);
        let label = |last: u8| summary.labels[&Ipv4Addr::new(9, 0, 0, last)];
        assert_eq!(label(1), SourceKind::Scanner);
        assert_eq!(label(2), SourceKind::DosVictim);
        assert_eq!(label(3), SourceKind::Misconfiguration);
        assert_eq!(label(4), SourceKind::UdpScanner);
        assert_eq!(label(5), SourceKind::Mixed);
        assert_eq!(summary.total(), 5);
        assert_eq!(summary.count(SourceKind::Scanner), 1);
        assert_eq!(summary.count(SourceKind::Mixed), 1);
    }

    #[test]
    fn dominance_threshold_matters() {
        // 65% scan + 35% udp → Mixed (below 70%).
        let traffic = hour(vec![syn([9, 1, 0, 1], 65), udp([9, 1, 0, 1], 1, 37547, 35)]);
        let db = DeviceDb::new();
        let vectors = extract(&traffic, &db, 4);
        let summary = classify_sources(&traffic, &vectors);
        assert_eq!(
            summary.labels[&Ipv4Addr::new(9, 1, 0, 1)],
            SourceKind::Mixed
        );
    }

    #[test]
    fn misconfig_port_off_by_one_is_udp_scanner() {
        // DNS traffic plus one stray high port → not misconfiguration.
        let traffic = hour(vec![
            udp([9, 2, 0, 1], 1, 53, 5),
            udp([9, 2, 0, 1], 2, 5353, 1),
        ]);
        let db = DeviceDb::new();
        let vectors = extract(&traffic, &db, 4);
        let summary = classify_sources(&traffic, &vectors);
        assert_eq!(
            summary.labels[&Ipv4Addr::new(9, 2, 0, 1)],
            SourceKind::UdpScanner
        );
    }

    #[test]
    fn planted_noise_reads_as_misconfiguration_or_scanner() {
        use iotscope_telescope::paper::{PaperScenario, PaperScenarioConfig};
        let built = PaperScenario::build(PaperScenarioConfig::tiny(606));
        let traffic: Vec<HourTraffic> = (1..=48).map(|i| built.scenario.generate_hour(i)).collect();
        let vectors = extract(&traffic, &built.inventory.db, 143);
        let summary = classify_sources(&traffic, &vectors);
        // Noise lives in 198.18/19; every noise source must label as
        // misconfiguration (UDP infra) or scanner (the TCP noise), never
        // as a DoS victim.
        let mut misconfig = 0;
        for (ip, kind) in &summary.labels {
            if ip.octets()[0] == 198 && (ip.octets()[1] == 18 || ip.octets()[1] == 19) {
                assert_ne!(*kind, SourceKind::DosVictim, "{ip} labeled victim");
                if *kind == SourceKind::Misconfiguration {
                    misconfig += 1;
                }
            }
        }
        assert!(misconfig > 5, "only {misconfig} misconfig noise sources");
    }
}
