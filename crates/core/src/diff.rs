//! Comparing two analyses: operational drift reports.
//!
//! The paper's operational goal is continuous, near-real-time indexing of
//! unsolicited IoT devices (§VI). An operator running the pipeline every
//! day needs to know *what changed*: which devices appeared, which went
//! quiet, how the class mix and headline tables moved. [`diff`] computes
//! that from any two [`Analysis`] values (e.g. yesterday's window vs
//! today's).

use crate::analysis::Analysis;
use crate::classify::TrafficClass;
use iotscope_devicedb::DeviceId;

/// Relative packet change of one traffic class between two runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ClassDelta {
    /// The traffic class.
    pub class: TrafficClass,
    /// Packets in the baseline run.
    pub before: u64,
    /// Packets in the new run.
    pub after: u64,
}

impl ClassDelta {
    /// Relative change (+1.0 = doubled); `None` when the baseline is 0.
    pub fn relative(&self) -> Option<f64> {
        if self.before == 0 {
            None
        } else {
            Some(self.after as f64 / self.before as f64 - 1.0)
        }
    }
}

/// The drift between two analyses.
#[derive(Debug, Clone, PartialEq)]
pub struct AnalysisDiff {
    /// Devices present only in the new run (fresh infections).
    pub appeared: Vec<DeviceId>,
    /// Devices present only in the baseline (went quiet / remediated).
    pub disappeared: Vec<DeviceId>,
    /// Devices present in both.
    pub persisted: usize,
    /// Devices that emitted backscatter in the new run but not the
    /// baseline (newly attacked).
    pub new_victims: Vec<DeviceId>,
    /// Devices that emitted scanning traffic in the new run but not the
    /// baseline (newly exploited).
    pub new_scanners: Vec<DeviceId>,
    /// Per-class packet deltas.
    pub class_deltas: Vec<ClassDelta>,
}

impl AnalysisDiff {
    /// Churn rate: (appeared + disappeared) / baseline population.
    pub fn churn(&self) -> f64 {
        let base = self.persisted + self.disappeared.len();
        if base == 0 {
            0.0
        } else {
            (self.appeared.len() + self.disappeared.len()) as f64 / base as f64
        }
    }
}

/// Compute the drift from `before` to `after`.
pub fn diff(before: &Analysis, after: &Analysis) -> AnalysisDiff {
    let mut appeared = Vec::new();
    let mut disappeared = Vec::new();
    let mut persisted = 0usize;
    let mut new_victims = Vec::new();
    let mut new_scanners = Vec::new();

    for obs in after.devices.rows() {
        let id = obs.device;
        match before.devices.get(id) {
            None => {
                appeared.push(id);
                if obs.packets(TrafficClass::Backscatter) > 0 {
                    new_victims.push(id);
                }
                if obs.scan_packets() > 0 {
                    new_scanners.push(id);
                }
            }
            Some(prev) => {
                persisted += 1;
                if obs.packets(TrafficClass::Backscatter) > 0
                    && prev.packets(TrafficClass::Backscatter) == 0
                {
                    new_victims.push(id);
                }
                if obs.scan_packets() > 0 && prev.scan_packets() == 0 {
                    new_scanners.push(id);
                }
            }
        }
    }
    for id in before.devices.ids() {
        if !after.devices.contains(*id) {
            disappeared.push(*id);
        }
    }
    appeared.sort();
    disappeared.sort();
    new_victims.sort();
    new_scanners.sort();

    let class_total = |a: &Analysis, class: TrafficClass| -> u64 {
        a.devices.rows().map(|o| o.packets(class)).sum()
    };
    let class_deltas = TrafficClass::ALL
        .into_iter()
        .map(|class| ClassDelta {
            class,
            before: class_total(before, class),
            after: class_total(after, class),
        })
        .collect();

    AnalysisDiff {
        appeared,
        disappeared,
        persisted,
        new_victims,
        new_scanners,
        class_deltas,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, DeviceDb, IotDevice, IspId};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices((1..=4u8).map(|i| IotDevice {
            id: iotscope_devicedb::DeviceId(0),
            ip: Ipv4Addr::new(1, 0, 0, i),
            profile: DeviceProfile::Consumer(ConsumerKind::Router),
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }))
    }

    fn syn(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            23,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
    }

    fn bs(src: [u8; 4], pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 2),
            80,
            40001,
            TcpFlags::SYN | TcpFlags::ACK,
        )
        .with_packets(pkts)
    }

    fn analyze(flows: Vec<FlowTuple>) -> Analysis {
        let dbv = Box::leak(Box::new(db()));
        let mut an = Analyzer::new(dbv, 4);
        an.ingest_hour(&HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows,
        });
        an.finish()
    }

    #[test]
    fn appeared_disappeared_persisted() {
        // Day 1: devices 1 and 2. Day 2: devices 2 and 3.
        let before = analyze(vec![syn([1, 0, 0, 1], 10), syn([1, 0, 0, 2], 10)]);
        let after = analyze(vec![syn([1, 0, 0, 2], 30), syn([1, 0, 0, 3], 5)]);
        let d = diff(&before, &after);
        assert_eq!(d.appeared.len(), 1);
        assert_eq!(d.disappeared.len(), 1);
        assert_eq!(d.persisted, 1);
        assert_eq!(d.new_scanners.len(), 1); // device 3
        assert!((d.churn() - 1.0).abs() < 1e-9); // (1+1)/2
    }

    #[test]
    fn newly_attacked_devices_flagged() {
        // Device 1 scans on day 1, is also a DoS victim on day 2.
        let before = analyze(vec![syn([1, 0, 0, 1], 10)]);
        let after = analyze(vec![syn([1, 0, 0, 1], 10), bs([1, 0, 0, 1], 50)]);
        let d = diff(&before, &after);
        assert_eq!(d.new_victims.len(), 1);
        assert!(d.appeared.is_empty());
        assert!(d.new_scanners.is_empty()); // was already scanning
    }

    #[test]
    fn class_deltas_and_relative() {
        let before = analyze(vec![syn([1, 0, 0, 1], 10)]);
        let after = analyze(vec![syn([1, 0, 0, 1], 25)]);
        let d = diff(&before, &after);
        let scan = d
            .class_deltas
            .iter()
            .find(|c| c.class == TrafficClass::TcpScan)
            .unwrap();
        assert_eq!(scan.before, 10);
        assert_eq!(scan.after, 25);
        assert!((scan.relative().unwrap() - 1.5).abs() < 1e-9);
        let udp = d
            .class_deltas
            .iter()
            .find(|c| c.class == TrafficClass::Udp)
            .unwrap();
        assert_eq!(udp.relative(), None); // 0 baseline
    }

    #[test]
    fn identical_analyses_produce_empty_diff() {
        let a = analyze(vec![syn([1, 0, 0, 1], 10)]);
        let b = analyze(vec![syn([1, 0, 0, 1], 10)]);
        let d = diff(&a, &b);
        assert!(d.appeared.is_empty());
        assert!(d.disappeared.is_empty());
        assert_eq!(d.persisted, 1);
        assert_eq!(d.churn(), 0.0);
    }
}
