//! Columnar per-device aggregation storage.
//!
//! The correlation join (§III-B) produces one aggregate row per
//! compromised device; at paper scale that is tens of thousands of rows
//! out of a ~331k-device inventory, and at the ROADMAP's target scale it
//! is millions. [`DeviceTable`] keeps those rows as a struct-of-arrays
//! keyed by the inventory's dense intern index (see
//! [`DeviceDb::index_of`](iotscope_devicedb::DeviceDb::index_of)), so
//! merging two partial aggregations is columnar addition instead of
//! per-key hash-map rehashing, and [`DeviceSet`] packs "which devices"
//! sets over the same index — a sorted vec of 4-byte indexes while
//! small, one bit per device once large, instead of a ~48-byte hash-set
//! entry either way.
//!
//! Row order is *first-seen* while ingesting and *sorted by id* after
//! [`DeviceTable::normalize`] (which [`Analyzer::finish`] calls), so a
//! finished [`Analysis`] is bit-identical between sequential and
//! parallel runs. Equality on both types is order- and
//! capacity-insensitive, preserving the determinism contract even on
//! un-normalized snapshots.
//!
//! [`Analyzer::finish`]: crate::analysis::Analyzer::finish
//! [`Analysis`]: crate::analysis::Analysis

use crate::classify::TrafficClass;
use iotscope_devicedb::{DeviceId, Realm};

/// Number of traffic classes (see [`crate::analysis::class_idx`]).
pub(crate) const NUM_CLASSES: usize = 5;

/// Sets at or below this many members stay in the sorted-vec
/// representation; above it they promote to a bitmap. 128 × 4 bytes =
/// 512 B, well under the bitmap cost for any realistic inventory, and
/// small enough that insertion's memmove is cache-resident.
const SPARSE_MAX: usize = 128;

#[derive(Debug, Clone)]
enum SetRepr {
    /// Sorted, deduplicated device indexes — the common case: most
    /// per-port / per-service sets hold a handful of devices.
    Sparse(Vec<u32>),
    /// Bitmap over the dense device index, for large cohorts.
    Dense(Vec<u64>),
}

/// A compact set of devices keyed by the dense device index.
///
/// Adaptive representation: a sorted `Vec<u32>` while the set is small
/// (≤ 128 members, the overwhelming majority of the
/// per-port/per-service sets), promoted to a bitmap once it grows (a
/// 331k-device inventory fits in ~41 KiB). This keeps the union used by
/// [`Analyzer::merge`](crate::analysis::Analyzer::merge) proportional
/// to the *members* of small sets rather than the inventory size, while
/// large cohorts still merge as word-wise ORs. Equality is
/// representation- and capacity-insensitive: two sets with the same
/// members always compare equal.
#[derive(Debug, Clone)]
pub struct DeviceSet {
    repr: SetRepr,
    len: usize,
}

impl Default for DeviceSet {
    fn default() -> Self {
        DeviceSet {
            repr: SetRepr::Sparse(Vec::new()),
            len: 0,
        }
    }
}

impl DeviceSet {
    /// An empty set.
    pub fn new() -> Self {
        DeviceSet::default()
    }

    /// An empty *dense* set pre-sized for device indexes `< capacity`.
    ///
    /// Use for reusable scratch sets that are repeatedly filled and
    /// [`clear`](Self::clear)ed: the bitmap allocation is made once and
    /// no sparse→dense promotions happen on the hot path.
    pub fn with_capacity(capacity: usize) -> Self {
        DeviceSet {
            repr: SetRepr::Dense(vec![0; capacity.div_ceil(64)]),
            len: 0,
        }
    }

    /// Number of devices in the set.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Switch to the bitmap representation.
    fn promote(&mut self) {
        if let SetRepr::Sparse(v) = &self.repr {
            let cap = v.last().map_or(0, |&max| max as usize + 1);
            let mut words = vec![0u64; cap.div_ceil(64)];
            for &i in v {
                words[i as usize / 64] |= 1 << (i % 64);
            }
            self.repr = SetRepr::Dense(words);
        }
    }

    /// Insert a device; returns `true` if it was newly added.
    #[inline]
    pub fn insert(&mut self, id: DeviceId) -> bool {
        match &mut self.repr {
            SetRepr::Sparse(v) => match v.binary_search(&id.0) {
                Ok(_) => false,
                Err(pos) => {
                    if v.len() == SPARSE_MAX {
                        self.promote();
                        return self.insert(id);
                    }
                    v.insert(pos, id.0);
                    self.len += 1;
                    true
                }
            },
            SetRepr::Dense(words) => {
                let (word, bit) = (id.0 as usize / 64, id.0 % 64);
                if word >= words.len() {
                    words.resize(word + 1, 0);
                }
                let mask = 1u64 << bit;
                let newly = words[word] & mask == 0;
                words[word] |= mask;
                self.len += usize::from(newly);
                newly
            }
        }
    }

    /// Whether the set contains `id`.
    #[inline]
    pub fn contains(&self, id: DeviceId) -> bool {
        match &self.repr {
            SetRepr::Sparse(v) => v.binary_search(&id.0).is_ok(),
            SetRepr::Dense(words) => {
                let (word, bit) = (id.0 as usize / 64, id.0 % 64);
                words.get(word).is_some_and(|w| w & (1 << bit) != 0)
            }
        }
    }

    /// Add every member of `other`.
    ///
    /// Cost is O(|other|) when `other` is sparse and a word-wise OR when
    /// both sides are bitmaps — never O(inventory) for small sets.
    pub fn union_with(&mut self, other: &DeviceSet) {
        match &other.repr {
            SetRepr::Sparse(o) => {
                for &i in o {
                    self.insert(DeviceId(i));
                }
            }
            SetRepr::Dense(o) => {
                self.promote();
                let SetRepr::Dense(words) = &mut self.repr else {
                    unreachable!("just promoted");
                };
                if o.len() > words.len() {
                    words.resize(o.len(), 0);
                }
                let mut len = 0usize;
                for (w, &ow) in words.iter_mut().zip(o.iter()) {
                    *w |= ow;
                    len += w.count_ones() as usize;
                }
                for w in &words[o.len()..] {
                    len += w.count_ones() as usize;
                }
                self.len = len;
            }
        }
    }

    /// Remove all members, keeping the allocation (and, for dense sets,
    /// the representation — scratch sets stay bitmaps across hours).
    pub fn clear(&mut self) {
        match &mut self.repr {
            SetRepr::Sparse(v) => v.clear(),
            SetRepr::Dense(words) => words.fill(0),
        }
        self.len = 0;
    }

    /// Iterate over members in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = DeviceId> + '_ {
        let (sparse, dense): (&[u32], &[u64]) = match &self.repr {
            SetRepr::Sparse(v) => (v, &[]),
            SetRepr::Dense(words) => (&[], words),
        };
        sparse
            .iter()
            .map(|&i| DeviceId(i))
            .chain(dense.iter().enumerate().flat_map(|(wi, &w)| {
                let mut rest = w;
                std::iter::from_fn(move || {
                    if rest == 0 {
                        return None;
                    }
                    let bit = rest.trailing_zeros();
                    rest &= rest - 1;
                    Some(DeviceId((wi * 64) as u32 + bit))
                })
            }))
    }
}

impl PartialEq for DeviceSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().eq(other.iter())
    }
}

impl Eq for DeviceSet {}

impl FromIterator<DeviceId> for DeviceSet {
    fn from_iter<I: IntoIterator<Item = DeviceId>>(iter: I) -> Self {
        let mut set = DeviceSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl Extend<DeviceId> for DeviceSet {
    fn extend<I: IntoIterator<Item = DeviceId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl<'a> IntoIterator for &'a DeviceSet {
    type Item = DeviceId;
    type IntoIter = Box<dyn Iterator<Item = DeviceId> + 'a>;
    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

/// Everything observed about one correlated device — the row type
/// materialized from a [`DeviceTable`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeviceObservation {
    /// The device.
    pub device: DeviceId,
    /// Its realm (denormalized for hot paths).
    pub realm: Realm,
    /// First interval (1-based) the device was seen at the telescope.
    pub first_interval: u32,
    /// Flow records observed.
    pub flows: u64,
    /// Packets per traffic class (indexed by
    /// [`class_idx`](crate::analysis::class_idx)).
    pub packets_by_class: [u64; NUM_CLASSES],
    /// Bitmask of active days (bit d = day d).
    pub days_active: u64,
}

impl DeviceObservation {
    /// Total packets across classes.
    pub fn total_packets(&self) -> u64 {
        self.packets_by_class.iter().sum()
    }

    /// Packets of one class.
    pub fn packets(&self, class: TrafficClass) -> u64 {
        self.packets_by_class[crate::analysis::class_idx(class)]
    }

    /// Combined scanning packets (TCP SYN + ICMP echo).
    pub fn scan_packets(&self) -> u64 {
        self.packets(TrafficClass::TcpScan) + self.packets(TrafficClass::IcmpScan)
    }
}

/// Columnar per-device aggregates: one row per correlated device,
/// struct-of-arrays.
///
/// Rows are addressed two ways: by *row number* (dense, iteration order)
/// and by [`DeviceId`] through a sparse `device index → row` table that
/// exploits the inventory's dense id interning. While ingesting, rows
/// are appended in first-seen order; [`normalize`](Self::normalize)
/// sorts them by id so finished results are reproducible bit-for-bit
/// regardless of ingest or merge order.
#[derive(Debug, Clone, Default)]
pub struct DeviceTable {
    /// Device id per row.
    ids: Vec<DeviceId>,
    /// Realm per row.
    realms: Vec<Realm>,
    /// First interval seen per row.
    first_interval: Vec<u32>,
    /// Flow count per row.
    flows: Vec<u64>,
    /// Packet counts per class, class-major: `packets[class][row]`.
    packets: [Vec<u64>; NUM_CLASSES],
    /// Active-day bitmask per row.
    days_active: Vec<u64>,
    /// Sparse index: device index → row + 1 (0 = absent).
    row_of: Vec<u32>,
    /// Whether rows are currently sorted by id.
    sorted: bool,
}

impl DeviceTable {
    /// An empty table.
    pub fn new() -> Self {
        DeviceTable {
            sorted: true,
            ..DeviceTable::default()
        }
    }

    /// Number of rows (correlated devices).
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the table has no rows.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// The row holding `id`, if the device has been observed.
    #[inline]
    pub fn row(&self, id: DeviceId) -> Option<usize> {
        match self.row_of.get(id.0 as usize) {
            Some(&r) if r != 0 => Some(r as usize - 1),
            _ => None,
        }
    }

    /// Whether the device has been observed.
    pub fn contains(&self, id: DeviceId) -> bool {
        self.row(id).is_some()
    }

    /// Device ids in row order (sorted ascending iff the table is
    /// [`normalize`](Self::normalize)d).
    pub fn ids(&self) -> &[DeviceId] {
        &self.ids
    }

    /// Get-or-create the row for `id`, recording `realm` and the
    /// candidate `first_interval` on creation.
    #[inline]
    pub fn upsert(&mut self, id: DeviceId, realm: Realm, first_interval: u32) -> usize {
        let idx = id.0 as usize;
        if idx >= self.row_of.len() {
            self.row_of.resize(idx + 1, 0);
        }
        let slot = self.row_of[idx];
        if slot != 0 {
            return slot as usize - 1;
        }
        let row = self.ids.len();
        if self.sorted && self.ids.last().is_some_and(|last| *last > id) {
            self.sorted = false;
        }
        self.ids.push(id);
        self.realms.push(realm);
        self.first_interval.push(first_interval);
        self.flows.push(0);
        for col in &mut self.packets {
            col.push(0);
        }
        self.days_active.push(0);
        self.row_of[idx] = (row + 1) as u32;
        row
    }

    /// Record one flow for `id`: `pkts` packets of class `class`
    /// observed at `interval` on day `day`. The hot path of
    /// [`Analyzer::ingest_hour`](crate::analysis::Analyzer::ingest_hour).
    #[inline]
    pub fn observe(
        &mut self,
        id: DeviceId,
        realm: Realm,
        class: usize,
        pkts: u64,
        interval: u32,
        day: u32,
    ) {
        let row = self.upsert(id, realm, interval);
        let fi = &mut self.first_interval[row];
        *fi = (*fi).min(interval);
        self.flows[row] += 1;
        self.packets[class][row] += pkts;
        self.days_active[row] |= 1 << day.min(63);
    }

    /// Materialize the observation at `row`.
    ///
    /// # Panics
    ///
    /// Panics if `row >= len()`.
    pub fn observation_at(&self, row: usize) -> DeviceObservation {
        DeviceObservation {
            device: self.ids[row],
            realm: self.realms[row],
            first_interval: self.first_interval[row],
            flows: self.flows[row],
            packets_by_class: std::array::from_fn(|c| self.packets[c][row]),
            days_active: self.days_active[row],
        }
    }

    /// Materialize the observation for `id`, if observed.
    pub fn get(&self, id: DeviceId) -> Option<DeviceObservation> {
        self.row(id).map(|r| self.observation_at(r))
    }

    /// Iterate over rows as materialized observations, in row order.
    pub fn rows(&self) -> impl Iterator<Item = DeviceObservation> + '_ {
        (0..self.len()).map(|r| self.observation_at(r))
    }

    /// Packets of `class` accumulated in `row` — column access without
    /// materializing the row.
    #[inline]
    pub fn class_packets_at(&self, row: usize, class: TrafficClass) -> u64 {
        self.packets[crate::analysis::class_idx(class)][row]
    }

    /// Realm of the device in `row`.
    #[inline]
    pub fn realm_at(&self, row: usize) -> Realm {
        self.realms[row]
    }

    /// Merge another table built over disjoint observations of the same
    /// inventory: matching rows are added field-wise (min for
    /// `first_interval`, OR for `days_active`), new rows are appended.
    pub fn merge_from(&mut self, other: DeviceTable) {
        if self.is_empty() {
            *self = other;
            return;
        }
        for orow in 0..other.len() {
            let id = other.ids[orow];
            let row = self.upsert(id, other.realms[orow], other.first_interval[orow]);
            let fi = &mut self.first_interval[row];
            *fi = (*fi).min(other.first_interval[orow]);
            self.flows[row] += other.flows[orow];
            for c in 0..NUM_CLASSES {
                self.packets[c][row] += other.packets[c][orow];
            }
            self.days_active[row] |= other.days_active[orow];
        }
    }

    /// Append another table's rows wholesale — the merge path for
    /// *shard-disjoint* partials, where each table covers its own range
    /// of the dense device index and no id can appear in both.
    ///
    /// Unlike [`merge_from`](Self::merge_from), which upserts row by
    /// row and adds columns field-wise, this is a straight
    /// `extend_from_slice` per column plus a sparse-index fix-up:
    /// O(rows) with no per-row branch on existing state. When partials
    /// arrive in ascending shard order and each is already
    /// [`normalize`](Self::normalize)d, the concatenated table is
    /// globally sorted, so the final `normalize()` is a no-op and the
    /// result is bit-identical to a sequential build.
    ///
    /// # Panics
    ///
    /// Debug builds assert that no id of `other` is already present.
    pub fn concat_from(&mut self, other: DeviceTable) {
        if self.is_empty() {
            *self = other;
            return;
        }
        if other.is_empty() {
            return;
        }
        self.sorted =
            self.sorted && other.sorted && self.ids.last().unwrap() < other.ids.first().unwrap();
        let base = self.ids.len() as u32;
        if other.row_of.len() > self.row_of.len() {
            self.row_of.resize(other.row_of.len(), 0);
        }
        for (orow, id) in other.ids.iter().enumerate() {
            let idx = id.0 as usize;
            if idx >= self.row_of.len() {
                self.row_of.resize(idx + 1, 0);
            }
            debug_assert_eq!(self.row_of[idx], 0, "concat_from rows must be disjoint");
            self.row_of[idx] = base + orow as u32 + 1;
        }
        self.ids.extend_from_slice(&other.ids);
        self.realms.extend_from_slice(&other.realms);
        self.first_interval.extend_from_slice(&other.first_interval);
        self.flows.extend_from_slice(&other.flows);
        for (col, ocol) in self.packets.iter_mut().zip(&other.packets) {
            col.extend_from_slice(ocol);
        }
        self.days_active.extend_from_slice(&other.days_active);
    }

    /// Sort rows by device id and rebuild the sparse index, making row
    /// order (and therefore serialization and iteration) independent of
    /// ingest/merge order. O(n log n); no-op when already sorted.
    pub fn normalize(&mut self) {
        if self.sorted {
            return;
        }
        let mut perm: Vec<u32> = (0..self.len() as u32).collect();
        perm.sort_unstable_by_key(|&r| self.ids[r as usize]);
        self.ids = permute(&self.ids, &perm);
        self.realms = permute(&self.realms, &perm);
        self.first_interval = permute(&self.first_interval, &perm);
        self.flows = permute(&self.flows, &perm);
        for col in &mut self.packets {
            *col = permute(col, &perm);
        }
        self.days_active = permute(&self.days_active, &perm);
        for (row, id) in self.ids.iter().enumerate() {
            self.row_of[id.0 as usize] = (row + 1) as u32;
        }
        self.sorted = true;
    }

    /// Approximate heap footprint in bytes (columns + sparse index).
    pub fn heap_bytes(&self) -> usize {
        use std::mem::size_of;
        self.ids.capacity() * size_of::<DeviceId>()
            + self.realms.capacity() * size_of::<Realm>()
            + self.first_interval.capacity() * size_of::<u32>()
            + self.flows.capacity() * size_of::<u64>()
            + self
                .packets
                .iter()
                .map(|c| c.capacity() * size_of::<u64>())
                .sum::<usize>()
            + self.days_active.capacity() * size_of::<u64>()
            + self.row_of.capacity() * size_of::<u32>()
    }
}

/// Gather `src` through the permutation `perm` (new row `i` = old row
/// `perm[i]`).
fn permute<T: Copy>(src: &[T], perm: &[u32]) -> Vec<T> {
    perm.iter().map(|&r| src[r as usize]).collect()
}

/// Row-set equality, insensitive to row order and index capacity — two
/// tables describing the same devices compare equal even if one was
/// built by a differently-ordered merge and not yet normalized.
impl PartialEq for DeviceTable {
    fn eq(&self, other: &Self) -> bool {
        if self.len() != other.len() {
            return false;
        }
        (0..self.len()).all(|row| {
            let id = self.ids[row];
            match other.row(id) {
                Some(orow) => {
                    self.realms[row] == other.realms[orow]
                        && self.first_interval[row] == other.first_interval[orow]
                        && self.flows[row] == other.flows[orow]
                        && (0..NUM_CLASSES).all(|c| self.packets[c][row] == other.packets[c][orow])
                        && self.days_active[row] == other.days_active[orow]
                }
                None => false,
            }
        })
    }
}

impl Eq for DeviceTable {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn device_set_insert_contains_len() {
        let mut s = DeviceSet::new();
        assert!(s.is_empty());
        assert!(s.insert(DeviceId(3)));
        assert!(!s.insert(DeviceId(3)));
        assert!(s.insert(DeviceId(200)));
        assert_eq!(s.len(), 2);
        assert!(s.contains(DeviceId(3)));
        assert!(!s.contains(DeviceId(4)));
        assert!(!s.contains(DeviceId(100_000)));
        assert_eq!(
            s.iter().collect::<Vec<_>>(),
            vec![DeviceId(3), DeviceId(200)]
        );
    }

    #[test]
    fn device_set_union_counts_and_capacity_equality() {
        let a: DeviceSet = [DeviceId(1), DeviceId(64), DeviceId(65)]
            .into_iter()
            .collect();
        let mut b: DeviceSet = [DeviceId(1), DeviceId(500)].into_iter().collect();
        b.union_with(&a);
        assert_eq!(b.len(), 4);
        assert!(b.contains(DeviceId(64)));
        // Equality ignores trailing capacity.
        let mut big = DeviceSet::with_capacity(10_000);
        for id in b.iter() {
            big.insert(id);
        }
        assert_eq!(big, b);
        big.insert(DeviceId(9_999));
        assert_ne!(big, b);
        // Clear keeps capacity but empties membership.
        big.clear();
        assert!(big.is_empty());
        assert_eq!(big, DeviceSet::new());
    }

    #[test]
    fn device_set_promotes_past_sparse_max() {
        // Insert descending so the sparse path exercises its memmove,
        // then cross the promotion threshold.
        let mut s = DeviceSet::new();
        for i in (0..300u32).rev() {
            assert!(s.insert(DeviceId(i * 3)));
        }
        assert!(!s.insert(DeviceId(0)));
        assert_eq!(s.len(), 300);
        assert!(s.contains(DeviceId(297 * 3)));
        assert!(!s.contains(DeviceId(1)));
        // Iteration stays ascending across the promotion.
        let ids: Vec<u32> = s.iter().map(|d| d.0).collect();
        assert_eq!(ids, (0..300u32).map(|i| i * 3).collect::<Vec<_>>());
        // A promoted set equals a never-promoted dense set with the
        // same members, and unions with a sparse set stay correct.
        let mut dense = DeviceSet::with_capacity(1024);
        dense.extend(s.iter());
        assert_eq!(dense, s);
        let sparse: DeviceSet = [DeviceId(1), DeviceId(898)].into_iter().collect();
        s.union_with(&sparse);
        assert_eq!(s.len(), 302);
        assert!(s.contains(DeviceId(1)));
    }

    #[test]
    fn table_upsert_observe_get() {
        let mut t = DeviceTable::new();
        t.observe(DeviceId(7), Realm::Cps, 0, 5, 10, 0);
        t.observe(DeviceId(7), Realm::Cps, 3, 2, 4, 1);
        t.observe(DeviceId(2), Realm::Consumer, 3, 1, 8, 0);
        assert_eq!(t.len(), 2);
        let obs = t.get(DeviceId(7)).unwrap();
        assert_eq!(obs.first_interval, 4);
        assert_eq!(obs.flows, 2);
        assert_eq!(obs.packets_by_class, [5, 0, 0, 2, 0]);
        assert_eq!(obs.days_active, 0b11);
        assert!(t.get(DeviceId(3)).is_none());
        assert_eq!(t.rows().count(), 2);
    }

    #[test]
    fn normalize_sorts_rows_and_preserves_lookup() {
        let mut t = DeviceTable::new();
        for id in [9u32, 3, 7, 1] {
            t.observe(DeviceId(id), Realm::Consumer, 0, 1, 1, 0);
        }
        assert_eq!(t.ids()[0], DeviceId(9));
        t.normalize();
        assert_eq!(
            t.ids(),
            &[DeviceId(1), DeviceId(3), DeviceId(7), DeviceId(9)]
        );
        for id in [9u32, 3, 7, 1] {
            assert_eq!(t.get(DeviceId(id)).unwrap().device, DeviceId(id));
        }
        // Already-sorted append keeps the sorted flag (normalize no-ops).
        t.observe(DeviceId(12), Realm::Cps, 1, 1, 2, 0);
        t.normalize();
        assert_eq!(t.ids().last(), Some(&DeviceId(12)));
    }

    #[test]
    fn merge_adds_matching_rows_and_appends_new() {
        let mut a = DeviceTable::new();
        a.observe(DeviceId(1), Realm::Consumer, 0, 10, 5, 0);
        let mut b = DeviceTable::new();
        b.observe(DeviceId(1), Realm::Consumer, 0, 4, 2, 1);
        b.observe(DeviceId(8), Realm::Cps, 2, 9, 7, 1);
        a.merge_from(b);
        assert_eq!(a.len(), 2);
        let one = a.get(DeviceId(1)).unwrap();
        assert_eq!(one.first_interval, 2);
        assert_eq!(one.flows, 2);
        assert_eq!(one.packets_by_class[0], 14);
        assert_eq!(one.days_active, 0b11);
        assert_eq!(a.get(DeviceId(8)).unwrap().packets_by_class[2], 9);
    }

    #[test]
    fn concat_preserves_sort_for_ascending_shards() {
        // Two sorted shard partials over disjoint dense ranges.
        let mut lo = DeviceTable::new();
        lo.observe(DeviceId(1), Realm::Consumer, 0, 3, 2, 0);
        lo.observe(DeviceId(4), Realm::Cps, 2, 5, 1, 1);
        let mut hi = DeviceTable::new();
        hi.observe(DeviceId(9), Realm::Consumer, 3, 7, 4, 2);
        hi.observe(DeviceId(12), Realm::Cps, 1, 1, 6, 0);

        // Reference: the same rows via the columnar-add merge.
        let mut reference = lo.clone();
        reference.merge_from(hi.clone());

        let mut cat = lo.clone();
        cat.concat_from(hi.clone());
        assert!(cat.sorted, "ascending concat must keep the sorted flag");
        assert_eq!(cat, reference);
        assert_eq!(
            cat.ids(),
            &[DeviceId(1), DeviceId(4), DeviceId(9), DeviceId(12)]
        );
        // Lookups work through the rebuilt sparse index.
        assert_eq!(cat.get(DeviceId(9)).unwrap().packets_by_class[3], 7);
        assert_eq!(cat.get(DeviceId(4)).unwrap().first_interval, 1);

        // Concatenating onto an empty table moves rows wholesale.
        let mut empty = DeviceTable::new();
        empty.concat_from(cat.clone());
        assert_eq!(empty, cat);

        // Out-of-order concat drops the flag; normalize restores order.
        let mut rev = hi;
        rev.concat_from(lo);
        assert!(!rev.sorted);
        rev.normalize();
        assert_eq!(rev.ids(), cat.ids());
        assert_eq!(rev, cat);
    }

    #[test]
    fn equality_is_row_order_insensitive() {
        let mut a = DeviceTable::new();
        a.observe(DeviceId(5), Realm::Consumer, 0, 1, 1, 0);
        a.observe(DeviceId(2), Realm::Cps, 1, 2, 2, 0);
        let mut b = DeviceTable::new();
        b.observe(DeviceId(2), Realm::Cps, 1, 2, 2, 0);
        b.observe(DeviceId(5), Realm::Consumer, 0, 1, 1, 0);
        assert_eq!(a, b);
        // Normalizing one side must not break equality with the other.
        a.normalize();
        assert_eq!(a, b);
        b.observe(DeviceId(5), Realm::Consumer, 0, 1, 1, 0);
        assert_ne!(a, b);
        // Merging into an empty table moves the rows wholesale.
        let mut empty = DeviceTable::new();
        empty.merge_from(a.clone());
        assert_eq!(empty, a);
    }
}
