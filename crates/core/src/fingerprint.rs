//! Fuzzy fingerprinting of unindexed IoT devices (§VI).
//!
//! The paper's first follow-up: "exploring fuzzy matching algorithms …
//! to identify a broader range of IoT devices (previously not indexed by
//! Shodan) as perceived by the network telescope by leveraging
//! IoT-relevant darknet traffic (from previously inferred IoT devices)."
//!
//! [`FingerprintModel::train`] learns reference profiles from the traffic
//! of *matched* (inventory-correlated) IoT devices — scanned-port
//! histogram, protocol mix, and traffic-class mix.
//! [`FingerprintModel::score`] then rates any unmatched source's
//! similarity to that learned behavior, and
//! [`candidate_iot_devices`] returns the unmatched sources that look like
//! IoT devices even though no inventory lists them.

use crate::behavior::{cosine, BehaviorVector};
use std::collections::{BTreeMap, HashMap};
use std::net::Ipv4Addr;

/// Minimum devices sharing a dominant port before the group becomes a
/// reference profile (a single odd device must not define "IoT behavior").
pub const MIN_GROUP_SIZE: usize = 3;

/// A trained reference profile of IoT darknet behavior.
///
/// IoT scanners specialize (a CWMP-only scanner looks nothing like a
/// Telnet worm), so one aggregate histogram would reject most of them.
/// The model instead learns one reference histogram per *dominant port
/// group* — all matched devices whose most-scanned port agrees — and
/// scores a candidate against its best-matching group.
#[derive(Debug, Clone, PartialEq)]
pub struct FingerprintModel {
    /// Per-dominant-port reference histograms (groups with at least
    /// [`MIN_GROUP_SIZE`] members).
    groups: Vec<(u16, BTreeMap<u16, u64>)>,
    /// Aggregated protocol mix `[ICMP, TCP, UDP]`, normalized.
    protocol_profile: [f64; 3],
    /// Aggregated traffic-class mix, normalized.
    class_profile: [f64; 5],
    /// Number of devices trained on.
    trained_on: usize,
}

/// A source flagged as a likely unindexed IoT device.
#[derive(Debug, Clone, PartialEq)]
pub struct IotCandidate {
    /// The unmatched source address.
    pub ip: Ipv4Addr,
    /// Similarity score in `0.0..=1.0`.
    pub score: f64,
    /// Total packets observed from the source.
    pub packets: u64,
}

impl FingerprintModel {
    /// Train on the matched IoT devices among `vectors`.
    ///
    /// Returns `None` when no matched device is present (nothing to learn
    /// from).
    pub fn train(vectors: &HashMap<Ipv4Addr, BehaviorVector>) -> Option<FingerprintModel> {
        let mut group_hists: BTreeMap<u16, (usize, BTreeMap<u16, u64>)> = BTreeMap::new();
        let mut protocol = [0u64; 3];
        let mut class = [0u64; 5];
        let mut trained_on = 0usize;
        for v in vectors.values() {
            if v.device.is_none() {
                continue;
            }
            trained_on += 1;
            if let Some(dominant) = v.top_ports(1).first().copied() {
                let entry = group_hists.entry(dominant).or_default();
                entry.0 += 1;
                for (p, c) in &v.scan_ports {
                    *entry.1.entry(*p).or_insert(0) += c;
                }
            }
            for (acc, obs) in protocol.iter_mut().zip(v.protocol.iter()) {
                *acc += obs;
            }
            for (acc, obs) in class.iter_mut().zip(v.class.iter()) {
                *acc += obs;
            }
        }
        if trained_on == 0 {
            return None;
        }
        let groups: Vec<(u16, BTreeMap<u16, u64>)> = group_hists
            .into_iter()
            .filter(|(_, (members, _))| *members >= MIN_GROUP_SIZE)
            .map(|(port, (_, hist))| (port, hist))
            .collect();
        Some(FingerprintModel {
            groups,
            protocol_profile: normalize3(protocol),
            class_profile: normalize5(class),
            trained_on,
        })
    }

    /// Number of dominant-port reference groups the model holds.
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// Number of devices the model was trained on.
    pub fn trained_on(&self) -> usize {
        self.trained_on
    }

    /// Score a source's similarity to the learned IoT behavior
    /// (`0.0..=1.0`). The score blends the best group's scanned-port
    /// cosine similarity (weight 0.6), protocol-mix similarity (0.2) and
    /// traffic-class-mix similarity (0.2); a source that scans none of
    /// the IoT-associated ports scores near zero.
    pub fn score(&self, v: &BehaviorVector) -> f64 {
        let port_sim = self
            .groups
            .iter()
            .map(|(_, hist)| cosine(hist, &v.scan_ports))
            .fold(0.0, f64::max);
        let proto_sim = mix_similarity3(self.protocol_profile, normalize3(v.protocol));
        let class_sim = mix_similarity5(self.class_profile, normalize5(v.class));
        (0.6 * port_sim + 0.2 * proto_sim + 0.2 * class_sim).clamp(0.0, 1.0)
    }
}

/// Flag unmatched sources scoring at least `threshold`, descending by
/// score. Sources with fewer than `min_packets` packets are skipped
/// (too little evidence).
pub fn candidate_iot_devices(
    model: &FingerprintModel,
    vectors: &HashMap<Ipv4Addr, BehaviorVector>,
    threshold: f64,
    min_packets: u64,
) -> Vec<IotCandidate> {
    let mut out: Vec<IotCandidate> = vectors
        .values()
        .filter(|v| v.device.is_none() && v.total_packets() >= min_packets)
        .map(|v| IotCandidate {
            ip: v.ip,
            score: model.score(v),
            packets: v.total_packets(),
        })
        .filter(|c| c.score >= threshold)
        .collect();
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.ip.cmp(&b.ip))
    });
    out
}

fn normalize3(v: [u64; 3]) -> [f64; 3] {
    let total: u64 = v.iter().sum();
    if total == 0 {
        return [0.0; 3];
    }
    [
        v[0] as f64 / total as f64,
        v[1] as f64 / total as f64,
        v[2] as f64 / total as f64,
    ]
}

fn normalize5(v: [u64; 5]) -> [f64; 5] {
    let total: u64 = v.iter().sum();
    if total == 0 {
        return [0.0; 5];
    }
    let mut out = [0.0; 5];
    for i in 0..5 {
        out[i] = v[i] as f64 / total as f64;
    }
    out
}

/// 1 − half the L1 distance between two distributions (the overlap
/// coefficient), in `0.0..=1.0`.
fn mix_similarity3(a: [f64; 3], b: [f64; 3]) -> f64 {
    1.0 - 0.5
        * a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
}

fn mix_similarity5(a: [f64; 5], b: [f64; 5]) -> f64 {
    1.0 - 0.5
        * a.iter()
            .zip(b.iter())
            .map(|(x, y)| (x - y).abs())
            .sum::<f64>()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::extract;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, DeviceDb, DeviceId, IotDevice, IspId};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;

    fn db() -> DeviceDb {
        DeviceDb::from_devices((1..=3u8).map(|i| IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::new(1, 0, 0, i),
            profile: DeviceProfile::Consumer(ConsumerKind::Router),
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }))
    }

    fn syn(src: Ipv4Addr, port: u16, pkts: u32) -> FlowTuple {
        FlowTuple::tcp(src, Ipv4Addr::new(44, 0, 0, 1), 40000, port, TcpFlags::SYN)
            .with_packets(pkts)
    }

    /// Known IoT devices scan Telnet/CWMP; a shadow (unindexed) IoT device
    /// does the same; an enterprise-malware host scans MSSQL/RDP/SMB.
    fn traffic() -> Vec<HourTraffic> {
        let mut flows = Vec::new();
        for i in 1..=3u8 {
            let ip = Ipv4Addr::new(1, 0, 0, i);
            flows.push(syn(ip, 23, 40));
            flows.push(syn(ip, 2323, 12));
            flows.push(syn(ip, 7547, 9));
        }
        let shadow = Ipv4Addr::new(198, 51, 7, 7);
        flows.push(syn(shadow, 23, 35));
        flows.push(syn(shadow, 2323, 10));
        flows.push(syn(shadow, 7547, 6));
        let enterprise = Ipv4Addr::new(198, 51, 9, 9);
        flows.push(syn(enterprise, 1433, 30));
        flows.push(syn(enterprise, 3389, 30));
        flows.push(syn(enterprise, 445, 30));
        vec![HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows,
        }]
    }

    #[test]
    fn model_trains_on_matched_devices_only() {
        let db = db();
        let vectors = extract(&traffic(), &db, 4);
        let model = FingerprintModel::train(&vectors).unwrap();
        assert_eq!(model.trained_on(), 3);
        // All three trainers share dominant port 23 → one group whose
        // histogram concentrates on the IoT ports.
        assert_eq!(model.num_groups(), 1);
        let (dominant, hist) = &model.groups[0];
        assert_eq!(*dominant, 23);
        assert!(hist.contains_key(&7547));
        assert!(!hist.contains_key(&1433));
    }

    #[test]
    fn shadow_iot_scores_high_noise_scores_low() {
        let db = db();
        let vectors = extract(&traffic(), &db, 4);
        let model = FingerprintModel::train(&vectors).unwrap();
        let shadow = &vectors[&Ipv4Addr::new(198, 51, 7, 7)];
        let enterprise = &vectors[&Ipv4Addr::new(198, 51, 9, 9)];
        assert!(model.score(shadow) > 0.9, "shadow {}", model.score(shadow));
        assert!(
            model.score(enterprise) < 0.45,
            "enterprise {}",
            model.score(enterprise)
        );
    }

    #[test]
    fn candidates_flag_only_the_shadow_device() {
        let db = db();
        let vectors = extract(&traffic(), &db, 4);
        let model = FingerprintModel::train(&vectors).unwrap();
        let candidates = candidate_iot_devices(&model, &vectors, 0.7, 5);
        assert_eq!(candidates.len(), 1, "{candidates:#?}");
        assert_eq!(candidates[0].ip, Ipv4Addr::new(198, 51, 7, 7));
        // Matched devices are never candidates, whatever their score.
        assert!(candidates.iter().all(|c| db.lookup_ip(c.ip).is_none()));
    }

    #[test]
    fn min_packets_gate_applies() {
        let db = db();
        let vectors = extract(&traffic(), &db, 4);
        let model = FingerprintModel::train(&vectors).unwrap();
        assert!(candidate_iot_devices(&model, &vectors, 0.7, 10_000).is_empty());
    }

    #[test]
    fn empty_training_set_returns_none() {
        let vectors = extract(&traffic(), &DeviceDb::new(), 4);
        assert!(FingerprintModel::train(&vectors).is_none());
    }

    #[test]
    fn mix_similarity_bounds() {
        assert!((mix_similarity3([1.0, 0.0, 0.0], [1.0, 0.0, 0.0]) - 1.0).abs() < 1e-9);
        assert!(mix_similarity3([1.0, 0.0, 0.0], [0.0, 1.0, 0.0]).abs() < 1e-9);
        assert!((mix_similarity5([0.2; 5], [0.2; 5]) - 1.0).abs() < 1e-9);
    }
}
