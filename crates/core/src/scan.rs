//! Scanning analysis (§IV-C): Table V, the hourly series of Fig 9, the
//! top-5 protocol series of Fig 10, and the §IV-C statistics.

use crate::analysis::{realm_idx, Analysis, RealmSeries, ServiceKey, TOP5_SERVICES};
use crate::stats::{pearson, Correlation};
use iotscope_devicedb::Realm;
use iotscope_net::ports::ScanService;

/// One row of Table V.
#[derive(Debug, Clone, PartialEq)]
pub struct ServiceRow {
    /// The service group (`None` = the unnamed-port tail).
    pub service: Option<ScanService>,
    /// Row label as in the paper (e.g. `"Telnet /23/2323/23231"`).
    pub label: String,
    /// Total scan packets to the group.
    pub packets: u64,
    /// Percentage of all TCP scanning packets.
    pub pct: f64,
    /// Consumer share of the group's packets (%).
    pub consumer_pct: f64,
    /// Consumer devices scanning the group.
    pub consumer_devices: usize,
    /// CPS share of the group's packets (%).
    pub cps_pct: f64,
    /// CPS devices scanning the group.
    pub cps_devices: usize,
}

/// Table V: per-service scanning statistics, named groups sorted by
/// packets descending, with the unnamed tail last.
pub fn protocol_table(analysis: &Analysis) -> Vec<ServiceRow> {
    let total: u64 = analysis
        .scan_services
        .values()
        .map(|s| s.packets[0] + s.packets[1])
        .sum();
    let mut named: Vec<ServiceRow> = Vec::new();
    let mut tail: Option<ServiceRow> = None;
    for (key, stat) in &analysis.scan_services {
        let pkts = stat.packets[0] + stat.packets[1];
        let row = ServiceRow {
            service: match key {
                ServiceKey::Named(s) => Some(*s),
                ServiceKey::Other => None,
            },
            label: match key {
                ServiceKey::Named(s) => s.table_label(),
                ServiceKey::Other => "Other ports".to_owned(),
            },
            packets: pkts,
            pct: pct(pkts, total),
            consumer_pct: pct(stat.packets[0], pkts),
            consumer_devices: stat.devices[0].len(),
            cps_pct: pct(stat.packets[1], pkts),
            cps_devices: stat.devices[1].len(),
        };
        match key {
            ServiceKey::Named(_) => named.push(row),
            ServiceKey::Other => tail = Some(row),
        }
    }
    named.sort_by(|a, b| b.packets.cmp(&a.packets).then(a.label.cmp(&b.label)));
    if let Some(t) = tail {
        named.push(t);
    }
    named
}

/// Cumulative percentage of scan packets covered by the named Table V
/// groups (the paper's CP = 93.3%).
pub fn named_coverage(analysis: &Analysis) -> f64 {
    let mut named = 0u64;
    let mut total = 0u64;
    for (key, stat) in &analysis.scan_services {
        let pkts = stat.packets[0] + stat.packets[1];
        total += pkts;
        if matches!(key, ServiceKey::Named(_)) {
            named += pkts;
        }
    }
    pct(named, total)
}

/// The hourly TCP-scan series of one realm (Fig 9a/9b).
pub fn hourly(analysis: &Analysis, realm: Realm) -> &RealmSeries {
    &analysis.tcp_scan[realm_idx(realm)]
}

/// Fig 10: per-interval packets for the five top services, in
/// [`TOP5_SERVICES`] order.
pub fn top5_series(analysis: &Analysis) -> &[[u64; 5]] {
    &analysis.top5_series
}

/// §IV-C: correlation between the hourly number of scanning devices and
/// the hourly scan packets (the paper finds r ≈ 0: heavy hitters decouple
/// the two).
pub fn scanners_vs_packets_correlation(analysis: &Analysis) -> Option<Correlation> {
    let mut devices = vec![0f64; analysis.hours as usize];
    let mut packets = vec![0f64; analysis.hours as usize];
    for r in 0..2 {
        for i in 0..analysis.hours as usize {
            devices[i] += analysis.tcp_scan[r].devices[i] as f64;
            packets[i] += analysis.tcp_scan[r].packets[i] as f64;
        }
    }
    pearson(&devices, &packets)
}

/// Intervals whose distinct-port count for `realm` exceeds
/// `factor` × the realm's median — the Fig 9b interval-119 detector.
pub fn port_spike_intervals(analysis: &Analysis, realm: Realm, factor: f64) -> Vec<u32> {
    let ports = &analysis.tcp_scan[realm_idx(realm)].dst_ports;
    let mut sorted: Vec<u64> = ports.to_vec();
    sorted.sort_unstable();
    // Standard median: mean of the two middle elements for even-length
    // series. The window has 144 intervals, so `sorted[len / 2]` alone
    // would systematically pick the upper-middle value and bias the
    // spike threshold high.
    let median = match sorted.len() {
        0 => 0.0,
        n if n % 2 == 1 => sorted[n / 2] as f64,
        n => (sorted[n / 2 - 1] + sorted[n / 2]) as f64 / 2.0,
    };
    ports
        .iter()
        .enumerate()
        .filter(|(_, p)| **p as f64 > factor * median.max(1.0))
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

/// Aggregate scanning facts (§IV-C's headline numbers).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ScanSummary {
    /// Total TCP scanning packets.
    pub tcp_packets: u64,
    /// Devices that emitted TCP scans.
    pub tcp_devices: usize,
    /// Consumer share of TCP scanning devices.
    pub consumer_device_share: f64,
    /// Mean hourly TCP scan packets, consumer.
    pub consumer_mean_packets: f64,
    /// Mean hourly TCP scan packets, CPS.
    pub cps_mean_packets: f64,
    /// Mean hourly distinct destinations, consumer.
    pub consumer_mean_dsts: f64,
    /// Mean hourly distinct destinations, CPS.
    pub cps_mean_dsts: f64,
    /// Mean hourly distinct ports, consumer.
    pub consumer_mean_ports: f64,
    /// Mean hourly distinct ports, CPS.
    pub cps_mean_ports: f64,
    /// ICMP scanning packets.
    pub icmp_packets: u64,
    /// Devices that emitted ICMP scans.
    pub icmp_devices: usize,
    /// Consumer share of ICMP scanning packets.
    pub icmp_consumer_packet_share: f64,
}

/// Compute the scanning summary.
pub fn summary(analysis: &Analysis) -> ScanSummary {
    use crate::classify::TrafficClass;
    let mean = |v: &[u64]| {
        if v.is_empty() {
            0.0
        } else {
            v.iter().sum::<u64>() as f64 / v.len() as f64
        }
    };
    let mut tcp_devices = 0usize;
    let mut c_tcp_devices = 0usize;
    let mut icmp_devices = 0usize;
    let mut icmp_packets = 0u64;
    let mut icmp_consumer = 0u64;
    for obs in analysis.devices.rows() {
        if obs.packets(TrafficClass::TcpScan) > 0 {
            tcp_devices += 1;
            if obs.realm == Realm::Consumer {
                c_tcp_devices += 1;
            }
        }
        let ip = obs.packets(TrafficClass::IcmpScan);
        if ip > 0 {
            icmp_devices += 1;
            icmp_packets += ip;
            if obs.realm == Realm::Consumer {
                icmp_consumer += ip;
            }
        }
    }
    let consumer = &analysis.tcp_scan[0];
    let cps = &analysis.tcp_scan[1];
    ScanSummary {
        tcp_packets: consumer.packets.iter().sum::<u64>() + cps.packets.iter().sum::<u64>(),
        tcp_devices,
        consumer_device_share: if tcp_devices == 0 {
            0.0
        } else {
            c_tcp_devices as f64 / tcp_devices as f64
        },
        consumer_mean_packets: mean(&consumer.packets),
        cps_mean_packets: mean(&cps.packets),
        consumer_mean_dsts: mean(&consumer.dst_ips),
        cps_mean_dsts: mean(&cps.dst_ips),
        consumer_mean_ports: mean(&consumer.dst_ports),
        cps_mean_ports: mean(&cps.dst_ports),
        icmp_packets,
        icmp_devices,
        icmp_consumer_packet_share: if icmp_packets == 0 {
            0.0
        } else {
            icmp_consumer as f64 / icmp_packets as f64
        },
    }
}

fn pct(part: u64, total: u64) -> f64 {
    if total == 0 {
        0.0
    } else {
        100.0 * part as f64 / total as f64
    }
}

/// Index of a service in [`TOP5_SERVICES`], if present.
pub fn top5_index(service: ScanService) -> Option<usize> {
    TOP5_SERVICES.iter().position(|s| *s == service)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::analysis::Analyzer;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{
        ConsumerKind, CountryCode, CpsService, DeviceDb, DeviceId, IotDevice, IspId,
    };
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::{IcmpType, TcpFlags};
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;
    use std::net::Ipv4Addr;

    fn db() -> DeviceDb {
        DeviceDb::from_devices([
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(1, 0, 0, 1),
                profile: DeviceProfile::Consumer(ConsumerKind::Router),
                country: CountryCode::from_code("RU").unwrap(),
                isp: IspId(0),
            },
            IotDevice {
                id: DeviceId(0),
                ip: Ipv4Addr::new(2, 0, 0, 1),
                profile: DeviceProfile::Cps(vec![CpsService::NiagaraFox]),
                country: CountryCode::from_code("CA").unwrap(),
                isp: IspId(1),
            },
        ])
    }

    fn syn(src: [u8; 4], port: u16, pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            port,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
    }

    fn analysis() -> Analysis {
        let db = Box::leak(Box::new(db()));
        let mut an = Analyzer::new(db, 4);
        an.ingest_hour(&HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows: vec![
                syn([1, 0, 0, 1], 23, 10),
                syn([1, 0, 0, 1], 80, 3),
                syn([2, 0, 0, 1], 3387, 6),
                syn([2, 0, 0, 1], 4444, 1),
                FlowTuple::icmp(
                    Ipv4Addr::new(1, 0, 0, 1),
                    Ipv4Addr::new(44, 9, 9, 9),
                    IcmpType::EchoRequest,
                ),
            ],
        });
        an.finish()
    }

    #[test]
    fn table_v_rows_sorted_with_tail_last() {
        let a = analysis();
        let rows = protocol_table(&a);
        assert_eq!(rows[0].service, Some(ScanService::Telnet));
        assert_eq!(rows[0].packets, 10);
        assert!((rows[0].pct - 50.0).abs() < 1e-9);
        assert!((rows[0].consumer_pct - 100.0).abs() < 1e-9);
        assert_eq!(rows[0].consumer_devices, 1);
        assert_eq!(rows[0].cps_devices, 0);
        let last = rows.last().unwrap();
        assert_eq!(last.service, None);
        assert_eq!(last.packets, 1);
        // Coverage: 19 of 20 packets named.
        assert!((named_coverage(&a) - 95.0).abs() < 1e-9);
    }

    #[test]
    fn top5_series_tracks_named_services() {
        let a = analysis();
        let s = top5_series(&a);
        assert_eq!(s[0][0], 10); // Telnet
        assert_eq!(s[0][1], 3); // HTTP
        assert_eq!(s[0][3], 6); // BackroomNet
        assert_eq!(top5_index(ScanService::Telnet), Some(0));
        assert_eq!(top5_index(ScanService::Cwmp), Some(4));
        assert_eq!(top5_index(ScanService::Ftp), None);
    }

    #[test]
    fn summary_counts() {
        let a = analysis();
        let s = summary(&a);
        assert_eq!(s.tcp_packets, 20);
        assert_eq!(s.tcp_devices, 2);
        assert!((s.consumer_device_share - 0.5).abs() < 1e-9);
        assert_eq!(s.icmp_packets, 1);
        assert_eq!(s.icmp_devices, 1);
        assert!((s.icmp_consumer_packet_share - 1.0).abs() < 1e-9);
        assert!(s.consumer_mean_packets > 0.0);
    }

    #[test]
    fn hourly_series_shape() {
        let a = analysis();
        let c = hourly(&a, Realm::Consumer);
        assert_eq!(c.packets[0], 13);
        assert_eq!(c.dst_ports[0], 2);
        let x = hourly(&a, Realm::Cps);
        assert_eq!(x.packets[0], 7);
        assert_eq!(x.dst_ports[0], 2);
    }

    #[test]
    fn port_spike_detector_finds_outlier() {
        let dbv = db();
        let mut an = Analyzer::new(&dbv, 8);
        // Baseline hours with 2 ports, one hour with 60 distinct ports.
        for i in 1..=8u32 {
            let flows: Vec<FlowTuple> = if i == 5 {
                (0..60u16).map(|p| syn([1, 0, 0, 1], 1000 + p, 1)).collect()
            } else {
                vec![syn([1, 0, 0, 1], 23, 1), syn([1, 0, 0, 1], 80, 1)]
            };
            an.ingest_hour(&HourTraffic {
                interval: i,
                hour: UnixHour::new(u64::from(i)),
                flows,
            });
        }
        let a = an.finish();
        let spikes = port_spike_intervals(&a, Realm::Consumer, 5.0);
        assert_eq!(spikes, vec![5]);
    }

    #[test]
    fn port_spike_median_is_standard_for_even_length_series() {
        // Regression: with an even number of intervals (the paper window
        // has 144) the detector used the upper-middle element as the
        // median, inflating the threshold and hiding spikes like the
        // Fig 9b interval-119 sweep. Eight hours whose port counts sort
        // to [1,1,1,1,3,3,3,30]: true median 2, upper-middle 3.
        let dbv = db();
        let mut an = Analyzer::new(&dbv, 8);
        for i in 1..=8u32 {
            let ports: u16 = match i {
                1..=4 => 1,
                5..=7 => 3,
                _ => 30,
            };
            let flows: Vec<FlowTuple> =
                (0..ports).map(|p| syn([1, 0, 0, 1], 1000 + p, 1)).collect();
            an.ingest_hour(&HourTraffic {
                interval: i,
                hour: UnixHour::new(u64::from(i)),
                flows,
            });
        }
        let a = an.finish();
        // 30 > 12 * 2 but not > 12 * 3: the biased median missed this.
        assert_eq!(port_spike_intervals(&a, Realm::Consumer, 12.0), vec![8]);
    }

    #[test]
    fn correlation_none_when_constant() {
        let dbv = db();
        let a = Analyzer::new(&dbv, 4).finish();
        assert!(scanners_vs_packets_correlation(&a).is_none());
    }
}
