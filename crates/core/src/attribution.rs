//! Malware attribution for tailored remediation (§VI).
//!
//! The paper's second follow-up: "the objective to attribute such
//! exploitations to certain malware variants … exploring formal
//! correlation approaches between passive measurements and malware
//! network traffic samples to fortify the attribution evidence."
//!
//! Attribution here combines two signals per (device, family):
//!
//! 1. **direct contact** — a sandbox sample of the family communicated
//!    with the device's address (the §V-B join), and
//! 2. **behavioral corroboration** — the ports the device scans at the
//!    darknet overlap the ports the family's samples use.
//!
//! A device with both signals gets a high-confidence attribution; either
//! alone yields a weaker one.

use crate::behavior::BehaviorVector;
use iotscope_devicedb::{DeviceDb, DeviceId};
use iotscope_intel::family::FamilyResolver;
use iotscope_intel::{MalwareDb, MalwareFamily};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use std::net::Ipv4Addr;

/// Attribution confidence signals.
#[derive(Debug, Clone, PartialEq)]
pub struct AttributionEvidence {
    /// A sample of the family contacted the device directly.
    pub direct_contact: bool,
    /// Darknet-scanned ports that the family's samples also use.
    pub port_overlap: Vec<u16>,
    /// Size of the family's port profile.
    pub family_ports: usize,
}

/// One attribution finding.
#[derive(Debug, Clone, PartialEq)]
pub struct Attribution {
    /// The attributed device.
    pub device: DeviceId,
    /// The malware family.
    pub family: MalwareFamily,
    /// Confidence score in `0.0..=1.0`.
    pub score: f64,
    /// The underlying evidence.
    pub evidence: AttributionEvidence,
}

/// Per-family network port profiles mined from the sandbox corpus.
#[derive(Debug, Clone, Default)]
pub struct FamilyProfiles {
    ports: BTreeMap<MalwareFamily, BTreeSet<u16>>,
}

impl FamilyProfiles {
    /// Mine the per-family contacted-port profiles from `malware`.
    pub fn mine(malware: &MalwareDb, resolver: &FamilyResolver) -> FamilyProfiles {
        let mut ports: BTreeMap<MalwareFamily, BTreeSet<u16>> = BTreeMap::new();
        for report in malware.iter() {
            let Some(family) = resolver.resolve(&report.sha256) else {
                continue;
            };
            ports
                .entry(family)
                .or_default()
                .extend(report.network.contacted_ports.iter().copied());
        }
        FamilyProfiles { ports }
    }

    /// The port profile of one family.
    pub fn ports(&self, family: MalwareFamily) -> Option<&BTreeSet<u16>> {
        self.ports.get(&family)
    }

    /// Families with a mined profile.
    pub fn families(&self) -> impl Iterator<Item = MalwareFamily> + '_ {
        self.ports.keys().copied()
    }
}

/// Minimum score for a finding to be reported.
pub const DEFAULT_MIN_SCORE: f64 = 0.35;

/// Attribute compromised devices to malware families.
///
/// `vectors` supplies per-device darknet behavior (see
/// [`crate::behavior::extract`]); only inventory-matched sources are
/// considered. Findings are sorted by descending score.
pub fn attribute(
    vectors: &HashMap<Ipv4Addr, BehaviorVector>,
    db: &DeviceDb,
    malware: &MalwareDb,
    resolver: &FamilyResolver,
    min_score: f64,
) -> Vec<Attribution> {
    let profiles = FamilyProfiles::mine(malware, resolver);
    let mut out = Vec::new();
    for v in vectors.values() {
        let Some(device) = v.device else { continue };
        let ip = db.device(device).ip;
        // Families with direct contact to this device.
        let direct: BTreeSet<MalwareFamily> = malware
            .hashes_contacting(ip)
            .iter()
            .filter_map(|h| resolver.resolve(h))
            .collect();
        // Candidate families: direct contacts plus any family whose port
        // profile intersects the device's scanned ports.
        let mut candidates: BTreeSet<MalwareFamily> = direct.clone();
        for family in profiles.families() {
            let Some(fports) = profiles.ports(family) else {
                continue;
            };
            if v.scan_ports.keys().any(|p| fports.contains(p)) {
                candidates.insert(family);
            }
        }
        for family in candidates {
            let fports = profiles.ports(family).cloned().unwrap_or_default();
            let overlap: Vec<u16> = v
                .scan_ports
                .keys()
                .filter(|p| fports.contains(*p))
                .copied()
                .collect();
            let direct_contact = direct.contains(&family);
            let overlap_score = if fports.is_empty() {
                0.0
            } else {
                overlap.len() as f64 / fports.len() as f64
            };
            let score = (if direct_contact { 0.6 } else { 0.0 } + 0.4 * overlap_score).min(1.0);
            if score < min_score {
                continue;
            }
            out.push(Attribution {
                device,
                family,
                score,
                evidence: AttributionEvidence {
                    direct_contact,
                    port_overlap: overlap,
                    family_ports: fports.len(),
                },
            });
        }
    }
    out.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .expect("scores are finite")
            .then(a.device.cmp(&b.device))
            .then(a.family.cmp(&b.family))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::behavior::extract;
    use iotscope_devicedb::device::DeviceProfile;
    use iotscope_devicedb::{ConsumerKind, CountryCode, IotDevice, IspId};
    use iotscope_intel::sandbox::{MalwareHash, NetworkActivity, SandboxReport, SystemActivity};
    use iotscope_net::flowtuple::FlowTuple;
    use iotscope_net::protocol::TcpFlags;
    use iotscope_net::time::UnixHour;
    use iotscope_telescope::HourTraffic;

    fn db() -> DeviceDb {
        DeviceDb::from_devices((1..=2u8).map(|i| IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::new(1, 0, 0, i),
            profile: DeviceProfile::Consumer(ConsumerKind::Router),
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }))
    }

    fn report(hash: &str, ips: &[[u8; 4]], ports: &[u16]) -> SandboxReport {
        SandboxReport {
            sha256: MalwareHash::from_hex(hash),
            network: NetworkActivity {
                contacted_ips: ips.iter().map(|o| Ipv4Addr::from(*o)).collect(),
                contacted_ports: ports.to_vec(),
                domains: vec![],
                payload_bytes: 1,
            },
            system: SystemActivity::default(),
        }
    }

    fn syn(src: [u8; 4], port: u16, pkts: u32) -> FlowTuple {
        FlowTuple::tcp(
            Ipv4Addr::from(src),
            Ipv4Addr::new(44, 0, 0, 1),
            40000,
            port,
            TcpFlags::SYN,
        )
        .with_packets(pkts)
    }

    fn setup() -> (DeviceDb, MalwareDb, FamilyResolver, Vec<HourTraffic>) {
        let dbv = db();
        let mut malware = MalwareDb::new();
        let mut resolver = FamilyResolver::new();
        // Ramnit contacts device 1 and uses ports {23, 2323}.
        malware.ingest(report("aa01", &[[1, 0, 0, 1]], &[23, 2323]));
        resolver.register(MalwareHash::from_hex("aa01"), MalwareFamily::Ramnit);
        // Zusy contacts nobody in the inventory; uses port 25.
        malware.ingest(report("bb02", &[[9, 9, 9, 9]], &[25]));
        resolver.register(MalwareHash::from_hex("bb02"), MalwareFamily::Zusy);
        // Device 1 scans Telnet (matching Ramnit's ports); device 2 scans
        // SMTP (matching Zusy's profile but without direct contact).
        let traffic = vec![HourTraffic {
            interval: 1,
            hour: UnixHour::new(0),
            flows: vec![
                syn([1, 0, 0, 1], 23, 20),
                syn([1, 0, 0, 1], 2323, 5),
                syn([1, 0, 0, 2], 25, 30),
            ],
        }];
        (dbv, malware, resolver, traffic)
    }

    #[test]
    fn direct_contact_plus_ports_scores_highest() {
        let (dbv, malware, resolver, traffic) = setup();
        let vectors = extract(&traffic, &dbv, 4);
        let findings = attribute(&vectors, &dbv, &malware, &resolver, DEFAULT_MIN_SCORE);
        let top = &findings[0];
        assert_eq!(top.device, DeviceId(0));
        assert_eq!(top.family, MalwareFamily::Ramnit);
        assert!(top.evidence.direct_contact);
        assert_eq!(top.evidence.port_overlap, vec![23, 2323]);
        assert!((top.score - 1.0).abs() < 1e-9);
    }

    #[test]
    fn behavioral_only_attribution_is_weaker() {
        let (dbv, malware, resolver, traffic) = setup();
        let vectors = extract(&traffic, &dbv, 4);
        let findings = attribute(&vectors, &dbv, &malware, &resolver, DEFAULT_MIN_SCORE);
        let zusy = findings
            .iter()
            .find(|f| f.family == MalwareFamily::Zusy)
            .expect("behavioral-only match present");
        assert_eq!(zusy.device, DeviceId(1));
        assert!(!zusy.evidence.direct_contact);
        assert!((zusy.score - 0.4).abs() < 1e-9);
        // Ordering: strongest first.
        assert!(findings[0].score >= zusy.score);
    }

    #[test]
    fn min_score_filters_weak_findings() {
        let (dbv, malware, resolver, traffic) = setup();
        let vectors = extract(&traffic, &dbv, 4);
        let strict = attribute(&vectors, &dbv, &malware, &resolver, 0.5);
        assert_eq!(strict.len(), 1);
        assert_eq!(strict[0].family, MalwareFamily::Ramnit);
    }

    #[test]
    fn profiles_mined_per_family() {
        let (_, malware, resolver, _) = setup();
        let profiles = FamilyProfiles::mine(&malware, &resolver);
        assert_eq!(
            profiles.ports(MalwareFamily::Ramnit).unwrap(),
            &BTreeSet::from([23u16, 2323])
        );
        assert_eq!(
            profiles.ports(MalwareFamily::Zusy).unwrap(),
            &BTreeSet::from([25u16])
        );
        assert!(profiles.ports(MalwareFamily::Vupa).is_none());
        assert_eq!(profiles.families().count(), 2);
    }

    #[test]
    fn unmatched_sources_are_never_attributed() {
        let (dbv, mut malware, resolver, mut traffic) = setup();
        // A noise source scanning Ramnit-like ports, contacted directly.
        malware.ingest(report("aa01", &[[7, 7, 7, 7]], &[23]));
        traffic[0].flows.push(syn([7, 7, 7, 7], 23, 50));
        let vectors = extract(&traffic, &dbv, 4);
        let findings = attribute(&vectors, &dbv, &malware, &resolver, 0.1);
        assert!(findings.iter().all(|f| f.device.0 < 2));
    }
}
