//! Inventory persistence: a line-oriented text format carrying the device
//! database together with the ISP directory it references.
//!
//! The paper's operational vision (§VI) includes sharing IoT device
//! information between parties; this format is the workspace's exchange
//! vehicle, also used by the `iotscope` CLI to decouple simulation from
//! analysis. It is deliberately dependency-free:
//!
//! ```text
//! #iotscope-inventory v1
//! meta|<key>|<value>
//! isp|<id>|<country-code>|<name>
//! dev|<ip>|<country-code>|<isp-id>|consumer:<Kind>
//! dev|<ip>|<country-code>|<isp-id>|cps:<Service>[+<Service>…]
//! ```

use crate::db::DeviceDb;
use crate::device::{DeviceId, DeviceProfile, IotDevice};
use crate::geo::CountryCode;
use crate::isp::{IspId, IspRegistry};
use crate::taxonomy::{ConsumerKind, CpsService};
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, BufReader, BufWriter, Write};
use std::path::Path;

const HEADER: &str = "#iotscope-inventory v1";

/// Errors from reading an inventory file.
#[derive(Debug)]
#[non_exhaustive]
pub enum InventoryIoError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// The file is not an inventory file or is malformed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl fmt::Display for InventoryIoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InventoryIoError::Io(e) => write!(f, "i/o error: {e}"),
            InventoryIoError::Parse { line, message } => {
                write!(f, "invalid inventory file at line {line}: {message}")
            }
        }
    }
}

impl Error for InventoryIoError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            InventoryIoError::Io(e) => Some(e),
            InventoryIoError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for InventoryIoError {
    fn from(e: std::io::Error) -> Self {
        InventoryIoError::Io(e)
    }
}

/// A loaded inventory: devices, the ISP directory, and the metadata map.
#[derive(Debug)]
pub struct LoadedInventory {
    /// The device database.
    pub db: DeviceDb,
    /// The ISP directory (name/country lookups).
    pub isps: IspRegistry,
    /// Free-form `meta` entries (e.g. `seed`, `scale`).
    pub meta: BTreeMap<String, String>,
}

/// Write `db` (+ the subset of `isps` it references) to `path`.
///
/// # Errors
///
/// Propagates I/O failures.
pub fn save<P: AsRef<Path>>(
    path: P,
    db: &DeviceDb,
    isps: &IspRegistry,
    meta: &BTreeMap<String, String>,
) -> Result<(), InventoryIoError> {
    let file = std::fs::File::create(path)?;
    let mut w = BufWriter::new(file);
    writeln!(w, "{HEADER}")?;
    for (k, v) in meta {
        writeln!(w, "meta|{k}|{v}")?;
    }
    // Only the ISPs that devices actually reference, renumbered densely.
    let mut used: BTreeMap<IspId, u32> = BTreeMap::new();
    for d in db.iter() {
        let next = used.len() as u32;
        used.entry(d.isp).or_insert(next);
    }
    let mut rows: Vec<(u32, IspId)> = used.iter().map(|(id, n)| (*n, *id)).collect();
    rows.sort();
    for (n, id) in rows {
        let isp = isps.isp(id);
        writeln!(w, "isp|{n}|{}|{}", isp.country().code(), isp.name())?;
    }
    for d in db.iter() {
        let profile = match &d.profile {
            DeviceProfile::Consumer(kind) => format!("consumer:{kind:?}"),
            DeviceProfile::Cps(services) => {
                let names: Vec<String> = services.iter().map(|s| format!("{s:?}")).collect();
                format!("cps:{}", names.join("+"))
            }
        };
        writeln!(
            w,
            "dev|{}|{}|{}|{profile}",
            d.ip,
            d.country.code(),
            used[&d.isp]
        )?;
    }
    w.flush()?;
    Ok(())
}

/// Load an inventory written by [`save`].
///
/// # Errors
///
/// Returns [`InventoryIoError::Parse`] on malformed content with the
/// offending line number.
pub fn load<P: AsRef<Path>>(path: P) -> Result<LoadedInventory, InventoryIoError> {
    let file = std::fs::File::open(path)?;
    let reader = BufReader::new(file);
    let mut lines = reader.lines();
    let first = lines
        .next()
        .transpose()?
        .ok_or_else(|| parse_err(1, "empty file"))?;
    if first.trim() != HEADER {
        return Err(parse_err(1, format!("bad header {first:?}")));
    }
    let mut meta = BTreeMap::new();
    let mut isp_rows: Vec<(u32, CountryCode, String)> = Vec::new();
    let mut dev_rows: Vec<(std::net::Ipv4Addr, CountryCode, u32, DeviceProfile)> = Vec::new();
    for (no, line) in lines.enumerate() {
        let lineno = no + 2;
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let fields: Vec<&str> = line.split('|').collect();
        match fields[0] {
            "meta" => {
                if fields.len() != 3 {
                    return Err(parse_err(lineno, "meta needs 2 fields"));
                }
                meta.insert(fields[1].to_owned(), fields[2].to_owned());
            }
            "isp" => {
                if fields.len() != 4 {
                    return Err(parse_err(lineno, "isp needs 3 fields"));
                }
                let id: u32 = fields[1]
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad isp id {:?}", fields[1])))?;
                let country = parse_country(fields[2], lineno)?;
                isp_rows.push((id, country, fields[3].to_owned()));
            }
            "dev" => {
                if fields.len() != 5 {
                    return Err(parse_err(lineno, "dev needs 4 fields"));
                }
                let ip: std::net::Ipv4Addr = fields[1]
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad ip {:?}", fields[1])))?;
                let country = parse_country(fields[2], lineno)?;
                let isp: u32 = fields[3]
                    .parse()
                    .map_err(|_| parse_err(lineno, format!("bad isp ref {:?}", fields[3])))?;
                let profile = parse_profile(fields[4], lineno)?;
                dev_rows.push((ip, country, isp, profile));
            }
            other => {
                return Err(parse_err(lineno, format!("unknown record kind {other:?}")));
            }
        }
    }
    // Build the ISP registry in saved-id order.
    isp_rows.sort_by_key(|(id, _, _)| *id);
    for (expect, (id, _, _)) in isp_rows.iter().enumerate() {
        if *id != expect as u32 {
            return Err(parse_err(0, format!("isp ids not dense at {id}")));
        }
    }
    let n_isps = isp_rows.len() as u32;
    let isps = IspRegistry::from_names(
        isp_rows
            .into_iter()
            .map(|(_, country, name)| (name, country)),
    );
    let mut db = DeviceDb::new();
    for (ip, country, isp, profile) in dev_rows {
        if isp >= n_isps {
            return Err(parse_err(0, format!("device references unknown isp {isp}")));
        }
        db.push(IotDevice {
            id: DeviceId(0),
            ip,
            profile,
            country,
            isp: IspId(isp),
        });
    }
    Ok(LoadedInventory { db, isps, meta })
}

fn parse_err<S: Into<String>>(line: usize, message: S) -> InventoryIoError {
    InventoryIoError::Parse {
        line,
        message: message.into(),
    }
}

fn parse_country(code: &str, line: usize) -> Result<CountryCode, InventoryIoError> {
    CountryCode::from_code(code).ok_or_else(|| parse_err(line, format!("unknown country {code:?}")))
}

fn parse_profile(text: &str, line: usize) -> Result<DeviceProfile, InventoryIoError> {
    if let Some(kind) = text.strip_prefix("consumer:") {
        let kind = ConsumerKind::ALL
            .into_iter()
            .find(|k| format!("{k:?}") == kind)
            .ok_or_else(|| parse_err(line, format!("unknown consumer kind {kind:?}")))?;
        return Ok(DeviceProfile::Consumer(kind));
    }
    if let Some(list) = text.strip_prefix("cps:") {
        let mut services = Vec::new();
        for name in list.split('+') {
            let svc = CpsService::ALL
                .into_iter()
                .find(|s| format!("{s:?}") == name)
                .ok_or_else(|| parse_err(line, format!("unknown cps service {name:?}")))?;
            services.push(svc);
        }
        if services.is_empty() {
            return Err(parse_err(line, "cps profile needs at least one service"));
        }
        return Ok(DeviceProfile::Cps(services));
    }
    Err(parse_err(line, format!("unknown profile {text:?}")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{InventoryBuilder, SynthConfig};
    use std::path::PathBuf;

    fn tmpfile(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("iotscope-inv-{name}-{}.tsv", std::process::id()))
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let out = InventoryBuilder::new(SynthConfig::small(3)).build();
        let path = tmpfile("roundtrip");
        let mut meta = BTreeMap::new();
        meta.insert("seed".to_owned(), "3".to_owned());
        meta.insert("scale".to_owned(), "0.01".to_owned());
        save(&path, &out.db, &out.isps, &meta).unwrap();

        let loaded = load(&path).unwrap();
        assert_eq!(loaded.meta["seed"], "3");
        assert_eq!(loaded.meta["scale"], "0.01");
        assert_eq!(loaded.db.len(), out.db.len());
        for (a, b) in out.db.iter().zip(loaded.db.iter()) {
            assert_eq!(a.ip, b.ip);
            assert_eq!(a.country, b.country);
            assert_eq!(a.profile, b.profile);
            // ISP ids are renumbered, but resolve to the same name/country.
            assert_eq!(out.isps.isp(a.isp).name(), loaded.isps.isp(b.isp).name());
            assert_eq!(
                out.isps.isp(a.isp).country(),
                loaded.isps.isp(b.isp).country()
            );
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_bad_header_and_garbage() {
        let path = tmpfile("badheader");
        std::fs::write(&path, "not an inventory\n").unwrap();
        assert!(matches!(
            load(&path),
            Err(InventoryIoError::Parse { line: 1, .. })
        ));
        std::fs::write(&path, format!("{HEADER}\nbogus|1|2\n")).unwrap();
        let err = load(&path).unwrap_err();
        assert!(format!("{err}").contains("unknown record kind"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_reports_line_numbers() {
        let path = tmpfile("lineno");
        std::fs::write(
            &path,
            format!("{HEADER}\nisp|0|US|Comcast\ndev|not-an-ip|US|0|consumer:Router\n"),
        )
        .unwrap();
        match load(&path).unwrap_err() {
            InventoryIoError::Parse { line, message } => {
                assert_eq!(line, 3);
                assert!(message.contains("bad ip"));
            }
            other => panic!("unexpected {other:?}"),
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn load_rejects_unknown_profile_and_dangling_isp() {
        let path = tmpfile("profile");
        std::fs::write(
            &path,
            format!("{HEADER}\nisp|0|US|Comcast\ndev|1.2.3.4|US|0|consumer:Fridge\n"),
        )
        .unwrap();
        assert!(format!("{}", load(&path).unwrap_err()).contains("unknown consumer kind"));
        std::fs::write(
            &path,
            format!("{HEADER}\nisp|0|US|Comcast\ndev|1.2.3.4|US|9|consumer:Router\n"),
        )
        .unwrap();
        assert!(format!("{}", load(&path).unwrap_err()).contains("unknown isp"));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn cps_profiles_roundtrip_multi_service() {
        let path = tmpfile("cps");
        std::fs::write(
            &path,
            format!(
                "{HEADER}\nisp|0|CN|China Telecom\ndev|1.2.3.4|CN|0|cps:EthernetIp+ModbusTcp\n"
            ),
        )
        .unwrap();
        let loaded = load(&path).unwrap();
        let dev = loaded.db.iter().next().unwrap();
        assert_eq!(
            dev.profile.cps_services().unwrap(),
            &[CpsService::EthernetIp, CpsService::ModbusTcp]
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let path = tmpfile("comments");
        std::fs::write(
            &path,
            format!(
                "{HEADER}\n\n# a comment\nisp|0|US|Comcast\n\ndev|1.2.3.4|US|0|consumer:Printer\n"
            ),
        )
        .unwrap();
        let loaded = load(&path).unwrap();
        assert_eq!(loaded.db.len(), 1);
        std::fs::remove_file(&path).unwrap();
    }
}
