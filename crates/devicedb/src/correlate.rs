//! Cache-friendly exact-IP correlation index.
//!
//! Correlating every darknet flow's source address against the ~331k
//! device inventory (§III-B) is the per-packet hot path of the whole
//! system, and a `HashMap<Ipv4Addr, DeviceId>` probe pays a hash, a
//! bucket walk over 16-byte entries scattered across the heap, and —
//! for the realm — a further `&IotDevice` pointer chase. The
//! [`CorrelationIndex`] replaces all of that with a two-level table:
//!
//! * **Level 1**: 65,536 `/16` buckets, stored as 65,537 prefix-sum
//!   offsets (`bucket_starts`) into the suffix array. Indexing it is one
//!   shift and one array load; the whole level is 256 KiB and mostly
//!   cache-resident under real traffic (darknet sources cluster heavily
//!   by prefix).
//! * **Level 2**: one packed 8-byte `Slot` per device — the low 16
//!   bits of the address (sorted within its bucket), a one-byte realm
//!   tag, and the dense intern index (== `DeviceId` value, see
//!   [`DeviceDb::index_of`](crate::db::DeviceDb::index_of)). A bucket
//!   binary search touches at most a few cache lines even for a fully
//!   dense `/16`, and because the realm and dense index ride in the
//!   same slot the search already loaded, resolving a hit costs no
//!   further memory access — ingest never touches an [`IotDevice`].
//!
//! Total size is 8 bytes per device plus the fixed 256 KiB bucket
//! table, versus ~50 bytes per `HashMap` entry plus the device deref.

use crate::device::IotDevice;
use crate::taxonomy::Realm;
use std::net::Ipv4Addr;

/// Number of `/16` buckets.
const BUCKETS: usize = 1 << 16;

/// Packed one-byte realm tags, so a lookup never dereferences a device.
const REALM_CONSUMER: u8 = 0;
const REALM_CPS: u8 = 1;

#[inline]
fn realm_tag(realm: Realm) -> u8 {
    match realm {
        Realm::Consumer => REALM_CONSUMER,
        Realm::Cps => REALM_CPS,
    }
}

#[inline]
fn tag_realm(tag: u8) -> Realm {
    if tag == REALM_CONSUMER {
        Realm::Consumer
    } else {
        Realm::Cps
    }
}

/// A /16-bucketed two-level exact-IP index over a device inventory,
/// resolving an address directly to `(dense intern index, Realm)`.
///
/// Built once per inventory (see
/// [`DeviceDb::correlation_index`](crate::db::DeviceDb::correlation_index))
/// and immutable afterwards. Addresses are assumed unique — which
/// [`DeviceDb::push`](crate::db::DeviceDb::push) guarantees by rejecting
/// duplicates; if a raw device slice contains duplicate addresses, the
/// one sorting first wins.
///
/// # Example
///
/// ```
/// use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
///
/// let out = InventoryBuilder::new(SynthConfig::small(1)).build();
/// let dev = out.db.iter().next().unwrap();
/// let (dense, realm) = out.db.correlate(dev.ip).unwrap();
/// assert_eq!(out.db.id_at(dense as usize), dev.id);
/// assert_eq!(realm, dev.realm());
/// ```
#[derive(Debug, Clone)]
pub struct CorrelationIndex {
    /// `bucket_starts[b]..bucket_starts[b+1]` is the slot range of
    /// /16 bucket `b` (65,537 prefix-sum entries).
    bucket_starts: Box<[u32]>,
    /// One packed entry per indexed address, suffix-sorted within each
    /// bucket.
    slots: Box<[Slot]>,
}

/// One indexed address: everything a correlation hit needs, packed into
/// the 8 bytes the binary search loads anyway.
#[derive(Debug, Clone, Copy)]
struct Slot {
    /// Low 16 bits of the address (the bucket sort key).
    suffix: u16,
    /// Packed realm tag ([`REALM_CONSUMER`]/[`REALM_CPS`]).
    realm: u8,
    /// Dense intern index of the owning device.
    dense: u32,
}

impl CorrelationIndex {
    /// Build the index over `devices`, where position in the slice is
    /// the dense intern index (the [`DeviceDb`](crate::db::DeviceDb)
    /// id contract).
    pub fn build(devices: &[IotDevice]) -> Self {
        // Sort (address, dense) pairs once; a full-address sort leaves
        // every bucket's suffixes sorted as well.
        let mut rows: Vec<(u32, u32)> = devices
            .iter()
            .enumerate()
            .map(|(i, d)| (u32::from(d.ip), i as u32))
            .collect();
        rows.sort_unstable();
        rows.dedup_by_key(|&mut (ip, _)| ip);

        let mut bucket_starts = vec![0u32; BUCKETS + 1];
        for &(ip, _) in &rows {
            bucket_starts[(ip >> 16) as usize + 1] += 1;
        }
        for b in 0..BUCKETS {
            bucket_starts[b + 1] += bucket_starts[b];
        }

        let slots: Vec<Slot> = rows
            .into_iter()
            .map(|(ip, di)| Slot {
                suffix: (ip & 0xffff) as u16,
                realm: realm_tag(devices[di as usize].realm()),
                dense: di,
            })
            .collect();
        CorrelationIndex {
            bucket_starts: bucket_starts.into_boxed_slice(),
            slots: slots.into_boxed_slice(),
        }
    }

    /// Number of indexed addresses.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Resolve `ip` to `(dense intern index, realm)` — the correlation
    /// hot path.
    #[inline]
    pub fn correlate(&self, ip: Ipv4Addr) -> Option<(u32, Realm)> {
        let ip = u32::from(ip);
        let bucket = (ip >> 16) as usize;
        let lo = self.bucket_starts[bucket] as usize;
        let hi = self.bucket_starts[bucket + 1] as usize;
        let run = &self.slots[lo..hi];
        let suffix = (ip & 0xffff) as u16;
        let i = run.binary_search_by_key(&suffix, |s| s.suffix).ok()?;
        let slot = run[i];
        Some((slot.dense, tag_realm(slot.realm)))
    }

    /// Resolve a whole block of source addresses (big-endian `u32`
    /// form) in one streaming merge-join pass, appending one result per
    /// input to `out` (cleared first), element-for-element identical to
    /// calling [`CorrelationIndex::correlate`] on each address.
    ///
    /// Written for the v3 store's decoded `src_ip` column, which is
    /// **ascending within a block** in delta-encoded files: ascending
    /// inputs visit /16 buckets monotonically, so the bucket bounds are
    /// recomputed only when the prefix changes (once per distinct /16
    /// per block, not once per record), and within a bucket the slot
    /// cursor only moves forward — a gallop (exponential probe + binary
    /// search) bounded by the distance actually advanced, instead of a
    /// full `log₂(bucket)` search per record. Runs of equal addresses
    /// (the common case: one scanner emits many flows, and the sort
    /// groups them) resolve by reusing the previous answer outright.
    ///
    /// Unsorted input stays **correct** — a descending step simply
    /// resets the bucket state and restarts the gallop from the bucket
    /// start — it just loses the monotonicity savings. Batched sinks
    /// can therefore feed every block through this path, delta-encoded
    /// or not.
    pub fn correlate_sorted_block(&self, ips: &[u32], out: &mut Vec<Option<(u32, Realm)>>) {
        out.clear();
        out.reserve(ips.len());
        let mut prev_ip = 0u32;
        let mut prev_res: Option<(u32, Realm)> = None;
        let mut have_prev = false;
        // Current bucket's slot window: `cursor` never moves backwards
        // while the input ascends within the bucket.
        let mut bucket = usize::MAX;
        let mut cursor = 0usize;
        let mut hi = 0usize;
        for &ip in ips {
            if have_prev && ip == prev_ip {
                out.push(prev_res);
                continue;
            }
            if have_prev && ip < prev_ip {
                // Non-ascending input (non-delta file): restart the
                // gallop; correctness over speed.
                bucket = usize::MAX;
            }
            let b = (ip >> 16) as usize;
            if b != bucket {
                bucket = b;
                cursor = self.bucket_starts[b] as usize;
                hi = self.bucket_starts[b + 1] as usize;
            }
            let suffix = (ip & 0xffff) as u16;
            cursor += gallop_lower_bound(&self.slots[cursor..hi], suffix);
            let res = if cursor < hi && self.slots[cursor].suffix == suffix {
                let slot = self.slots[cursor];
                Some((slot.dense, tag_realm(slot.realm)))
            } else {
                None
            };
            prev_ip = ip;
            prev_res = res;
            have_prev = true;
            out.push(res);
        }
    }
}

/// Index of the first slot whose suffix is `>= suffix` (`slots.len()`
/// when none is): an exponential probe followed by a binary search over
/// the probed window, so the cost is `O(log d)` in the distance `d`
/// from the front — the gallop step of the sorted-block merge-join,
/// where `d` is how far this record's suffix sits past the previous
/// record's slot.
#[inline]
fn gallop_lower_bound(slots: &[Slot], suffix: u16) -> usize {
    let n = slots.len();
    if n == 0 || slots[0].suffix >= suffix {
        return 0;
    }
    // Invariant: slots[lo].suffix < suffix.
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < n && slots[lo + step].suffix < suffix {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(n);
    // The answer is in (lo, hi]: binary-search the remainder.
    lo + 1 + slots[lo + 1..hi].partition_point(|s| s.suffix < suffix)
}

/// Maps a dense intern index to a contiguous device-space shard.
///
/// The parallel analysis pipeline partitions *device state* (not hours)
/// across workers: worker `s` owns every device whose dense index falls
/// in `range(s)`. Shard width is rounded up to a power of two so the
/// hot-path lookup is a single shift — no division, no modulo — which
/// keeps routing cost negligible next to the correlation probe that
/// produced the dense index in the first place.
///
/// Ranges are contiguous and ascending in shard order, which is the
/// contract that lets per-shard device tables be *concatenated* (not
/// columnar-added) into the final sorted table. See `DESIGN.md` §3e.
///
/// # Example
///
/// ```
/// use iotscope_devicedb::ShardMap;
///
/// let map = ShardMap::new(331_000, 4);
/// assert_eq!(map.shards(), 4);
/// let mut seen = 0u32;
/// for s in 0..map.shards() {
///     let r = map.range(s);
///     assert_eq!(r.start, seen);
///     seen = r.end;
/// }
/// assert_eq!(seen, 331_000);
/// assert_eq!(map.shard_of(0), 0);
/// // Power-of-two widths (here 131 072) can leave trailing shards
/// // empty: the last device lands in shard 2 and shard 3 is empty.
/// assert_eq!(map.shard_of(330_999), 2);
/// assert!(map.range(3).is_empty());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardMap {
    /// `dense >> shift` is the owning shard.
    shift: u32,
    /// Number of shards (≥ 1).
    shards: u32,
    /// Number of devices covered (exclusive upper bound on dense).
    len: u32,
}

impl ShardMap {
    /// Partition `num_devices` dense indices into `shards` contiguous
    /// ranges. `shards` is clamped to at least 1; a shard count larger
    /// than the device count simply leaves trailing shards empty.
    pub fn new(num_devices: usize, shards: usize) -> Self {
        let shards = shards.max(1) as u32;
        let len = u32::try_from(num_devices).expect("device count fits u32");
        // Power-of-two width >= ceil(len / shards), so every dense
        // index lands in 0..shards after the shift.
        let width = (len.div_ceil(shards)).next_power_of_two().max(1);
        ShardMap {
            shift: width.trailing_zeros(),
            shards,
            len,
        }
    }

    /// Number of shards.
    #[inline]
    pub fn shards(&self) -> usize {
        self.shards as usize
    }

    /// The owning shard of a dense intern index — the hot path: one
    /// shift, no branch.
    #[inline]
    pub fn shard_of(&self, dense: u32) -> usize {
        debug_assert!(dense < self.len, "dense {dense} out of inventory");
        (dense >> self.shift) as usize
    }

    /// The contiguous dense-index range owned by `shard` (possibly
    /// empty for trailing shards of a small inventory).
    pub fn range(&self, shard: usize) -> std::ops::Range<u32> {
        let width = 1u64 << self.shift;
        let start = (shard as u64 * width).min(u64::from(self.len)) as u32;
        let end = ((shard as u64 + 1) * width).min(u64::from(self.len)) as u32;
        start..end
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DeviceDb;
    use crate::device::{DeviceId, DeviceProfile};
    use crate::geo::CountryCode;
    use crate::isp::IspId;
    use crate::taxonomy::{ConsumerKind, CpsService};
    use proptest::prelude::*;
    use std::collections::HashMap;

    fn dev(ip: u32, realm: Realm) -> IotDevice {
        IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::from(ip),
            profile: match realm {
                Realm::Consumer => DeviceProfile::Consumer(ConsumerKind::Router),
                Realm::Cps => DeviceProfile::Cps(vec![CpsService::ModbusTcp]),
            },
            country: CountryCode::from_code("US").unwrap(),
            isp: IspId(0),
        }
    }

    /// Reference model: the pre-index `HashMap<Ipv4Addr, DeviceId>`.
    fn reference(db: &DeviceDb) -> HashMap<Ipv4Addr, (u32, Realm)> {
        db.iter().map(|d| (d.ip, (d.id.0, d.realm()))).collect()
    }

    #[test]
    fn empty_index_misses_everything() {
        let idx = CorrelationIndex::build(&[]);
        assert!(idx.is_empty());
        assert!(idx.correlate(Ipv4Addr::new(1, 2, 3, 4)).is_none());
        assert!(idx.correlate(Ipv4Addr::new(0, 0, 0, 0)).is_none());
        assert!(idx.correlate(Ipv4Addr::new(255, 255, 255, 255)).is_none());
    }

    #[test]
    fn singleton_and_dense_buckets_resolve() {
        // Bucket 0x0101 is a singleton; bucket 0x0a0a is fully dense
        // over 512 consecutive suffixes; everything else is empty.
        let mut devices = vec![dev(0x0101_0001, Realm::Consumer)];
        for s in 0..512u32 {
            devices.push(dev(
                0x0a0a_0000 + s,
                if s % 3 == 0 {
                    Realm::Cps
                } else {
                    Realm::Consumer
                },
            ));
        }
        let db = DeviceDb::from_devices(devices);
        let idx = CorrelationIndex::build(db.as_slice());
        for d in db.iter() {
            assert_eq!(idx.correlate(d.ip), Some((d.id.0, d.realm())), "{}", d.ip);
        }
        // Misses: same bucket wrong suffix, neighbouring empty buckets.
        assert!(idx.correlate(Ipv4Addr::from(0x0101_0002u32)).is_none());
        assert!(idx.correlate(Ipv4Addr::from(0x0a0a_0200u32)).is_none());
        assert!(idx.correlate(Ipv4Addr::from(0x0a0b_0000u32)).is_none());
        assert!(idx.correlate(Ipv4Addr::from(0x0a09_ffffu32)).is_none());
    }

    #[test]
    fn bucket_edge_suffixes_resolve() {
        // Suffixes 0x0000 and 0xffff are the binary-search extremes.
        let db = DeviceDb::from_devices([
            dev(0x7f00_0000, Realm::Consumer),
            dev(0x7f00_ffff, Realm::Cps),
        ]);
        let idx = CorrelationIndex::build(db.as_slice());
        assert_eq!(
            idx.correlate(Ipv4Addr::from(0x7f00_0000u32)),
            Some((0, Realm::Consumer))
        );
        assert_eq!(
            idx.correlate(Ipv4Addr::from(0x7f00_ffffu32)),
            Some((1, Realm::Cps))
        );
        assert!(idx.correlate(Ipv4Addr::from(0x7f00_8000u32)).is_none());
    }

    /// Addresses engineered to cover empty, singleton, and dense /16
    /// buckets: a handful of fixed prefixes (so collisions into shared
    /// buckets are common) crossed with arbitrary suffixes, plus fully
    /// arbitrary addresses for bucket diversity.
    fn addr_strategy() -> impl Strategy<Value = u32> {
        prop_oneof![
            // Dense shared buckets.
            (0u32..3, any::<u16>()).prop_map(|(p, s)| ((0x0a0a + p) << 16) | u32::from(s)),
            // Nearly-singleton buckets.
            (0u32..64, 0u16..4).prop_map(|(p, s)| ((0xc0a8 + p) << 16) | u32::from(s)),
            // Anywhere.
            any::<u32>(),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        /// Every inventory address resolves to the same device the old
        /// HashMap found; every non-inventory address misses.
        #[test]
        fn prop_index_matches_hashmap(
            addrs in proptest::collection::vec(addr_strategy(), 0..400),
            probes in proptest::collection::vec(any::<u32>(), 0..64),
        ) {
            let db: DeviceDb = addrs
                .iter()
                .enumerate()
                .map(|(i, &ip)| dev(ip, if i % 2 == 0 { Realm::Consumer } else { Realm::Cps }))
                .collect();
            let model = reference(&db);
            let idx = CorrelationIndex::build(db.as_slice());
            prop_assert_eq!(idx.len(), db.len());

            // Hits: every device, via both the raw index and the db API.
            for d in db.iter() {
                let want = Some(model[&d.ip]);
                prop_assert_eq!(idx.correlate(d.ip), want);
                prop_assert_eq!(db.correlate(d.ip), want);
                prop_assert_eq!(db.lookup_ip(d.ip).map(|x| x.id), Some(d.id));
            }
            // Probes: agree with the model in both directions.
            for &p in &probes {
                let ip = Ipv4Addr::from(p);
                prop_assert_eq!(idx.correlate(ip), model.get(&ip).copied());
            }
            // Near-misses around every member (same bucket, suffix ±1).
            for d in db.iter() {
                for delta in [1u32, u32::MAX] {
                    let near = Ipv4Addr::from(u32::from(d.ip).wrapping_add(delta));
                    prop_assert_eq!(idx.correlate(near), model.get(&near).copied());
                }
            }
        }

        /// The sorted-block merge-join is element-for-element identical
        /// to per-record `correlate`, on ascending blocks (the
        /// delta-store invariant), on unsorted blocks (the non-delta
        /// fallback), and on blocks dense with duplicates.
        #[test]
        fn prop_sorted_block_matches_per_record(
            addrs in proptest::collection::vec(addr_strategy(), 0..300),
            probes in proptest::collection::vec(addr_strategy(), 0..600),
            sort_block in any::<bool>(),
        ) {
            let db: DeviceDb = addrs
                .iter()
                .enumerate()
                .map(|(i, &ip)| dev(ip, if i % 2 == 0 { Realm::Consumer } else { Realm::Cps }))
                .collect();
            let idx = CorrelationIndex::build(db.as_slice());
            // Mix guaranteed hits in with the probes so blocks exercise
            // hit runs, miss runs, and bucket transitions.
            let mut block: Vec<u32> = probes;
            block.extend(db.iter().map(|d| u32::from(d.ip)));
            if sort_block {
                block.sort_unstable();
            }
            let mut out = Vec::new();
            idx.correlate_sorted_block(&block, &mut out);
            prop_assert_eq!(out.len(), block.len());
            for (i, &ip) in block.iter().enumerate() {
                prop_assert_eq!(out[i], idx.correlate(Ipv4Addr::from(ip)));
            }
            // The output buffer is reusable: a second pass over a
            // different block fully replaces the first.
            let rev: Vec<u32> = block.iter().rev().copied().collect();
            idx.correlate_sorted_block(&rev, &mut out);
            prop_assert_eq!(out.len(), rev.len());
            for (i, &ip) in rev.iter().enumerate() {
                prop_assert_eq!(out[i], idx.correlate(Ipv4Addr::from(ip)));
            }
        }

        /// Shard ranges tile the device space exactly: contiguous,
        /// ascending, disjoint, and `shard_of` agrees with `range`.
        #[test]
        fn prop_shard_ranges_tile_device_space(
            num_devices in 0usize..500_000,
            shards in 1usize..64,
        ) {
            let map = ShardMap::new(num_devices, shards);
            prop_assert_eq!(map.shards(), shards);
            let mut cursor = 0u32;
            for s in 0..map.shards() {
                let r = map.range(s);
                prop_assert_eq!(r.start, cursor);
                prop_assert!(r.end >= r.start);
                cursor = r.end;
            }
            prop_assert_eq!(cursor as usize, num_devices);
            // Spot-check membership at range boundaries.
            for s in 0..map.shards() {
                let r = map.range(s);
                if r.start < r.end {
                    prop_assert_eq!(map.shard_of(r.start), s);
                    prop_assert_eq!(map.shard_of(r.end - 1), s);
                }
            }
        }
    }

    #[test]
    fn shard_map_degenerate_shapes() {
        // Empty inventory: every shard range is empty.
        let empty = ShardMap::new(0, 4);
        for s in 0..4 {
            assert!(empty.range(s).is_empty());
        }
        // More shards than devices: trailing shards are empty.
        let tiny = ShardMap::new(3, 8);
        let owned: usize = (0..8).map(|s| tiny.range(s).len()).sum();
        assert_eq!(owned, 3);
        // Single shard owns everything.
        let one = ShardMap::new(123, 1);
        assert_eq!(one.range(0), 0..123);
        assert_eq!(one.shard_of(122), 0);
    }
}
