//! Internet service providers and deterministic address allocation.
//!
//! Devices reach the Internet through ISPs; the paper attributes
//! compromised devices to them (Tables I and II: "JSC ER-Telecom" hosted
//! 27.6% of compromised consumer devices, "Rostelecom" led the CPS list).
//! This module provides a registry of named ISPs (the ones the paper
//! names, with their calibrated shares) plus per-country generic fillers,
//! and a collision-free IPv4 allocator that hands each ISP `/16` blocks
//! outside reserved space and outside the telescope's dark prefix.

use crate::geo::CountryCode;
use crate::taxonomy::Realm;
use iotscope_net::addr::Ipv4Cidr;
use rand::Rng;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifier of an ISP inside an [`IspRegistry`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct IspId(pub u32);

impl fmt::Display for IspId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "isp#{}", self.0)
    }
}

/// One Internet service provider.
#[derive(Debug, Clone)]
pub struct Isp {
    name: String,
    country: CountryCode,
    blocks: Vec<Ipv4Cidr>,
    allocated: u32,
}

impl Isp {
    /// The provider's display name (e.g. `"JSC ER-Telecom"`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The country the provider operates in.
    pub fn country(&self) -> CountryCode {
        self.country
    }

    /// Number of addresses handed out so far.
    pub fn allocated(&self) -> u32 {
        self.allocated
    }
}

/// Calibrated share records for the ISPs the paper names.
struct NamedIsp {
    country: &'static str,
    name: &'static str,
    /// Fraction of the country's *compromised consumer* devices (Table I).
    consumer_comp_share: f64,
    /// Fraction of the country's *compromised CPS* devices (Table II).
    cps_comp_share: f64,
    /// Fraction of the country's *deployed* devices.
    deploy_share: f64,
}

const fn n(
    country: &'static str,
    name: &'static str,
    consumer_comp_share: f64,
    cps_comp_share: f64,
    deploy_share: f64,
) -> NamedIsp {
    NamedIsp {
        country,
        name,
        consumer_comp_share,
        cps_comp_share,
        deploy_share,
    }
}

/// Table I/II calibration: shares are *within-country* fractions chosen so
/// the global ISP rankings of the paper emerge from the country marginals.
static NAMED_ISPS: &[NamedIsp] = &[
    n("RU", "JSC ER-Telecom", 0.86, 0.16, 0.30),
    n("RU", "Rostelecom", 0.06, 0.27, 0.30),
    n("KR", "Korea Telecom", 0.74, 0.45, 0.50),
    n("KR", "SK Broadband", 0.10, 0.10, 0.20),
    n("ID", "PT Telkom", 0.885, 0.30, 0.50),
    n("PH", "PLDT", 0.92, 0.30, 0.50),
    n("TH", "TOT", 0.45, 0.20, 0.30),
    n("TH", "True Internet", 0.20, 0.10, 0.20),
    n("TR", "Turk Telekom", 0.50, 0.94, 0.50),
    n("TW", "HiNet", 0.50, 0.80, 0.50),
    // The paper's Table II has no Chinese ISP in the top 5 despite China
    // hosting 17% of compromised CPS devices: Chinese devices spread over
    // many providers. Keep the named carriers' shares small.
    n("CN", "China Telecom", 0.40, 0.10, 0.40),
    n("CN", "China Unicom", 0.30, 0.08, 0.30),
    n("US", "Comcast", 0.20, 0.10, 0.20),
    n("US", "AT&T", 0.15, 0.15, 0.15),
    n("US", "Verizon", 0.10, 0.10, 0.10),
    n("GB", "BT", 0.30, 0.25, 0.30),
    n("DE", "Deutsche Telekom", 0.35, 0.30, 0.35),
    n("FR", "Orange", 0.35, 0.30, 0.35),
    n("BR", "Vivo", 0.25, 0.20, 0.25),
    n("UA", "Ukrtelecom", 0.40, 0.35, 0.40),
    n("IN", "BSNL", 0.35, 0.30, 0.35),
    n("VN", "VNPT", 0.40, 0.35, 0.40),
    n("NL", "KPN", 0.35, 0.30, 0.35),
    n("AU", "Telstra", 0.35, 0.30, 0.35),
    n("CA", "Bell Canada", 0.30, 0.30, 0.30),
    n("JP", "NTT", 0.40, 0.35, 0.40),
    n("ES", "Telefonica", 0.35, 0.30, 0.35),
    n("IT", "TIM", 0.35, 0.30, 0.35),
    n("CH", "Swisscom", 0.40, 0.40, 0.40),
    n("SG", "SingTel", 0.40, 0.35, 0.40),
    n("MX", "Telmex", 0.40, 0.35, 0.40),
    n("DO", "Claro Dominicana", 0.45, 0.40, 0.45),
    n("ZA", "Telkom SA", 0.40, 0.35, 0.40),
    // Long tail of named providers (small shares; the calibrated Table
    // I/II heads above stay dominant).
    n("US", "Charter", 0.08, 0.08, 0.08),
    n("US", "CenturyLink", 0.06, 0.08, 0.06),
    n("US", "Cox", 0.05, 0.05, 0.05),
    n("GB", "Virgin Media", 0.15, 0.12, 0.15),
    n("GB", "Sky Broadband", 0.10, 0.08, 0.10),
    n("DE", "Vodafone DE", 0.12, 0.10, 0.12),
    n("DE", "1&1 Versatel", 0.08, 0.08, 0.08),
    n("FR", "Free SAS", 0.12, 0.10, 0.12),
    n("FR", "SFR", 0.10, 0.10, 0.10),
    n("IT", "Vodafone IT", 0.12, 0.10, 0.12),
    n("IT", "Fastweb", 0.08, 0.08, 0.08),
    n("ES", "Vodafone ES", 0.10, 0.10, 0.10),
    n("BR", "Claro BR", 0.15, 0.12, 0.15),
    n("BR", "Oi", 0.10, 0.10, 0.10),
    n("MX", "Izzi Telecom", 0.12, 0.10, 0.12),
    n("JP", "KDDI", 0.15, 0.12, 0.15),
    n("JP", "SoftBank", 0.12, 0.10, 0.12),
    n("KR", "LG U+", 0.06, 0.08, 0.08),
    n("CN", "China Mobile", 0.10, 0.08, 0.10),
    n("IN", "Airtel", 0.12, 0.10, 0.12),
    n("IN", "Reliance Jio", 0.12, 0.10, 0.12),
    n("RU", "MTS", 0.02, 0.05, 0.08),
    n("RU", "Beeline", 0.02, 0.05, 0.08),
    n("AU", "Optus", 0.12, 0.10, 0.12),
    n("AU", "TPG Telecom", 0.08, 0.08, 0.08),
    n("CA", "Rogers", 0.15, 0.12, 0.15),
    n("CA", "Telus", 0.12, 0.10, 0.12),
    n("NL", "Ziggo", 0.15, 0.12, 0.15),
    n("PL", "Orange Polska", 0.15, 0.12, 0.15),
    n("TR", "Turkcell Superonline", 0.08, 0.02, 0.10),
    n("VN", "Viettel", 0.15, 0.12, 0.15),
    n("ID", "Indosat Ooredoo", 0.03, 0.08, 0.10),
    n("PH", "Globe Telecom", 0.03, 0.10, 0.15),
    n("SE", "Telia", 0.15, 0.12, 0.15),
    n("CH", "Sunrise", 0.12, 0.10, 0.12),
    n("AR", "Telecom Argentina", 0.15, 0.12, 0.15),
    n("CL", "Movistar CL", 0.15, 0.12, 0.15),
    n("CO", "Claro CO", 0.15, 0.12, 0.15),
    n("UA", "Kyivstar", 0.12, 0.10, 0.12),
    n("SA", "STC", 0.15, 0.12, 0.15),
    n("AE", "Etisalat", 0.15, 0.12, 0.15),
    n("EG", "TE Data", 0.15, 0.12, 0.15),
    n("ZA", "MTN SA", 0.10, 0.10, 0.10),
    n("NG", "MTN Nigeria", 0.12, 0.10, 0.12),
    n("HK", "PCCW", 0.15, 0.12, 0.15),
    n("TW", "Taiwan Fixed Network", 0.08, 0.04, 0.10),
    n("SG", "StarHub", 0.10, 0.08, 0.10),
    n("MY", "Telekom Malaysia", 0.15, 0.12, 0.15),
    n("NZ", "Spark NZ", 0.15, 0.12, 0.15),
    n("GR", "OTE", 0.15, 0.12, 0.15),
    n("PT", "MEO", 0.15, 0.12, 0.15),
    n("CZ", "O2 Czech", 0.15, 0.12, 0.15),
    n("RO", "Digi Romania", 0.15, 0.12, 0.15),
    n("BE", "Proximus", 0.15, 0.12, 0.15),
    n("AT", "A1 Telekom", 0.15, 0.12, 0.15),
    n("NO", "Telenor", 0.15, 0.12, 0.15),
    n("DK", "TDC", 0.15, 0.12, 0.15),
    n("FI", "Elisa", 0.15, 0.12, 0.15),
    n("IE", "Eir", 0.15, 0.12, 0.15),
    n("HU", "Magyar Telekom", 0.15, 0.12, 0.15),
    n("BG", "Vivacom", 0.15, 0.12, 0.15),
    n("IL", "Bezeq", 0.15, 0.12, 0.15),
    n("PK", "PTCL", 0.15, 0.12, 0.15),
    n("KZ", "Kazakhtelecom", 0.15, 0.12, 0.15),
    n("BY", "Beltelecom", 0.15, 0.12, 0.15),
    n("RS", "Telekom Srbija", 0.15, 0.12, 0.15),
    n("HR", "Hrvatski Telekom", 0.15, 0.12, 0.15),
];

/// Reserved / out-of-scope first octets never allocated to ISPs: current
/// and historic special-use space plus the documentation prefixes used in
/// tests and examples.
const SKIP_OCTETS: &[u8] = &[0, 10, 127, 169, 172, 192, 198, 203];

/// Hands out `/16` blocks from public space, skipping reserved ranges and
/// the telescope prefix.
#[derive(Debug, Clone)]
struct BlockAllocator {
    telescope: Ipv4Cidr,
    next_o1: u16,
    next_o2: u16,
}

impl BlockAllocator {
    fn new(telescope: Ipv4Cidr) -> Self {
        BlockAllocator {
            telescope,
            next_o1: 1,
            next_o2: 0,
        }
    }

    fn next_block(&mut self) -> Ipv4Cidr {
        loop {
            if self.next_o1 > 223 {
                panic!("IPv4 /16 block space exhausted");
            }
            let o1 = self.next_o1 as u8;
            let o2 = self.next_o2 as u8;
            self.next_o2 += 1;
            if self.next_o2 == 256 {
                self.next_o2 = 0;
                self.next_o1 += 1;
            }
            if SKIP_OCTETS.contains(&o1) {
                // Skip the whole /8 at once.
                self.next_o1 += 1;
                self.next_o2 = 0;
                continue;
            }
            let block = Ipv4Cidr::new(Ipv4Addr::new(o1, o2, 0, 0), 16)
                .expect("16 is a valid prefix length");
            if self.telescope.contains_cidr(&block) || block.contains_cidr(&self.telescope) {
                continue;
            }
            return block;
        }
    }
}

/// The registry of all ISPs: the named ones plus per-country generics.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), iotscope_net::NetError> {
/// use iotscope_devicedb::isp::IspRegistry;
/// use iotscope_devicedb::geo::CountryCode;
/// use iotscope_devicedb::taxonomy::Realm;
/// use rand::SeedableRng;
///
/// let mut reg = IspRegistry::bootstrap("44.0.0.0/8".parse()?);
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let ru = CountryCode::from_code("RU").unwrap();
/// let id = reg.pick(&mut rng, ru, Realm::Consumer, true);
/// let ip = reg.alloc_ip(id);
/// assert_eq!(reg.isp(id).country(), ru);
/// assert_ne!(u32::from(ip) >> 24, 44); // never inside the telescope
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct IspRegistry {
    isps: Vec<Isp>,
    /// Per-country choice tables: `(isp, consumer_comp, cps_comp, deploy)`
    /// weights, normalized per draw.
    by_country: Vec<Vec<(IspId, f64, f64, f64)>>,
    allocator: BlockAllocator,
}

impl IspRegistry {
    /// Build the registry for all countries, allocating around the given
    /// telescope prefix.
    pub fn bootstrap(telescope: Ipv4Cidr) -> Self {
        let mut isps = Vec::new();
        let mut by_country = vec![Vec::new(); CountryCode::count()];
        for cc in CountryCode::all() {
            let mut named_consumer = 0.0;
            let mut named_cps = 0.0;
            let mut named_deploy = 0.0;
            for spec in NAMED_ISPS.iter().filter(|s| s.country == cc.code()) {
                let id = IspId(isps.len() as u32);
                isps.push(Isp {
                    name: spec.name.to_owned(),
                    country: cc,
                    blocks: Vec::new(),
                    allocated: 0,
                });
                named_consumer += spec.consumer_comp_share;
                named_cps += spec.cps_comp_share;
                named_deploy += spec.deploy_share;
                by_country[cc_index(cc)].push((
                    id,
                    spec.consumer_comp_share,
                    spec.cps_comp_share,
                    spec.deploy_share,
                ));
            }
            // Generic fillers share the remaining probability mass evenly.
            let n_generic = ((cc.info().deploy_weight * 4.0).round() as usize).clamp(3, 40);
            let rem_consumer = (1.0 - named_consumer).max(0.0) / n_generic as f64;
            let rem_cps = (1.0 - named_cps).max(0.0) / n_generic as f64;
            let rem_deploy = (1.0 - named_deploy).max(0.0) / n_generic as f64;
            for i in 0..n_generic {
                let id = IspId(isps.len() as u32);
                isps.push(Isp {
                    name: format!("AS-{}-{}", cc.code(), i + 1),
                    country: cc,
                    blocks: Vec::new(),
                    allocated: 0,
                });
                by_country[cc_index(cc)].push((id, rem_consumer, rem_cps, rem_deploy));
            }
        }
        IspRegistry {
            isps,
            by_country,
            allocator: BlockAllocator::new(telescope),
        }
    }

    /// Rebuild a registry from a saved `(name, country)` list, preserving
    /// the original [`IspId`] order. Loaded registries serve name/country
    /// lookups for analysis and reporting; they can also `pick` (uniform
    /// weights) and `alloc_ip`, but carry none of the original allocator
    /// state.
    pub fn from_names<I: IntoIterator<Item = (String, CountryCode)>>(names: I) -> Self {
        let mut isps = Vec::new();
        let mut by_country = vec![Vec::new(); CountryCode::count()];
        for (name, country) in names {
            let id = IspId(isps.len() as u32);
            isps.push(Isp {
                name,
                country,
                blocks: Vec::new(),
                allocated: 0,
            });
            by_country[cc_index(country)].push((id, 1.0, 1.0, 1.0));
        }
        // Countries without any saved ISP get a generic fallback so pick()
        // stays total.
        for cc in CountryCode::all() {
            if by_country[cc_index(cc)].is_empty() {
                let id = IspId(isps.len() as u32);
                isps.push(Isp {
                    name: format!("AS-{}-1", cc.code()),
                    country: cc,
                    blocks: Vec::new(),
                    allocated: 0,
                });
                by_country[cc_index(cc)].push((id, 1.0, 1.0, 1.0));
            }
        }
        IspRegistry {
            isps,
            by_country,
            allocator: BlockAllocator::new(
                Ipv4Cidr::new(Ipv4Addr::new(44, 0, 0, 0), 8).expect("valid prefix"),
            ),
        }
    }

    /// Iterate over `(id, isp)` pairs in id order.
    pub fn iter(&self) -> impl Iterator<Item = (IspId, &Isp)> {
        self.isps
            .iter()
            .enumerate()
            .map(|(i, isp)| (IspId(i as u32), isp))
    }

    /// Number of registered ISPs.
    pub fn len(&self) -> usize {
        self.isps.len()
    }

    /// Whether the registry is empty (never true after `bootstrap`).
    pub fn is_empty(&self) -> bool {
        self.isps.is_empty()
    }

    /// Access an ISP record.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn isp(&self, id: IspId) -> &Isp {
        &self.isps[id.0 as usize]
    }

    /// Look up an ISP by exact name.
    pub fn find_by_name(&self, name: &str) -> Option<IspId> {
        self.isps
            .iter()
            .position(|i| i.name == name)
            .map(|i| IspId(i as u32))
    }

    /// Draw an ISP for a device in `country`/`realm`. `compromised`
    /// selects the Table I/II share table (true) or the deployment table
    /// (false).
    pub fn pick<R: Rng>(
        &self,
        rng: &mut R,
        country: CountryCode,
        realm: Realm,
        compromised: bool,
    ) -> IspId {
        let table = &self.by_country[cc_index(country)];
        debug_assert!(!table.is_empty());
        let weight = |e: &(IspId, f64, f64, f64)| -> f64 {
            match (compromised, realm) {
                (true, Realm::Consumer) => e.1,
                (true, Realm::Cps) => e.2,
                (false, _) => e.3,
            }
        };
        let total: f64 = table.iter().map(weight).sum();
        if total <= 0.0 {
            return table[rng.gen_range(0..table.len())].0;
        }
        let mut draw = rng.gen_range(0.0..total);
        for e in table {
            let w = weight(e);
            if draw < w {
                return e.0;
            }
            draw -= w;
        }
        table.last().expect("table is non-empty").0
    }

    /// Allocate a fresh, never-before-issued address from `id`'s blocks,
    /// growing the block list on demand.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this registry.
    pub fn alloc_ip(&mut self, id: IspId) -> Ipv4Addr {
        let isp = &mut self.isps[id.0 as usize];
        let block_idx = (isp.allocated / 65536) as usize;
        while isp.blocks.len() <= block_idx {
            isp.blocks.push(self.allocator.next_block());
        }
        let within = isp.allocated % 65536;
        isp.allocated += 1;
        // A bijective affine permutation of 0..65536 scatters hosts across
        // the block so consecutive allocations are not adjacent addresses.
        let offset = (u64::from(within) * 40503 + 12345) % 65536;
        isp.blocks[block_idx].addr_at(offset)
    }
}

#[inline]
fn cc_index(cc: CountryCode) -> usize {
    cc.index()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn telescope() -> Ipv4Cidr {
        "44.0.0.0/8".parse().unwrap()
    }

    #[test]
    fn bootstrap_registers_all_named_isps() {
        let reg = IspRegistry::bootstrap(telescope());
        for spec in NAMED_ISPS {
            let id = reg
                .find_by_name(spec.name)
                .unwrap_or_else(|| panic!("{} missing", spec.name));
            assert_eq!(reg.isp(id).country().code(), spec.country);
        }
        assert!(!reg.is_empty());
        assert!(reg.len() > 300, "expect many ISPs, got {}", reg.len());
    }

    #[test]
    fn every_country_has_isps() {
        let reg = IspRegistry::bootstrap(telescope());
        for cc in CountryCode::all() {
            let mut rng = StdRng::seed_from_u64(9);
            let id = reg.pick(&mut rng, cc, Realm::Consumer, false);
            assert_eq!(reg.isp(id).country(), cc);
        }
    }

    #[test]
    fn er_telecom_dominates_russian_compromised_consumer_draws() {
        let reg = IspRegistry::bootstrap(telescope());
        let ru = CountryCode::from_code("RU").unwrap();
        let er = reg.find_by_name("JSC ER-Telecom").unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let n = 4000;
        let hits = (0..n)
            .filter(|_| reg.pick(&mut rng, ru, Realm::Consumer, true) == er)
            .count();
        let share = hits as f64 / n as f64;
        assert!((0.80..=0.92).contains(&share), "ER-Telecom share {share}");
    }

    #[test]
    fn rostelecom_leads_russian_compromised_cps_draws() {
        let reg = IspRegistry::bootstrap(telescope());
        let ru = CountryCode::from_code("RU").unwrap();
        let rostelecom = reg.find_by_name("Rostelecom").unwrap();
        let er = reg.find_by_name("JSC ER-Telecom").unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut counts = std::collections::HashMap::new();
        for _ in 0..4000 {
            *counts
                .entry(reg.pick(&mut rng, ru, Realm::Cps, true))
                .or_insert(0usize) += 1;
        }
        assert!(counts[&rostelecom] > counts[&er]);
    }

    #[test]
    fn deployment_draws_are_less_concentrated() {
        let reg = IspRegistry::bootstrap(telescope());
        let ru = CountryCode::from_code("RU").unwrap();
        let er = reg.find_by_name("JSC ER-Telecom").unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let n = 4000;
        let hits = (0..n)
            .filter(|_| reg.pick(&mut rng, ru, Realm::Consumer, false) == er)
            .count();
        let share = hits as f64 / n as f64;
        assert!(share < 0.45, "deployment share {share} should be modest");
    }

    #[test]
    fn allocated_ips_are_unique_and_outside_telescope() {
        let mut reg = IspRegistry::bootstrap(telescope());
        let id = reg.find_by_name("Comcast").unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..70_000 {
            let ip = reg.alloc_ip(id);
            assert!(seen.insert(ip), "duplicate {ip}");
            assert!(!telescope().contains(ip), "{ip} inside telescope");
            let o1 = ip.octets()[0];
            assert!(!SKIP_OCTETS.contains(&o1), "{ip} in reserved space");
        }
        assert!(reg.isp(id).allocated() == 70_000);
    }

    #[test]
    fn different_isps_get_disjoint_blocks() {
        let mut reg = IspRegistry::bootstrap(telescope());
        let a = reg.find_by_name("Comcast").unwrap();
        let b = reg.find_by_name("AT&T").unwrap();
        let mut seen = std::collections::HashSet::new();
        for _ in 0..1000 {
            assert!(seen.insert(reg.alloc_ip(a)));
            assert!(seen.insert(reg.alloc_ip(b)));
        }
    }

    #[test]
    fn allocator_skips_telescope_slash8() {
        let mut alloc = BlockAllocator::new(telescope());
        for _ in 0..2000 {
            let block = alloc.next_block();
            assert_ne!(block.network().octets()[0], 44);
        }
    }

    #[test]
    fn pick_is_deterministic_for_same_seed() {
        let reg = IspRegistry::bootstrap(telescope());
        let us = CountryCode::from_code("US").unwrap();
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            (0..50)
                .map(|_| reg.pick(&mut rng, us, Realm::Cps, true))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(11), draw(11));
        assert_ne!(draw(11), draw(12));
    }
}
