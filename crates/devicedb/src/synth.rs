//! Deterministic, paper-calibrated inventory generator.
//!
//! Produces a [`DeviceDb`] whose marginal distributions match §III of the
//! paper, and *designates* the subset of devices that a simulation will
//! drive as compromised (the designated population follows the
//! compromised-population marginals of Fig 1b / Fig 3 / Tables I–III; the
//! rest follows the deployment marginals of Fig 1a / §III-A1).
//!
//! All randomness derives from a single `u64` seed: the same config yields
//! a byte-identical inventory.

use crate::db::DeviceDb;
use crate::device::{DeviceId, DeviceProfile, IotDevice};
use crate::geo::{CountryCode, COUNTRIES};
use crate::isp::IspRegistry;
use crate::taxonomy::{ConsumerKind, CpsService, Realm};
use iotscope_net::addr::Ipv4Cidr;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration for [`InventoryBuilder`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SynthConfig {
    /// Master seed; every derived draw is a pure function of it.
    pub seed: u64,
    /// Total consumer devices to generate (paper: 181,000).
    pub consumer_total: u32,
    /// Total CPS devices to generate (paper: 150,000).
    pub cps_total: u32,
    /// Consumer devices designated as compromised (paper: 15,299).
    pub designated_consumer: u32,
    /// CPS devices designated as compromised (paper: 11,582).
    pub designated_cps: u32,
    /// The telescope's dark prefix; no device address may fall inside it.
    pub telescope: Ipv4Cidr,
}

impl SynthConfig {
    /// The paper's full population sizes.
    pub fn paper(seed: u64) -> Self {
        SynthConfig {
            seed,
            consumer_total: 181_000,
            cps_total: 150_000,
            designated_consumer: 15_299,
            designated_cps: 11_582,
            telescope: default_telescope(),
        }
    }

    /// A small population for tests and examples (~5.5k devices, ~1k
    /// designated) that keeps the same distributional shape.
    pub fn small(seed: u64) -> Self {
        SynthConfig {
            seed,
            consumer_total: 3_000,
            cps_total: 2_500,
            designated_consumer: 600,
            designated_cps: 450,
            telescope: default_telescope(),
        }
    }

    /// Total device count the builder will generate.
    pub fn total_devices(&self) -> u32 {
        self.consumer_total + self.cps_total
    }

    fn validate(&self) {
        assert!(
            self.designated_consumer <= self.consumer_total,
            "designated consumer ({}) exceeds total ({})",
            self.designated_consumer,
            self.consumer_total
        );
        assert!(
            self.designated_cps <= self.cps_total,
            "designated CPS ({}) exceeds total ({})",
            self.designated_cps,
            self.cps_total
        );
    }
}

fn default_telescope() -> Ipv4Cidr {
    "44.0.0.0/8".parse().expect("static CIDR is valid")
}

/// The generated inventory plus the ground-truth designation lists.
#[derive(Debug)]
pub struct SynthOutput {
    /// The device inventory handed to the analysis pipeline.
    pub db: DeviceDb,
    /// Consumer devices a simulation should drive as compromised.
    pub designated_consumer: Vec<DeviceId>,
    /// CPS devices a simulation should drive as compromised.
    pub designated_cps: Vec<DeviceId>,
    /// The ISP registry (for name lookups in reports).
    pub isps: IspRegistry,
}

/// Builds a [`SynthOutput`] from a [`SynthConfig`].
///
/// # Example
///
/// ```
/// use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
///
/// let out = InventoryBuilder::new(SynthConfig::small(42)).build();
/// assert_eq!(out.designated_consumer.len(), 600);
/// assert_eq!(out.designated_cps.len(), 450);
/// ```
#[derive(Debug, Clone)]
pub struct InventoryBuilder {
    config: SynthConfig,
}

/// Cumulative-weight sampler over country indices.
struct CountrySampler {
    cumulative: Vec<f64>,
}

impl CountrySampler {
    fn new<F: Fn(usize) -> f64>(weight: F) -> Self {
        let mut cumulative = Vec::with_capacity(COUNTRIES.len());
        let mut acc = 0.0;
        for i in 0..COUNTRIES.len() {
            acc += weight(i).max(0.0);
            cumulative.push(acc);
        }
        assert!(acc > 0.0, "country weights must not all be zero");
        CountrySampler { cumulative }
    }

    fn sample<R: Rng>(&self, rng: &mut R) -> CountryCode {
        let total = *self.cumulative.last().expect("non-empty table");
        let draw = rng.gen_range(0.0..total);
        let idx = self.cumulative.partition_point(|&c| c <= draw);
        CountryCode::all()
            .nth(idx.min(COUNTRIES.len() - 1))
            .expect("index in range")
    }
}

impl InventoryBuilder {
    /// Create a builder for `config`.
    ///
    /// # Panics
    ///
    /// Panics if the designated counts exceed the totals.
    pub fn new(config: SynthConfig) -> Self {
        config.validate();
        InventoryBuilder { config }
    }

    /// Generate the inventory.
    pub fn build(self) -> SynthOutput {
        let cfg = &self.config;
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut isps = IspRegistry::bootstrap(cfg.telescope);
        let mut db = DeviceDb::new();
        let mut designated_consumer = Vec::with_capacity(cfg.designated_consumer as usize);
        let mut designated_cps = Vec::with_capacity(cfg.designated_cps as usize);

        let comp_consumer = CountrySampler::new(|i| COUNTRIES[i].consumer_comp_weight);
        let comp_cps = CountrySampler::new(|i| COUNTRIES[i].cps_comp_weight);
        let deploy_consumer = CountrySampler::new(|i| {
            COUNTRIES[i].deploy_weight * (1.0 - COUNTRIES[i].cps_deploy_share)
        });
        let deploy_cps =
            CountrySampler::new(|i| COUNTRIES[i].deploy_weight * COUNTRIES[i].cps_deploy_share);

        // Phase 1: designated (to-be-compromised) populations, calibrated to
        // the compromised marginals.
        for _ in 0..cfg.designated_consumer {
            let country = comp_consumer.sample(&mut rng);
            let id = Self::emit_consumer(&mut rng, &mut db, &mut isps, country, true);
            designated_consumer.push(id);
        }
        for _ in 0..cfg.designated_cps {
            let country = comp_cps.sample(&mut rng);
            let id = Self::emit_cps(&mut rng, &mut db, &mut isps, country, true);
            designated_cps.push(id);
        }

        // Phase 2: the benign remainder, calibrated to deployment marginals.
        for _ in 0..(cfg.consumer_total - cfg.designated_consumer) {
            let country = deploy_consumer.sample(&mut rng);
            Self::emit_consumer(&mut rng, &mut db, &mut isps, country, false);
        }
        for _ in 0..(cfg.cps_total - cfg.designated_cps) {
            let country = deploy_cps.sample(&mut rng);
            Self::emit_cps(&mut rng, &mut db, &mut isps, country, false);
        }

        SynthOutput {
            db,
            designated_consumer,
            designated_cps,
            isps,
        }
    }

    fn emit_consumer(
        rng: &mut StdRng,
        db: &mut DeviceDb,
        isps: &mut IspRegistry,
        country: CountryCode,
        compromised: bool,
    ) -> DeviceId {
        let kind = draw_consumer_kind(rng, compromised);
        let isp = isps.pick(rng, country, Realm::Consumer, compromised);
        let ip = isps.alloc_ip(isp);
        db.push(IotDevice {
            id: DeviceId(0),
            ip,
            profile: DeviceProfile::Consumer(kind),
            country,
            isp,
        })
        .expect("allocator never reuses an address")
    }

    fn emit_cps(
        rng: &mut StdRng,
        db: &mut DeviceDb,
        isps: &mut IspRegistry,
        country: CountryCode,
        compromised: bool,
    ) -> DeviceId {
        let services = draw_cps_services(rng);
        let isp = isps.pick(rng, country, Realm::Cps, compromised);
        let ip = isps.alloc_ip(isp);
        db.push(IotDevice {
            id: DeviceId(0),
            ip,
            profile: DeviceProfile::Cps(services),
            country,
            isp,
        })
        .expect("allocator never reuses an address")
    }
}

/// Draw a consumer kind with the deployment or compromised weights.
pub fn draw_consumer_kind<R: Rng>(rng: &mut R, compromised: bool) -> ConsumerKind {
    let weight = |k: ConsumerKind| {
        if compromised {
            k.compromised_weight()
        } else {
            k.deploy_weight()
        }
    };
    let total: f64 = ConsumerKind::ALL.iter().map(|k| weight(*k)).sum();
    let mut draw = rng.gen_range(0.0..total);
    for k in ConsumerKind::ALL {
        let w = weight(k);
        if draw < w {
            return k;
        }
        draw -= w;
    }
    ConsumerKind::Router
}

/// Draw 1..=3 distinct CPS services by Table III weight. Multi-service
/// devices model the paper's "services are not mutually exclusive" note;
/// the count distribution (90/8/2%) keeps the mean near 1.1 services per
/// device as implied by Table III's column sum.
pub fn draw_cps_services<R: Rng>(rng: &mut R) -> Vec<CpsService> {
    let count = match rng.gen_range(0..100u32) {
        0..=89 => 1,
        90..=97 => 2,
        _ => 3,
    };
    let mut chosen: Vec<CpsService> = Vec::with_capacity(count);
    let mut remaining: Vec<CpsService> = CpsService::ALL.to_vec();
    for _ in 0..count {
        let total: f64 = remaining.iter().map(|s| s.compromised_weight()).sum();
        let mut draw = rng.gen_range(0.0..total);
        let mut pick = remaining.len() - 1;
        for (i, s) in remaining.iter().enumerate() {
            let w = s.compromised_weight();
            if draw < w {
                pick = i;
                break;
            }
            draw -= w;
        }
        chosen.push(remaining.swap_remove(pick));
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashMap;

    fn small_output(seed: u64) -> SynthOutput {
        InventoryBuilder::new(SynthConfig::small(seed)).build()
    }

    #[test]
    fn build_produces_configured_counts() {
        let out = small_output(1);
        let cfg = SynthConfig::small(1);
        assert_eq!(out.db.len() as u32, cfg.total_devices());
        assert_eq!(
            out.designated_consumer.len() as u32,
            cfg.designated_consumer
        );
        assert_eq!(out.designated_cps.len() as u32, cfg.designated_cps);
        let (consumer, cps) = out.db.realm_counts();
        assert_eq!(consumer as u32, cfg.consumer_total);
        assert_eq!(cps as u32, cfg.cps_total);
    }

    #[test]
    fn designated_devices_have_expected_realms() {
        let out = small_output(2);
        for id in &out.designated_consumer {
            assert_eq!(out.db.device(*id).realm(), Realm::Consumer);
        }
        for id in &out.designated_cps {
            assert_eq!(out.db.device(*id).realm(), Realm::Cps);
        }
    }

    #[test]
    fn same_seed_same_inventory() {
        let a = small_output(77);
        let b = small_output(77);
        assert_eq!(a.db.len(), b.db.len());
        for (da, db_) in a.db.iter().zip(b.db.iter()) {
            assert_eq!(da, db_);
        }
        assert_eq!(a.designated_consumer, b.designated_consumer);
    }

    #[test]
    fn different_seed_different_inventory() {
        let a = small_output(1);
        let b = small_output(2);
        let diff =
            a.db.iter()
                .zip(b.db.iter())
                .filter(|(x, y)| x.ip != y.ip)
                .count();
        assert!(diff > 0);
    }

    #[test]
    fn no_device_inside_telescope() {
        let out = small_output(3);
        let telescope = default_telescope();
        for d in out.db.iter() {
            assert!(!telescope.contains(d.ip), "{} inside telescope", d.ip);
        }
    }

    #[test]
    fn designated_consumer_country_shape_matches_fig_1b() {
        let out = InventoryBuilder::new(SynthConfig {
            designated_consumer: 4000,
            consumer_total: 4500,
            ..SynthConfig::small(4)
        })
        .build();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for id in &out.designated_consumer {
            *counts.entry(out.db.device(*id).country.code()).or_insert(0) += 1;
        }
        let share = |c: &str| *counts.get(c).unwrap_or(&0) as f64 / 4000.0;
        assert!((0.27..=0.37).contains(&share("RU")), "RU {}", share("RU"));
        assert!((0.06..=0.12).contains(&share("US")), "US {}", share("US"));
        assert!(share("RU") > share("US"));
        assert!(share("US") > share("GB"));
    }

    #[test]
    fn designated_cps_country_shape_matches_fig_1b() {
        let out = InventoryBuilder::new(SynthConfig {
            designated_cps: 4000,
            cps_total: 5000,
            ..SynthConfig::small(5)
        })
        .build();
        let mut counts: HashMap<&str, usize> = HashMap::new();
        for id in &out.designated_cps {
            *counts.entry(out.db.device(*id).country.code()).or_insert(0) += 1;
        }
        let share = |c: &str| *counts.get(c).unwrap_or(&0) as f64 / 4000.0;
        assert!(
            share("CN") > share("RU"),
            "CN {} RU {}",
            share("CN"),
            share("RU")
        );
        assert!(share("RU") > share("KR"));
        assert!(share("KR") > share("US"));
    }

    #[test]
    fn benign_population_follows_deployment_shape() {
        let out = InventoryBuilder::new(SynthConfig {
            consumer_total: 8000,
            designated_consumer: 0,
            cps_total: 0,
            designated_cps: 0,
            ..SynthConfig::small(6)
        })
        .build();
        let counts = out.db.count_by_country(None);
        let us = CountryCode::from_code("US").unwrap();
        let ru = CountryCode::from_code("RU").unwrap();
        // Deployment: U.S. dominates (25% vs Russia 5.9%).
        assert!(counts[&us] > counts[&ru] * 2);
    }

    #[test]
    fn compromised_kind_mix_matches_fig_3() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut counts: HashMap<ConsumerKind, usize> = HashMap::new();
        let n = 10_000;
        for _ in 0..n {
            *counts
                .entry(draw_consumer_kind(&mut rng, true))
                .or_insert(0) += 1;
        }
        let share = |k: ConsumerKind| *counts.get(&k).unwrap_or(&0) as f64 / n as f64;
        assert!((0.49..=0.56).contains(&share(ConsumerKind::Router)));
        assert!((0.22..=0.29).contains(&share(ConsumerKind::IpCamera)));
        assert!((0.15..=0.21).contains(&share(ConsumerKind::Printer)));
        assert!(share(ConsumerKind::ElectricHub) < 0.01);
    }

    #[test]
    fn cps_service_draw_is_weighted_and_distinct() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut freq: HashMap<CpsService, usize> = HashMap::new();
        let n = 10_000;
        let mut multi = 0;
        for _ in 0..n {
            let services = draw_cps_services(&mut rng);
            assert!((1..=3).contains(&services.len()));
            let set: std::collections::HashSet<_> = services.iter().collect();
            assert_eq!(
                set.len(),
                services.len(),
                "duplicate service in {services:?}"
            );
            if services.len() > 1 {
                multi += 1;
            }
            for s in services {
                *freq.entry(s).or_insert(0) += 1;
            }
        }
        // Telvent should lead, Niagara Fox should beat Modbus, per Table III.
        assert!(freq[&CpsService::TelventOasysDna] > freq[&CpsService::NiagaraFox]);
        assert!(freq[&CpsService::NiagaraFox] > freq[&CpsService::ModbusTcp]);
        // ~10% multi-service.
        let multi_share = multi as f64 / n as f64;
        assert!((0.05..=0.16).contains(&multi_share), "multi {multi_share}");
    }

    #[test]
    #[should_panic(expected = "designated consumer")]
    fn invalid_config_panics() {
        let cfg = SynthConfig {
            designated_consumer: 10_000,
            ..SynthConfig::small(1)
        };
        let _ = InventoryBuilder::new(cfg);
    }

    #[test]
    fn er_telecom_tops_designated_consumer_isps() {
        let out = InventoryBuilder::new(SynthConfig {
            designated_consumer: 3000,
            ..SynthConfig::small(10)
        })
        .build();
        let mut counts: HashMap<crate::isp::IspId, usize> = HashMap::new();
        for id in &out.designated_consumer {
            *counts.entry(out.db.device(*id).isp).or_insert(0) += 1;
        }
        let (top, top_count) = counts.iter().max_by_key(|(_, c)| **c).unwrap();
        assert_eq!(out.isps.isp(*top).name(), "JSC ER-Telecom");
        // Table I: ~27.6% of compromised consumer devices.
        let share = *top_count as f64 / 3000.0;
        assert!((0.20..=0.36).contains(&share), "ER-Telecom share {share}");
    }
}
