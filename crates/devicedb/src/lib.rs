//! Synthetic Internet-facing IoT device inventory for the `iotscope`
//! workspace.
//!
//! The paper correlates darknet traffic with a near real-time IoT database
//! obtained from Shodan: ~331,000 devices (181k consumer, 150k CPS) across
//! 200+ countries (§III-A1). That data is proprietary, so this crate builds
//! the closest synthetic equivalent: a deterministic generator
//! ([`synth::InventoryBuilder`]) that produces an inventory with the same
//! *marginal distributions* the paper publishes — country mix (Fig 1a),
//! consumer type mix, the 31 CPS services (Table III), and the ISP rosters
//! of Tables I/II — plus the IP-indexed query API ([`db::DeviceDb`]) the
//! correlation engine needs.
//!
//! The generator also *designates* which devices will act as compromised in
//! a simulation (with the compromised-population marginals of Fig 1b and
//! Tables I/II). That designation is the simulation's ground-truth ledger;
//! the analysis pipeline never sees it.
//!
//! # Example
//!
//! ```
//! use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
//!
//! let cfg = SynthConfig::small(7);
//! let out = InventoryBuilder::new(cfg.clone()).build();
//! assert_eq!(out.db.len() as u32, cfg.total_devices());
//! let first = out.db.iter().next().unwrap();
//! assert!(out.db.lookup_ip(first.ip).is_some());
//! ```

#![forbid(unsafe_code)]

pub mod correlate;
pub mod db;
pub mod device;
pub mod geo;
pub mod inventory_io;
pub mod isp;
pub mod synth;
pub mod taxonomy;

pub use correlate::{CorrelationIndex, ShardMap};
pub use db::DeviceDb;
pub use device::{DeviceId, DeviceProfile, IotDevice};
pub use geo::CountryCode;
pub use isp::IspId;
pub use taxonomy::{ConsumerKind, CpsService, Realm};
