//! Device taxonomy: realms, consumer device types and CPS services.
//!
//! The paper splits devices into **consumer** IoT (routers, IP cameras,
//! printers, network storage, TV boxes/DVRs, electric hubs — §III-A1) and
//! **CPS** IoT speaking one or more of 31 industrial/automation protocols
//! (Table III names the top 10 with their common applications).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two deployment realms of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Realm {
    /// Consumer IoT: home/office connected devices.
    Consumer,
    /// Cyber-physical systems: ICS/SCADA/DCS equipment.
    Cps,
}

impl Realm {
    /// Both realms, consumer first.
    pub const ALL: [Realm; 2] = [Realm::Consumer, Realm::Cps];
}

impl fmt::Display for Realm {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Realm::Consumer => "Consumer",
            Realm::Cps => "CPS",
        })
    }
}

/// Consumer IoT device categories (§III-A1, Fig 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ConsumerKind {
    /// Wireless access points and Internet routers.
    Router,
    /// Webcams and CCTV cameras.
    IpCamera,
    /// Network printers.
    Printer,
    /// Network storage media (NAS).
    NetworkStorage,
    /// Satellite TV boxes and digital video recorders.
    TvBoxDvr,
    /// Electric hubs and smart outlets.
    ElectricHub,
}

impl ConsumerKind {
    /// All categories, in Fig 3 order.
    pub const ALL: [ConsumerKind; 6] = [
        ConsumerKind::Router,
        ConsumerKind::IpCamera,
        ConsumerKind::Printer,
        ConsumerKind::NetworkStorage,
        ConsumerKind::TvBoxDvr,
        ConsumerKind::ElectricHub,
    ];

    /// Relative share among *deployed* consumer devices (§III-A1:
    /// routers 46.9%, printers 29.1%, cameras 18.3%, storage 4.6%, rest
    /// 1.1%).
    pub fn deploy_weight(self) -> f64 {
        match self {
            ConsumerKind::Router => 46.9,
            ConsumerKind::Printer => 29.1,
            ConsumerKind::IpCamera => 18.3,
            ConsumerKind::NetworkStorage => 4.6,
            ConsumerKind::TvBoxDvr => 0.9,
            ConsumerKind::ElectricHub => 0.2,
        }
    }

    /// Relative share among *compromised* consumer devices (Fig 3:
    /// routers 52.4%, cameras 25.2%, printers 18.0%, storage 3.6%,
    /// DVRs 0.5%, hubs 0.1%).
    pub fn compromised_weight(self) -> f64 {
        match self {
            ConsumerKind::Router => 52.4,
            ConsumerKind::IpCamera => 25.2,
            ConsumerKind::Printer => 18.0,
            ConsumerKind::NetworkStorage => 3.6,
            ConsumerKind::TvBoxDvr => 0.5,
            ConsumerKind::ElectricHub => 0.1,
        }
    }
}

impl fmt::Display for ConsumerKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ConsumerKind::Router => "Routers",
            ConsumerKind::IpCamera => "IP Cameras",
            ConsumerKind::Printer => "Printers",
            ConsumerKind::NetworkStorage => "Network Storage Media",
            ConsumerKind::TvBoxDvr => "Digital Video Recorders",
            ConsumerKind::ElectricHub => "Electric Hubs/Outlets",
        })
    }
}

/// The 31 CPS services/protocols of §III-A1 and Table III.
///
/// The first ten variants are Table III's top 10 (with the paper's
/// "common applications" strings); the remainder are widely-indexed ICS
/// protocols filling out the 31.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum CpsService {
    /// Telvent OASyS DNA — oil & gas pipelines (Table III #1, 20.0%).
    TelventOasysDna,
    /// SNC GENe — control systems (#2, 18.3%).
    SncGene,
    /// Niagara Fox — building automation (#3, 13.4%).
    NiagaraFox,
    /// MQ Telemetry Transport — IoT/sensory networks (#4, 12.9%).
    Mqtt,
    /// Ethernet/IP — manufacturing automation (#5, 12.8%).
    EthernetIp,
    /// ABB Ranger — power plants/transmission (#6, 9.1%).
    AbbRanger,
    /// Siemens Spectrum PowerTG — utility networks (#7, 5.9%).
    SiemensSpectrumPowerTg,
    /// Modbus TCP — power utilities (#8, 5.5%).
    ModbusTcp,
    /// Foxboro/Invensys Foxboro — plant automation (#9, 5.1%).
    FoxboroInvensys,
    /// Foundation Fieldbus HSE — plant/factory automation (#10, 3.0%).
    FoundationFieldbusHse,
    /// DNP3 — electric/water utilities.
    Dnp3,
    /// BACnet/IP — building automation.
    BacnetIp,
    /// IEC 60870-5-104 — power grid telecontrol.
    Iec104,
    /// IEC 61850/MMS — substation automation.
    Iec61850,
    /// OPC UA — industrial interoperability.
    OpcUa,
    /// PROFINET — factory automation.
    Profinet,
    /// Siemens S7comm — PLC communications.
    S7Comm,
    /// Omron FINS — PLC communications.
    OmronFins,
    /// Mitsubishi MELSEC-Q — PLC communications.
    MitsubishiMelsec,
    /// CODESYS — PLC runtime.
    Codesys,
    /// Red Lion Crimson v3 — HMI/protocol converters.
    CrimsonV3,
    /// GE SRTP — GE PLCs.
    GeSrtp,
    /// Phoenix Contact PC Worx — PLC engineering.
    PcWorx,
    /// ProConOS — PLC runtime.
    ProConOs,
    /// HART-IP — process instrumentation.
    HartIp,
    /// CC-Link IE — field networks.
    CcLinkIe,
    /// KNXnet/IP — home/building control.
    KnxIp,
    /// LonWorks — distributed control.
    Lonworks,
    /// Moxa NPort — serial-device servers.
    MoxaNport,
    /// Veeder-Root ATG — automatic tank gauges.
    VeederRootAtg,
    /// Crestron CIP — integrated building/AV control.
    CrestronCip,
}

impl CpsService {
    /// All 31 services, Table III top-10 first.
    pub const ALL: [CpsService; 31] = [
        CpsService::TelventOasysDna,
        CpsService::SncGene,
        CpsService::NiagaraFox,
        CpsService::Mqtt,
        CpsService::EthernetIp,
        CpsService::AbbRanger,
        CpsService::SiemensSpectrumPowerTg,
        CpsService::ModbusTcp,
        CpsService::FoxboroInvensys,
        CpsService::FoundationFieldbusHse,
        CpsService::Dnp3,
        CpsService::BacnetIp,
        CpsService::Iec104,
        CpsService::Iec61850,
        CpsService::OpcUa,
        CpsService::Profinet,
        CpsService::S7Comm,
        CpsService::OmronFins,
        CpsService::MitsubishiMelsec,
        CpsService::Codesys,
        CpsService::CrimsonV3,
        CpsService::GeSrtp,
        CpsService::PcWorx,
        CpsService::ProConOs,
        CpsService::HartIp,
        CpsService::CcLinkIe,
        CpsService::KnxIp,
        CpsService::Lonworks,
        CpsService::MoxaNport,
        CpsService::VeederRootAtg,
        CpsService::CrestronCip,
    ];

    /// Relative share among compromised CPS devices (Table III for the top
    /// 10; small filler weights for the rest).
    pub fn compromised_weight(self) -> f64 {
        use CpsService::*;
        match self {
            TelventOasysDna => 20.0,
            SncGene => 18.3,
            // Slightly above Table III's 13.4 so the multi-service draw
            // (which flattens top weights) keeps Niagara Fox ahead of MQTT.
            NiagaraFox => 14.3,
            Mqtt => 12.9,
            EthernetIp => 12.8,
            AbbRanger => 9.1,
            SiemensSpectrumPowerTg => 5.9,
            ModbusTcp => 5.5,
            FoxboroInvensys => 5.1,
            FoundationFieldbusHse => 3.0,
            Dnp3 | BacnetIp | Iec104 | Iec61850 | OpcUa | Profinet | S7Comm => 1.0,
            OmronFins | MitsubishiMelsec | Codesys | CrimsonV3 | GeSrtp | PcWorx | ProConOs => 0.6,
            HartIp | CcLinkIe | KnxIp | Lonworks | MoxaNport | VeederRootAtg | CrestronCip => 0.4,
        }
    }

    /// Relative share among deployed CPS devices; the deployment shape is
    /// assumed close to the compromised shape (the paper gives only the
    /// latter).
    pub fn deploy_weight(self) -> f64 {
        self.compromised_weight()
    }

    /// The paper's "common applications" string (Table III), or a short
    /// description for the minor protocols.
    pub fn common_applications(self) -> &'static str {
        use CpsService::*;
        match self {
            TelventOasysDna => "Oil and Gas transportation pipelines and distribution networks",
            SncGene => "Control systems",
            NiagaraFox => "Building automation systems",
            Mqtt => "IoT communications, sensory networks, safety-critical communications",
            EthernetIp => "Manufacturing automation",
            AbbRanger => {
                "Power generating plants, transmission lines, mining operations, and transportation systems"
            }
            SiemensSpectrumPowerTg => "Utility networks",
            ModbusTcp => "Power utilities",
            FoxboroInvensys => {
                "Plant automation systems, flowmeters, single-loop controllers, and product support services"
            }
            FoundationFieldbusHse => "Plant and factory automation",
            Dnp3 => "Electric and water utility telecontrol",
            BacnetIp => "Building automation",
            Iec104 => "Power grid telecontrol",
            Iec61850 => "Substation automation",
            OpcUa => "Industrial interoperability",
            Profinet => "Factory automation",
            S7Comm => "Siemens PLC communications",
            OmronFins => "Omron PLC communications",
            MitsubishiMelsec => "Mitsubishi PLC communications",
            Codesys => "PLC runtime",
            CrimsonV3 => "HMI and protocol converters",
            GeSrtp => "GE PLC communications",
            PcWorx => "Phoenix Contact PLC engineering",
            ProConOs => "PLC runtime",
            HartIp => "Process instrumentation",
            CcLinkIe => "Industrial field networks",
            KnxIp => "Home and building control",
            Lonworks => "Distributed control networks",
            MoxaNport => "Serial device servers",
            VeederRootAtg => "Automatic tank gauges",
            CrestronCip => "Integrated building and AV control",
        }
    }

    /// The conventional TCP port of the service (used by the simulator when
    /// a CPS device is the *target* of a DoS attack, e.g. Ethernet/IP on
    /// 44818).
    pub fn port(self) -> u16 {
        use CpsService::*;
        match self {
            TelventOasysDna => 5050,
            SncGene => 38080,
            NiagaraFox => 1911,
            Mqtt => 1883,
            EthernetIp => 44818,
            AbbRanger => 10307,
            SiemensSpectrumPowerTg => 7700,
            ModbusTcp => 502,
            FoxboroInvensys => 55555,
            FoundationFieldbusHse => 1089,
            Dnp3 => 20000,
            BacnetIp => 47808,
            Iec104 => 2404,
            Iec61850 => 102,
            OpcUa => 4840,
            Profinet => 34962,
            S7Comm => 10102,
            OmronFins => 9600,
            MitsubishiMelsec => 5007,
            Codesys => 2455,
            CrimsonV3 => 789,
            GeSrtp => 18245,
            PcWorx => 1962,
            ProConOs => 20547,
            HartIp => 5094,
            CcLinkIe => 45237,
            KnxIp => 3671,
            Lonworks => 1628,
            MoxaNport => 4800,
            VeederRootAtg => 10001,
            CrestronCip => 41794,
        }
    }
}

impl fmt::Display for CpsService {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use CpsService::*;
        let s = match self {
            TelventOasysDna => "Telvent OASyS DNA",
            SncGene => "SNC GENe",
            NiagaraFox => "Niagara Fox",
            Mqtt => "MQ Telemetry Transport",
            EthernetIp => "Ethernet/IP",
            AbbRanger => "ABB Ranger",
            SiemensSpectrumPowerTg => "Siemens Spectrum PowerTG",
            ModbusTcp => "Modbus TCP",
            FoxboroInvensys => "Foxboro/Invensys Foxboro",
            FoundationFieldbusHse => "Foundation Fieldbus HSE",
            Dnp3 => "DNP3",
            BacnetIp => "BACnet/IP",
            Iec104 => "IEC 60870-5-104",
            Iec61850 => "IEC 61850/MMS",
            OpcUa => "OPC UA",
            Profinet => "PROFINET",
            S7Comm => "Siemens S7comm",
            OmronFins => "Omron FINS",
            MitsubishiMelsec => "Mitsubishi MELSEC-Q",
            Codesys => "CODESYS",
            CrimsonV3 => "Red Lion Crimson v3",
            GeSrtp => "GE SRTP",
            PcWorx => "PC Worx",
            ProConOs => "ProConOS",
            HartIp => "HART-IP",
            CcLinkIe => "CC-Link IE",
            KnxIp => "KNXnet/IP",
            Lonworks => "LonWorks",
            MoxaNport => "Moxa NPort",
            VeederRootAtg => "Veeder-Root ATG",
            CrestronCip => "Crestron CIP",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thirty_one_cps_services() {
        assert_eq!(CpsService::ALL.len(), 31);
        let mut seen = std::collections::HashSet::new();
        for s in CpsService::ALL {
            assert!(seen.insert(s), "duplicate service {s}");
        }
    }

    #[test]
    fn table_iii_top10_ordering_by_weight() {
        let weights: Vec<f64> = CpsService::ALL[..10]
            .iter()
            .map(|s| s.compromised_weight())
            .collect();
        for pair in weights.windows(2) {
            assert!(pair[0] >= pair[1], "top-10 must be sorted: {weights:?}");
        }
        assert_eq!(CpsService::TelventOasysDna.compromised_weight(), 20.0);
        assert_eq!(CpsService::FoundationFieldbusHse.compromised_weight(), 3.0);
    }

    #[test]
    fn minor_services_are_lighter_than_top10() {
        let min_top10 = CpsService::ALL[..10]
            .iter()
            .map(|s| s.compromised_weight())
            .fold(f64::INFINITY, f64::min);
        for s in &CpsService::ALL[10..] {
            assert!(s.compromised_weight() < min_top10);
        }
    }

    #[test]
    fn consumer_weights_sum_to_100() {
        let deploy: f64 = ConsumerKind::ALL.iter().map(|k| k.deploy_weight()).sum();
        let comp: f64 = ConsumerKind::ALL
            .iter()
            .map(|k| k.compromised_weight())
            .sum();
        assert!((deploy - 100.0).abs() < 0.5, "deploy sums to {deploy}");
        assert!((comp - 100.0).abs() < 0.5, "compromised sums to {comp}");
    }

    #[test]
    fn compromised_routers_and_cameras_overrepresented() {
        // Fig 3 vs §III-A1: routers and cameras make up a larger share of
        // the compromised population than of deployments.
        assert!(ConsumerKind::Router.compromised_weight() > ConsumerKind::Router.deploy_weight());
        assert!(
            ConsumerKind::IpCamera.compromised_weight() > ConsumerKind::IpCamera.deploy_weight()
        );
        assert!(ConsumerKind::Printer.compromised_weight() < ConsumerKind::Printer.deploy_weight());
    }

    #[test]
    fn service_ports_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for s in CpsService::ALL {
            assert!(seen.insert(s.port()), "duplicate port {} for {s}", s.port());
        }
    }

    #[test]
    fn ethernet_ip_uses_port_44818() {
        // §IV-B1: the Rockwell ControlLogix DoS victims ran Ethernet/IP on
        // TCP/UDP 44818.
        assert_eq!(CpsService::EthernetIp.port(), 44818);
    }

    #[test]
    fn display_matches_paper_labels() {
        assert_eq!(CpsService::TelventOasysDna.to_string(), "Telvent OASyS DNA");
        assert_eq!(CpsService::Mqtt.to_string(), "MQ Telemetry Transport");
        assert_eq!(ConsumerKind::Router.to_string(), "Routers");
        assert_eq!(Realm::Cps.to_string(), "CPS");
    }

    #[test]
    fn common_applications_nonempty() {
        for s in CpsService::ALL {
            assert!(!s.common_applications().is_empty());
        }
    }
}
