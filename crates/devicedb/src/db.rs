//! The IP-indexed device database.
//!
//! Correlation (§III-B) is a join between darknet source addresses and this
//! inventory, so the primary query is exact-IP lookup. Aggregation queries
//! (by realm, country, ISP, kind) back the characterization tables.

use crate::correlate::CorrelationIndex;
use crate::device::{DeviceId, IotDevice};
use crate::geo::CountryCode;
use crate::isp::IspId;
use crate::taxonomy::Realm;
use std::collections::HashMap;
use std::net::Ipv4Addr;
use std::sync::OnceLock;

/// Lazily-built derived structures over the inventory: the correlation
/// index and the per-report aggregate counts. All are pure functions of
/// the device list, built on first use and dropped whenever the list
/// changes ([`DeviceDb::push`] resets the whole cache), so they never
/// affect observable `DeviceDb` semantics. Cloning a `DeviceDb` starts
/// with a cold cache.
#[derive(Default)]
struct DbCache {
    index: OnceLock<CorrelationIndex>,
    realm_counts: OnceLock<(usize, usize)>,
    /// Indexed by realm filter slot: 0 = all, 1 = consumer, 2 = CPS.
    by_country: OnceLock<[HashMap<CountryCode, usize>; 3]>,
    by_isp: OnceLock<[HashMap<IspId, usize>; 3]>,
}

impl Clone for DbCache {
    fn clone(&self) -> Self {
        DbCache::default()
    }
}

impl std::fmt::Debug for DbCache {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DbCache")
            .field("index", &self.index.get().is_some())
            .field("aggregates", &self.realm_counts.get().is_some())
            .finish()
    }
}

/// Slot in the cached aggregate arrays for a realm filter.
#[inline]
fn realm_slot(realm: Option<Realm>) -> usize {
    match realm {
        None => 0,
        Some(Realm::Consumer) => 1,
        Some(Realm::Cps) => 2,
    }
}

/// An immutable inventory of IoT devices with an exact-IP index.
///
/// # Example
///
/// ```
/// use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
///
/// let out = InventoryBuilder::new(SynthConfig::small(1)).build();
/// let dev = out.db.iter().next().unwrap();
/// let found = out.db.lookup_ip(dev.ip).unwrap();
/// assert_eq!(found.id, dev.id);
/// ```
#[derive(Debug, Clone, Default)]
pub struct DeviceDb {
    devices: Vec<IotDevice>,
    /// Push-time duplicate detection only; correlation goes through the
    /// cached [`CorrelationIndex`] (a lazy index can't absorb per-push
    /// inserts without rebuilding, and push order must stay first-wins).
    by_ip: HashMap<Ipv4Addr, DeviceId>,
    cache: DbCache,
}

impl DeviceDb {
    /// An empty database.
    pub fn new() -> Self {
        DeviceDb::default()
    }

    /// Build from a device list.
    ///
    /// Devices are re-assigned dense ids in input order. If two devices
    /// share an address, the **first** one wins the IP index (mirroring a
    /// first-seen Shodan snapshot) and the duplicate is dropped.
    pub fn from_devices<I: IntoIterator<Item = IotDevice>>(devices: I) -> Self {
        let mut db = DeviceDb::new();
        for d in devices {
            db.push(d);
        }
        db
    }

    /// Append a device, re-assigning its id; returns the id, or `None` if
    /// the address is already taken.
    pub fn push(&mut self, mut device: IotDevice) -> Option<DeviceId> {
        if self.by_ip.contains_key(&device.ip) {
            return None;
        }
        let id = DeviceId(self.devices.len() as u32);
        device.id = id;
        self.by_ip.insert(device.ip, id);
        self.devices.push(device);
        self.cache = DbCache::default();
        Some(id)
    }

    /// All devices in dense id order.
    pub fn as_slice(&self) -> &[IotDevice] {
        &self.devices
    }

    /// Number of devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// Whether the inventory is empty.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device with the given id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this database.
    pub fn device(&self, id: DeviceId) -> &IotDevice {
        &self.devices[id.0 as usize]
    }

    /// The dense intern index of `id`.
    ///
    /// Ids issued by [`push`](Self::push) are dense: the n-th accepted
    /// device gets `DeviceId(n)`, so ids double as array indices. The
    /// columnar analysis structures (`DeviceTable`, `DeviceSet`) rely on
    /// this contract; `index_of`/[`id_at`](Self::id_at) make it explicit
    /// at call sites instead of scattering `id.0 as usize` casts.
    #[inline]
    pub fn index_of(&self, id: DeviceId) -> usize {
        debug_assert!(
            (id.0 as usize) < self.devices.len(),
            "id {} not issued by this database",
            id.0
        );
        id.0 as usize
    }

    /// The id at dense intern index `index` — the inverse of
    /// [`index_of`](Self::index_of).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len()`.
    #[inline]
    pub fn id_at(&self, index: usize) -> DeviceId {
        assert!(index < self.devices.len(), "index {index} out of range");
        DeviceId(index as u32)
    }

    /// The two-level correlation index over this inventory, built on
    /// first use and reused until the next [`push`](Self::push).
    pub fn correlation_index(&self) -> &CorrelationIndex {
        self.cache
            .index
            .get_or_init(|| CorrelationIndex::build(&self.devices))
    }

    /// Resolve `ip` to `(dense intern index, realm)` — the correlation
    /// hot path. See [`CorrelationIndex::correlate`].
    #[inline]
    pub fn correlate(&self, ip: Ipv4Addr) -> Option<(u32, Realm)> {
        self.correlation_index().correlate(ip)
    }

    /// The device at `ip`, if any.
    ///
    /// Compatibility shim over [`correlate`](Self::correlate) — prefer
    /// that in per-flow paths, which need only the dense index and realm.
    pub fn lookup_ip(&self, ip: Ipv4Addr) -> Option<&IotDevice> {
        self.correlate(ip).map(|(di, _)| &self.devices[di as usize])
    }

    /// Iterate over all devices in id order.
    pub fn iter(&self) -> std::slice::Iter<'_, IotDevice> {
        self.devices.iter()
    }

    /// Count devices per realm as `(consumer, cps)`; cached after the
    /// first call.
    pub fn realm_counts(&self) -> (usize, usize) {
        *self.cache.realm_counts.get_or_init(|| {
            let consumer = self
                .devices
                .iter()
                .filter(|d| d.realm() == Realm::Consumer)
                .count();
            (consumer, self.devices.len() - consumer)
        })
    }

    /// Count devices per country, optionally restricted to one realm.
    ///
    /// All three filter variants are materialized in one inventory pass
    /// on first use and served as cached views afterwards — these back
    /// the characterization tables and used to re-scan per report.
    pub fn count_by_country(&self, realm: Option<Realm>) -> &HashMap<CountryCode, usize> {
        let maps = self.cache.by_country.get_or_init(|| {
            let mut maps: [HashMap<CountryCode, usize>; 3] = Default::default();
            for d in &self.devices {
                *maps[0].entry(d.country).or_insert(0) += 1;
                *maps[realm_slot(Some(d.realm()))]
                    .entry(d.country)
                    .or_insert(0) += 1;
            }
            maps
        });
        &maps[realm_slot(realm)]
    }

    /// Count devices per ISP, optionally restricted to one realm; cached
    /// like [`count_by_country`](Self::count_by_country).
    pub fn count_by_isp(&self, realm: Option<Realm>) -> &HashMap<IspId, usize> {
        let maps = self.cache.by_isp.get_or_init(|| {
            let mut maps: [HashMap<IspId, usize>; 3] = Default::default();
            for d in &self.devices {
                *maps[0].entry(d.isp).or_insert(0) += 1;
                *maps[realm_slot(Some(d.realm()))].entry(d.isp).or_insert(0) += 1;
            }
            maps
        });
        &maps[realm_slot(realm)]
    }
}

impl DeviceDb {
    /// Start a fluent query over the inventory.
    ///
    /// # Example
    ///
    /// ```
    /// use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
    /// use iotscope_devicedb::{ConsumerKind, Realm};
    ///
    /// let out = InventoryBuilder::new(SynthConfig::small(1)).build();
    /// let routers = out.db.query().kind(ConsumerKind::Router).count();
    /// let consumer = out.db.query().realm(Realm::Consumer).count();
    /// assert!(routers <= consumer);
    /// ```
    pub fn query(&self) -> DeviceQuery<'_> {
        DeviceQuery {
            db: self,
            realm: None,
            country: None,
            kind: None,
            service: None,
            isp: None,
        }
    }
}

/// A fluent inventory filter produced by [`DeviceDb::query`]. All set
/// criteria must match (conjunction).
#[derive(Debug, Clone, Copy)]
pub struct DeviceQuery<'a> {
    db: &'a DeviceDb,
    realm: Option<Realm>,
    country: Option<CountryCode>,
    kind: Option<crate::taxonomy::ConsumerKind>,
    service: Option<crate::taxonomy::CpsService>,
    isp: Option<IspId>,
}

impl<'a> DeviceQuery<'a> {
    /// Restrict to one realm.
    pub fn realm(mut self, realm: Realm) -> Self {
        self.realm = Some(realm);
        self
    }

    /// Restrict to one country.
    pub fn country(mut self, country: CountryCode) -> Self {
        self.country = Some(country);
        self
    }

    /// Restrict to one consumer kind (implies the consumer realm).
    pub fn kind(mut self, kind: crate::taxonomy::ConsumerKind) -> Self {
        self.kind = Some(kind);
        self
    }

    /// Restrict to devices exposing one CPS service (implies CPS).
    pub fn service(mut self, service: crate::taxonomy::CpsService) -> Self {
        self.service = Some(service);
        self
    }

    /// Restrict to one ISP.
    pub fn isp(mut self, isp: IspId) -> Self {
        self.isp = Some(isp);
        self
    }

    /// Iterate over the matching devices in id order.
    pub fn iter(self) -> impl Iterator<Item = &'a IotDevice> {
        self.db.iter().filter(move |d| self.matches(d))
    }

    /// Count the matching devices.
    pub fn count(self) -> usize {
        self.iter().count()
    }

    fn matches(&self, d: &IotDevice) -> bool {
        if let Some(r) = self.realm {
            if d.realm() != r {
                return false;
            }
        }
        if let Some(c) = self.country {
            if d.country != c {
                return false;
            }
        }
        if let Some(k) = self.kind {
            if d.profile.consumer_kind() != Some(k) {
                return false;
            }
        }
        if let Some(s) = self.service {
            if !d
                .profile
                .cps_services()
                .is_some_and(|list| list.contains(&s))
            {
                return false;
            }
        }
        if let Some(i) = self.isp {
            if d.isp != i {
                return false;
            }
        }
        true
    }
}

impl FromIterator<IotDevice> for DeviceDb {
    fn from_iter<I: IntoIterator<Item = IotDevice>>(iter: I) -> Self {
        DeviceDb::from_devices(iter)
    }
}

impl Extend<IotDevice> for DeviceDb {
    fn extend<I: IntoIterator<Item = IotDevice>>(&mut self, iter: I) {
        for d in iter {
            self.push(d);
        }
    }
}

impl<'a> IntoIterator for &'a DeviceDb {
    type Item = &'a IotDevice;
    type IntoIter = std::slice::Iter<'a, IotDevice>;
    fn into_iter(self) -> Self::IntoIter {
        self.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::device::DeviceProfile;
    use crate::taxonomy::ConsumerKind;

    fn dev(ip: [u8; 4], code: &str, realm: Realm) -> IotDevice {
        IotDevice {
            id: DeviceId(0),
            ip: Ipv4Addr::from(ip),
            profile: match realm {
                Realm::Consumer => DeviceProfile::Consumer(ConsumerKind::Router),
                Realm::Cps => DeviceProfile::Cps(vec![crate::taxonomy::CpsService::ModbusTcp]),
            },
            country: CountryCode::from_code(code).unwrap(),
            isp: IspId(0),
        }
    }

    #[test]
    fn push_assigns_dense_ids() {
        let mut db = DeviceDb::new();
        let a = db.push(dev([1, 1, 1, 1], "US", Realm::Consumer)).unwrap();
        let b = db.push(dev([1, 1, 1, 2], "RU", Realm::Cps)).unwrap();
        assert_eq!(a, DeviceId(0));
        assert_eq!(b, DeviceId(1));
        assert_eq!(db.device(b).country.code(), "RU");
    }

    #[test]
    fn intern_index_round_trips() {
        let db = DeviceDb::from_devices([
            dev([1, 1, 1, 1], "US", Realm::Consumer),
            dev([1, 1, 1, 2], "RU", Realm::Cps),
        ]);
        for (i, d) in db.iter().enumerate() {
            assert_eq!(db.index_of(d.id), i);
            assert_eq!(db.id_at(i), d.id);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn id_at_out_of_range_panics() {
        let db = DeviceDb::from_devices([dev([1, 1, 1, 1], "US", Realm::Consumer)]);
        let _ = db.id_at(1);
    }

    #[test]
    fn duplicate_ip_is_rejected_first_wins() {
        let mut db = DeviceDb::new();
        db.push(dev([9, 9, 9, 9], "US", Realm::Consumer)).unwrap();
        assert_eq!(db.push(dev([9, 9, 9, 9], "RU", Realm::Cps)), None);
        assert_eq!(db.len(), 1);
        assert_eq!(
            db.lookup_ip(Ipv4Addr::new(9, 9, 9, 9))
                .unwrap()
                .country
                .code(),
            "US"
        );
    }

    #[test]
    fn lookup_miss_returns_none() {
        let db = DeviceDb::from_devices([dev([1, 2, 3, 4], "US", Realm::Consumer)]);
        assert!(db.lookup_ip(Ipv4Addr::new(4, 3, 2, 1)).is_none());
    }

    #[test]
    fn realm_counts_split() {
        let db = DeviceDb::from_devices([
            dev([1, 0, 0, 1], "US", Realm::Consumer),
            dev([1, 0, 0, 2], "US", Realm::Consumer),
            dev([1, 0, 0, 3], "CN", Realm::Cps),
        ]);
        assert_eq!(db.realm_counts(), (2, 1));
    }

    #[test]
    fn count_by_country_with_realm_filter() {
        let db = DeviceDb::from_devices([
            dev([1, 0, 0, 1], "US", Realm::Consumer),
            dev([1, 0, 0, 2], "RU", Realm::Cps),
            dev([1, 0, 0, 3], "RU", Realm::Consumer),
        ]);
        let all = db.count_by_country(None);
        assert_eq!(all[&CountryCode::from_code("RU").unwrap()], 2);
        let cps = db.count_by_country(Some(Realm::Cps));
        assert_eq!(cps[&CountryCode::from_code("RU").unwrap()], 1);
        assert!(!cps.contains_key(&CountryCode::from_code("US").unwrap()));
    }

    #[test]
    fn collect_and_extend() {
        let mut db: DeviceDb = vec![dev([1, 0, 0, 1], "US", Realm::Consumer)]
            .into_iter()
            .collect();
        db.extend([dev([1, 0, 0, 2], "CN", Realm::Cps)]);
        assert_eq!(db.len(), 2);
        assert_eq!((&db).into_iter().count(), 2);
    }

    #[test]
    fn query_builder_filters_conjunctively() {
        use crate::taxonomy::{ConsumerKind, CpsService};
        let db = DeviceDb::from_devices([
            dev([1, 0, 0, 1], "US", Realm::Consumer),
            dev([1, 0, 0, 2], "RU", Realm::Consumer),
            dev([1, 0, 0, 3], "RU", Realm::Cps),
        ]);
        assert_eq!(db.query().count(), 3);
        assert_eq!(db.query().realm(Realm::Consumer).count(), 2);
        assert_eq!(
            db.query()
                .realm(Realm::Consumer)
                .country(CountryCode::from_code("RU").unwrap())
                .count(),
            1
        );
        assert_eq!(db.query().kind(ConsumerKind::Router).count(), 2);
        assert_eq!(db.query().kind(ConsumerKind::Printer).count(), 0);
        assert_eq!(db.query().service(CpsService::ModbusTcp).count(), 1);
        assert_eq!(db.query().service(CpsService::Dnp3).count(), 0);
        assert_eq!(db.query().isp(IspId(0)).count(), 3);
        assert_eq!(db.query().isp(IspId(9)).count(), 0);
        // Iteration yields actual devices.
        let ru_consumer: Vec<_> = db
            .query()
            .realm(Realm::Consumer)
            .country(CountryCode::from_code("RU").unwrap())
            .iter()
            .collect();
        assert_eq!(ru_consumer.len(), 1);
        assert_eq!(ru_consumer[0].ip, Ipv4Addr::new(1, 0, 0, 2));
    }

    #[test]
    fn empty_db_behaves() {
        let db = DeviceDb::new();
        assert!(db.is_empty());
        assert_eq!(db.realm_counts(), (0, 0));
        assert!(db.count_by_country(None).is_empty());
        assert!(db.count_by_isp(None).is_empty());
        assert!(db.correlate(Ipv4Addr::new(1, 2, 3, 4)).is_none());
    }

    #[test]
    fn push_invalidates_cached_views() {
        let mut db = DeviceDb::new();
        db.push(dev([1, 0, 0, 1], "US", Realm::Consumer)).unwrap();
        // Warm every cache, then mutate.
        assert_eq!(db.realm_counts(), (1, 0));
        assert_eq!(db.count_by_country(None).len(), 1);
        assert_eq!(db.count_by_isp(Some(Realm::Cps)).len(), 0);
        assert!(db.correlate(Ipv4Addr::new(1, 0, 0, 1)).is_some());
        db.push(dev([1, 0, 0, 2], "RU", Realm::Cps)).unwrap();
        assert_eq!(db.realm_counts(), (1, 1));
        assert_eq!(db.count_by_country(None).len(), 2);
        assert_eq!(db.count_by_isp(Some(Realm::Cps)).len(), 1);
        assert_eq!(
            db.correlate(Ipv4Addr::new(1, 0, 0, 2)),
            Some((1, Realm::Cps))
        );
    }

    #[test]
    fn clone_starts_cold_but_answers_identically() {
        let db = DeviceDb::from_devices([
            dev([1, 0, 0, 1], "US", Realm::Consumer),
            dev([1, 0, 0, 2], "RU", Realm::Cps),
        ]);
        db.realm_counts(); // warm the original
        let cloned = db.clone();
        assert_eq!(cloned.realm_counts(), db.realm_counts());
        assert_eq!(cloned.count_by_country(None), db.count_by_country(None));
        assert_eq!(
            cloned.correlate(Ipv4Addr::new(1, 0, 0, 2)),
            db.correlate(Ipv4Addr::new(1, 0, 0, 2))
        );
    }
}
