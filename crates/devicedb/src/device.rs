//! The IoT device record.

use crate::geo::CountryCode;
use crate::isp::IspId;
use crate::taxonomy::{ConsumerKind, CpsService, Realm};
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// Identifier of a device inside a [`crate::DeviceDb`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct DeviceId(pub u32);

impl fmt::Display for DeviceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "dev#{}", self.0)
    }
}

/// What kind of device this is: a consumer category, or the set of CPS
/// services the device exposes (1..=3 services, per §III-B2 "services are
/// not mutually exclusive").
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DeviceProfile {
    /// A consumer device of the given kind.
    Consumer(ConsumerKind),
    /// A CPS device supporting the listed services.
    Cps(Vec<CpsService>),
}

impl DeviceProfile {
    /// The realm implied by the profile.
    pub fn realm(&self) -> Realm {
        match self {
            DeviceProfile::Consumer(_) => Realm::Consumer,
            DeviceProfile::Cps(_) => Realm::Cps,
        }
    }

    /// The consumer kind, if this is a consumer profile.
    pub fn consumer_kind(&self) -> Option<ConsumerKind> {
        match self {
            DeviceProfile::Consumer(k) => Some(*k),
            DeviceProfile::Cps(_) => None,
        }
    }

    /// The CPS services, if this is a CPS profile.
    pub fn cps_services(&self) -> Option<&[CpsService]> {
        match self {
            DeviceProfile::Consumer(_) => None,
            DeviceProfile::Cps(s) => Some(s),
        }
    }
}

/// One Internet-facing IoT device as indexed by the (synthetic) inventory.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct IotDevice {
    /// Stable identifier within the database.
    pub id: DeviceId,
    /// The device's public address, unique across the inventory.
    pub ip: Ipv4Addr,
    /// What the device is.
    pub profile: DeviceProfile,
    /// Hosting country.
    pub country: CountryCode,
    /// Hosting ISP.
    pub isp: IspId,
}

impl IotDevice {
    /// The device's realm.
    pub fn realm(&self) -> Realm {
        self.profile.realm()
    }
}

impl fmt::Display for IotDevice {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {} [{}] {}",
            self.id,
            self.ip,
            self.realm(),
            self.country
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IotDevice {
        IotDevice {
            id: DeviceId(7),
            ip: Ipv4Addr::new(5, 6, 7, 8),
            profile: DeviceProfile::Consumer(ConsumerKind::Router),
            country: CountryCode::from_code("RU").unwrap(),
            isp: IspId(3),
        }
    }

    #[test]
    fn profile_realm_and_accessors() {
        let c = DeviceProfile::Consumer(ConsumerKind::IpCamera);
        assert_eq!(c.realm(), Realm::Consumer);
        assert_eq!(c.consumer_kind(), Some(ConsumerKind::IpCamera));
        assert_eq!(c.cps_services(), None);

        let p = DeviceProfile::Cps(vec![CpsService::ModbusTcp, CpsService::Dnp3]);
        assert_eq!(p.realm(), Realm::Cps);
        assert_eq!(p.consumer_kind(), None);
        assert_eq!(p.cps_services().unwrap().len(), 2);
    }

    #[test]
    fn device_display_mentions_identity() {
        let d = sample();
        let s = d.to_string();
        assert!(s.contains("dev#7"));
        assert!(s.contains("5.6.7.8"));
        assert!(s.contains("Consumer"));
    }
}
