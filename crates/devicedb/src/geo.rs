//! Country registry and the paper's geographic calibration weights.
//!
//! Weights come from the published marginals: Fig 1a (deployment, top 15
//! countries with cumulative 69.3%), §III-B1 (compromised consumer
//! population, e.g. Russia 32%), and §III-B2 (compromised CPS population,
//! e.g. China 17%). Countries beyond the named ones carry small filler
//! weights so populations span many countries, as in the paper (161
//! countries hosting compromised devices).

use serde::{Deserialize, Serialize};
use std::fmt;

/// A two-letter country code, e.g. `"RU"`.
///
/// Codes are interned as indices into the static country table, so the type
/// is `Copy` and cheap to key maps with.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CountryCode(u8);

impl CountryCode {
    /// Look up a code such as `"RU"`; `None` for unknown codes.
    pub fn from_code(code: &str) -> Option<CountryCode> {
        COUNTRIES
            .iter()
            .position(|c| c.code == code)
            .map(|i| CountryCode(i as u8))
    }

    /// The two-letter code.
    pub fn code(self) -> &'static str {
        COUNTRIES[self.0 as usize].code
    }

    /// The human-readable name the paper uses (e.g. `"Russian F."`).
    pub fn name(self) -> &'static str {
        COUNTRIES[self.0 as usize].name
    }

    /// Calibration record for this country.
    pub fn info(self) -> &'static CountryInfo {
        &COUNTRIES[self.0 as usize]
    }

    /// All registered countries.
    pub fn all() -> impl Iterator<Item = CountryCode> {
        (0..COUNTRIES.len()).map(|i| CountryCode(i as u8))
    }

    /// Number of registered countries.
    pub fn count() -> usize {
        COUNTRIES.len()
    }

    /// Dense index into the country table (stable within a build).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for CountryCode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Per-country calibration weights (relative, normalized at sampling time).
#[derive(Debug, Clone, PartialEq)]
pub struct CountryInfo {
    /// ISO-like two-letter code.
    pub code: &'static str,
    /// Display name (matching the paper's labels where it names the
    /// country).
    pub name: &'static str,
    /// Relative share of *deployed* devices (Fig 1a shape).
    pub deploy_weight: f64,
    /// Fraction of this country's deployed devices that are CPS. Fig 1a
    /// shows consumer > CPS everywhere except China, France, Canada,
    /// Vietnam, Taiwan and Spain.
    pub cps_deploy_share: f64,
    /// Relative share of the *compromised consumer* population (§III-B1).
    pub consumer_comp_weight: f64,
    /// Relative share of the *compromised CPS* population (§III-B2).
    pub cps_comp_weight: f64,
}

const fn c(
    code: &'static str,
    name: &'static str,
    deploy_weight: f64,
    cps_deploy_share: f64,
    consumer_comp_weight: f64,
    cps_comp_weight: f64,
) -> CountryInfo {
    CountryInfo {
        code,
        name,
        deploy_weight,
        cps_deploy_share,
        consumer_comp_weight,
        cps_comp_weight,
    }
}

/// The static country table.
///
/// Deployment weights for the top 15 match Fig 1a (cumulative 69.3%);
/// compromised weights are reconstructed from §III-B so that the joint
/// shape (Fig 1b ordering, Russia ≈31% compromised vs U.S. ≈2.4%) emerges.
pub static COUNTRIES: &[CountryInfo] = &[
    // ---- Fig 1a top 15 (deployment) ----
    c("US", "U.S.", 25.0, 0.43, 9.0, 6.9),
    c("GB", "U.K.", 6.0, 0.40, 1.0, 1.2),
    // Russia's *benign* deployment weight is set below its Fig 1a share
    // (5.9%) because the planted compromised population adds ~4.5k Russian
    // devices on top; the totals land on the Fig 1a ordering.
    c("RU", "Russian F.", 4.7, 0.35, 32.0, 14.8),
    c("CN", "China", 5.0, 0.62, 2.2, 17.0),
    c("KR", "R. of Korea", 4.8, 0.42, 3.0, 8.3),
    c("FR", "France", 4.5, 0.60, 0.8, 2.2),
    c("IT", "Italy", 3.6, 0.40, 0.9, 2.2),
    c("DE", "Germany", 3.4, 0.40, 0.9, 2.2),
    c("CA", "Canada", 3.2, 0.60, 0.5, 1.0),
    c("AU", "Australia", 2.8, 0.40, 0.6, 1.0),
    c("VN", "Vietnam", 2.6, 0.60, 2.5, 1.8),
    c("TW", "Taiwan", 2.4, 0.62, 2.0, 2.8),
    c("BR", "Brazil", 2.2, 0.42, 3.0, 2.2),
    c("ES", "Spain", 2.0, 0.58, 0.7, 0.8),
    c("MX", "Mexico", 1.9, 0.40, 1.8, 0.8),
    // ---- Fig 1b newcomers (high compromise, modest deployment) ----
    c("TH", "Thailand", 1.0, 0.40, 4.0, 2.0),
    c("ID", "Indonesia", 1.0, 0.40, 4.0, 1.5),
    c("SG", "Singapore", 0.6, 0.45, 2.0, 2.0),
    c("TR", "Turkey", 1.3, 0.40, 2.5, 3.2),
    c("UA", "Ukraine", 0.9, 0.35, 2.5, 2.5),
    c("IN", "India", 1.4, 0.40, 2.5, 2.5),
    c("PH", "Philippine", 0.6, 0.35, 2.2, 0.5),
    // ---- remaining named countries (filler weights) ----
    c("JP", "Japan", 1.8, 0.45, 0.4, 1.0),
    c("NL", "Netherlands", 1.5, 0.40, 0.5, 0.8),
    c("PL", "Poland", 1.4, 0.40, 0.8, 0.6),
    c("SE", "Sweden", 1.2, 0.40, 0.3, 0.4),
    c("CH", "Switzerland", 1.1, 0.45, 0.2, 0.8),
    c("AR", "Argentina", 1.0, 0.40, 0.8, 0.5),
    c("GR", "Greece", 0.8, 0.40, 0.4, 0.3),
    c("PT", "Portugal", 0.8, 0.40, 0.3, 0.3),
    c("CZ", "Czechia", 0.8, 0.40, 0.4, 0.4),
    c("RO", "Romania", 0.8, 0.40, 0.7, 0.5),
    c("BE", "Belgium", 0.8, 0.40, 0.2, 0.3),
    c("AT", "Austria", 0.7, 0.40, 0.2, 0.3),
    c("NO", "Norway", 0.7, 0.40, 0.2, 0.2),
    c("DK", "Denmark", 0.7, 0.40, 0.2, 0.2),
    c("FI", "Finland", 0.7, 0.40, 0.2, 0.2),
    c("IE", "Ireland", 0.6, 0.40, 0.2, 0.2),
    c("HU", "Hungary", 0.6, 0.40, 0.3, 0.3),
    c("BG", "Bulgaria", 0.6, 0.40, 0.5, 0.4),
    c("MY", "Malaysia", 0.6, 0.40, 0.5, 0.4),
    c("HK", "Hong Kong", 0.6, 0.45, 0.5, 0.6),
    c("NZ", "New Zealand", 0.5, 0.40, 0.2, 0.2),
    c("CL", "Chile", 0.5, 0.40, 0.4, 0.3),
    c("CO", "Colombia", 0.5, 0.40, 0.4, 0.3),
    c("ZA", "South Africa", 0.5, 0.42, 0.4, 0.5),
    c("IL", "Israel", 0.5, 0.42, 0.2, 0.3),
    c("PE", "Peru", 0.4, 0.40, 0.3, 0.2),
    c("VE", "Venezuela", 0.4, 0.40, 0.3, 0.2),
    c("EG", "Egypt", 0.4, 0.40, 0.4, 0.3),
    c("SA", "Saudi Arabia", 0.4, 0.42, 0.3, 0.3),
    c("AE", "U.A.E.", 0.4, 0.42, 0.2, 0.3),
    c("IR", "Iran", 0.3, 0.42, 0.4, 0.4),
    c("PK", "Pakistan", 0.3, 0.40, 0.4, 0.3),
    c("KZ", "Kazakhstan", 0.3, 0.40, 0.4, 0.3),
    c("BY", "Belarus", 0.3, 0.38, 0.4, 0.3),
    c("RS", "Serbia", 0.3, 0.40, 0.3, 0.2),
    c("HR", "Croatia", 0.3, 0.40, 0.2, 0.2),
    c("SK", "Slovakia", 0.3, 0.40, 0.2, 0.2),
    c("DO", "Dominican R.", 0.2, 0.35, 0.3, 0.1),
    c("EC", "Ecuador", 0.2, 0.40, 0.2, 0.1),
    c("SI", "Slovenia", 0.2, 0.40, 0.1, 0.1),
    c("LT", "Lithuania", 0.2, 0.40, 0.2, 0.1),
    c("LV", "Latvia", 0.2, 0.40, 0.2, 0.1),
    c("EE", "Estonia", 0.2, 0.40, 0.1, 0.1),
    c("BD", "Bangladesh", 0.2, 0.40, 0.3, 0.1),
    c("LK", "Sri Lanka", 0.2, 0.40, 0.2, 0.1),
    c("MA", "Morocco", 0.2, 0.40, 0.2, 0.1),
    c("NG", "Nigeria", 0.2, 0.40, 0.2, 0.1),
    c("AZ", "Azerbaijan", 0.1, 0.40, 0.1, 0.1),
    c("GE", "Georgia", 0.1, 0.40, 0.1, 0.1),
    c("MD", "Moldova", 0.1, 0.38, 0.2, 0.1),
    c("BA", "Bosnia", 0.1, 0.40, 0.1, 0.1),
    c("CY", "Cyprus", 0.1, 0.40, 0.1, 0.1),
    c("LU", "Luxembourg", 0.1, 0.40, 0.05, 0.05),
    c("TN", "Tunisia", 0.1, 0.40, 0.1, 0.1),
    c("KE", "Kenya", 0.1, 0.40, 0.1, 0.1),
    c("JO", "Jordan", 0.1, 0.40, 0.1, 0.1),
    c("LB", "Lebanon", 0.1, 0.40, 0.1, 0.1),
    c("KW", "Kuwait", 0.1, 0.42, 0.05, 0.1),
    c("QA", "Qatar", 0.1, 0.42, 0.05, 0.1),
    c("IQ", "Iraq", 0.1, 0.40, 0.1, 0.1),
    c("UY", "Uruguay", 0.1, 0.40, 0.1, 0.05),
    c("BO", "Bolivia", 0.1, 0.40, 0.1, 0.05),
    c("PY", "Paraguay", 0.1, 0.40, 0.1, 0.05),
    c("CR", "Costa Rica", 0.1, 0.40, 0.1, 0.05),
    c("PA", "Panama", 0.1, 0.40, 0.1, 0.05),
    c("DZ", "Algeria", 0.1, 0.40, 0.1, 0.05),
    c("GH", "Ghana", 0.1, 0.40, 0.1, 0.05),
    c("IS", "Iceland", 0.05, 0.40, 0.02, 0.02),
    c("MT", "Malta", 0.05, 0.40, 0.02, 0.02),
    c("MK", "N. Macedonia", 0.05, 0.40, 0.05, 0.02),
    c("AL", "Albania", 0.05, 0.40, 0.05, 0.02),
    c("ME", "Montenegro", 0.05, 0.40, 0.02, 0.02),
    c("AM", "Armenia", 0.05, 0.40, 0.05, 0.02),
    c("SN", "Senegal", 0.05, 0.40, 0.02, 0.02),
    c("CM", "Cameroon", 0.05, 0.40, 0.02, 0.02),
    c("OM", "Oman", 0.05, 0.42, 0.02, 0.02),
    c("BH", "Bahrain", 0.05, 0.42, 0.02, 0.02),
    // ---- long tail: the paper saw compromised devices in 161 countries ----
    c("NP", "Nepal", 0.05, 0.40, 0.06, 0.03),
    c("MM", "Myanmar", 0.05, 0.40, 0.06, 0.03),
    c("KH", "Cambodia", 0.05, 0.40, 0.06, 0.03),
    c("LA", "Laos", 0.03, 0.40, 0.04, 0.02),
    c("MN", "Mongolia", 0.03, 0.40, 0.04, 0.02),
    c("BN", "Brunei", 0.03, 0.42, 0.02, 0.02),
    c("MV", "Maldives", 0.02, 0.40, 0.02, 0.01),
    c("BT", "Bhutan", 0.02, 0.40, 0.02, 0.01),
    c("AF", "Afghanistan", 0.03, 0.40, 0.04, 0.02),
    c("UZ", "Uzbekistan", 0.05, 0.40, 0.06, 0.04),
    c("TM", "Turkmenistan", 0.02, 0.40, 0.02, 0.01),
    c("TJ", "Tajikistan", 0.02, 0.40, 0.03, 0.01),
    c("KG", "Kyrgyzstan", 0.03, 0.40, 0.04, 0.02),
    c("SY", "Syria", 0.03, 0.40, 0.04, 0.02),
    c("YE", "Yemen", 0.02, 0.40, 0.03, 0.01),
    c("PS", "Palestine", 0.03, 0.40, 0.03, 0.02),
    c("ET", "Ethiopia", 0.03, 0.40, 0.03, 0.02),
    c("TZ", "Tanzania", 0.03, 0.40, 0.03, 0.02),
    c("UG", "Uganda", 0.03, 0.40, 0.03, 0.02),
    c("ZM", "Zambia", 0.03, 0.40, 0.03, 0.02),
    c("ZW", "Zimbabwe", 0.03, 0.40, 0.03, 0.02),
    c("MZ", "Mozambique", 0.02, 0.40, 0.02, 0.01),
    c("AO", "Angola", 0.03, 0.40, 0.03, 0.02),
    c("NA", "Namibia", 0.02, 0.40, 0.02, 0.01),
    c("BW", "Botswana", 0.02, 0.42, 0.02, 0.01),
    c("MW", "Malawi", 0.02, 0.40, 0.02, 0.01),
    c("RW", "Rwanda", 0.02, 0.40, 0.02, 0.01),
    c("CI", "Ivory Coast", 0.03, 0.40, 0.03, 0.02),
    c("BF", "Burkina Faso", 0.02, 0.40, 0.02, 0.01),
    c("ML", "Mali", 0.02, 0.40, 0.02, 0.01),
    c("NE", "Niger", 0.02, 0.40, 0.02, 0.01),
    c("TD", "Chad", 0.02, 0.40, 0.02, 0.01),
    c("SD", "Sudan", 0.03, 0.40, 0.03, 0.02),
    c("LY", "Libya", 0.03, 0.40, 0.03, 0.02),
    c("MR", "Mauritania", 0.02, 0.40, 0.02, 0.01),
    c("GA", "Gabon", 0.02, 0.42, 0.02, 0.01),
    c("CG", "Congo", 0.02, 0.40, 0.02, 0.01),
    c("CD", "DR Congo", 0.02, 0.40, 0.02, 0.01),
    c("BJ", "Benin", 0.02, 0.40, 0.02, 0.01),
    c("TG", "Togo", 0.02, 0.40, 0.02, 0.01),
    c("GN", "Guinea", 0.02, 0.40, 0.02, 0.01),
    c("MG", "Madagascar", 0.02, 0.40, 0.02, 0.01),
    c("MU", "Mauritius", 0.03, 0.42, 0.03, 0.02),
    c("RE", "Reunion", 0.02, 0.40, 0.02, 0.01),
    c("SC", "Seychelles", 0.02, 0.42, 0.02, 0.01),
    c("GT", "Guatemala", 0.03, 0.40, 0.04, 0.02),
    c("HN", "Honduras", 0.03, 0.40, 0.04, 0.02),
    c("SV", "El Salvador", 0.03, 0.40, 0.04, 0.02),
    c("NI", "Nicaragua", 0.02, 0.40, 0.03, 0.01),
    c("BZ", "Belize", 0.02, 0.40, 0.02, 0.01),
    c("JM", "Jamaica", 0.03, 0.40, 0.03, 0.02),
    c("TT", "Trinidad", 0.03, 0.42, 0.03, 0.02),
    c("BB", "Barbados", 0.02, 0.42, 0.02, 0.01),
    c("BS", "Bahamas", 0.02, 0.42, 0.02, 0.01),
    c("HT", "Haiti", 0.02, 0.40, 0.02, 0.01),
    c("CU", "Cuba", 0.02, 0.40, 0.02, 0.01),
    c("GY", "Guyana", 0.02, 0.40, 0.02, 0.01),
    c("SR", "Suriname", 0.02, 0.40, 0.02, 0.01),
    c("FJ", "Fiji", 0.02, 0.40, 0.02, 0.01),
    c("PG", "Papua N.G.", 0.02, 0.40, 0.02, 0.01),
    c("NC", "New Caledonia", 0.02, 0.42, 0.02, 0.01),
    c("PF", "Fr. Polynesia", 0.02, 0.42, 0.02, 0.01),
    c("GU", "Guam", 0.02, 0.42, 0.02, 0.01),
    c("MO", "Macau", 0.03, 0.45, 0.03, 0.02),
    c("GL", "Greenland", 0.01, 0.40, 0.01, 0.01),
    c("FO", "Faroe Is.", 0.01, 0.40, 0.01, 0.01),
    c("AD", "Andorra", 0.01, 0.42, 0.01, 0.01),
    c("MC", "Monaco", 0.01, 0.42, 0.01, 0.01),
    c("LI", "Liechtenstein", 0.01, 0.42, 0.01, 0.01),
    c("SM", "San Marino", 0.01, 0.42, 0.01, 0.01),
    c("JE", "Jersey", 0.01, 0.42, 0.01, 0.01),
    c("GG", "Guernsey", 0.01, 0.42, 0.01, 0.01),
    c("IM", "Isle of Man", 0.01, 0.42, 0.01, 0.01),
    c("GI", "Gibraltar", 0.01, 0.42, 0.01, 0.01),
    c("AW", "Aruba", 0.01, 0.42, 0.01, 0.01),
    c("CW", "Curacao", 0.01, 0.42, 0.01, 0.01),
    c("KY", "Cayman Is.", 0.01, 0.42, 0.01, 0.01),
    c("BM", "Bermuda", 0.01, 0.42, 0.01, 0.01),
    c("VI", "U.S. Virgin Is.", 0.01, 0.42, 0.01, 0.01),
    c("PR", "Puerto Rico", 0.03, 0.42, 0.03, 0.02),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_unique() {
        let mut seen = std::collections::HashSet::new();
        for info in COUNTRIES {
            assert!(seen.insert(info.code), "duplicate country {}", info.code);
        }
    }

    #[test]
    fn lookup_roundtrip() {
        for info in COUNTRIES {
            let cc = CountryCode::from_code(info.code).unwrap();
            assert_eq!(cc.code(), info.code);
            assert_eq!(cc.name(), info.name);
            assert_eq!(cc.info(), info);
        }
        assert_eq!(CountryCode::from_code("XX"), None);
    }

    #[test]
    fn top_deployment_matches_fig_1a_order() {
        // The table stores *benign* deployment weights; Russia's is set
        // below China's because the planted compromised population adds
        // the difference back (see the RU entry comment). Fig 1a ordering
        // over the full inventory is asserted in the integration tests.
        let us = CountryCode::from_code("US").unwrap();
        let gb = CountryCode::from_code("GB").unwrap();
        let ru = CountryCode::from_code("RU").unwrap();
        assert!(us.info().deploy_weight > gb.info().deploy_weight);
        assert!(gb.info().deploy_weight > ru.info().deploy_weight);
    }

    #[test]
    fn fig_1a_top15_cumulates_to_about_69_percent() {
        let total: f64 = COUNTRIES.iter().map(|c| c.deploy_weight).sum();
        let mut weights: Vec<f64> = COUNTRIES.iter().map(|c| c.deploy_weight).collect();
        weights.sort_by(|a, b| b.partial_cmp(a).unwrap());
        let top15: f64 = weights.iter().take(15).sum();
        let share = top15 / total;
        assert!((0.60..=0.75).contains(&share), "top-15 share {share}");
    }

    #[test]
    fn cps_heavier_countries_match_fig_1a() {
        for code in ["CN", "FR", "CA", "VN", "TW", "ES"] {
            let info = CountryCode::from_code(code).unwrap().info();
            assert!(info.cps_deploy_share > 0.5, "{code} should be CPS-heavy");
        }
        for code in ["US", "GB", "RU", "DE"] {
            let info = CountryCode::from_code(code).unwrap().info();
            assert!(
                info.cps_deploy_share < 0.5,
                "{code} should be consumer-heavy"
            );
        }
    }

    #[test]
    fn compromised_weights_follow_paper_ranking() {
        let w = |code: &str, f: fn(&CountryInfo) -> f64| {
            f(CountryCode::from_code(code).unwrap().info())
        };
        // §III-B1: Russia 32% > U.S. 9% > Indonesia/Thailand 4% consumer.
        assert!(w("RU", |i| i.consumer_comp_weight) > w("US", |i| i.consumer_comp_weight));
        assert!(w("US", |i| i.consumer_comp_weight) > w("ID", |i| i.consumer_comp_weight));
        // §III-B2: China 17% > Russia 14.8% > Korea 8.3% > U.S. 6.9% CPS.
        assert!(w("CN", |i| i.cps_comp_weight) > w("RU", |i| i.cps_comp_weight));
        assert!(w("RU", |i| i.cps_comp_weight) > w("KR", |i| i.cps_comp_weight));
        assert!(w("KR", |i| i.cps_comp_weight) > w("US", |i| i.cps_comp_weight));
    }

    #[test]
    fn table_is_large_enough_for_wide_spread() {
        assert!(
            CountryCode::count() >= 80,
            "need many countries, got {}",
            CountryCode::count()
        );
        assert_eq!(CountryCode::all().count(), CountryCode::count());
    }

    #[test]
    fn display_uses_paper_name() {
        let ru = CountryCode::from_code("RU").unwrap();
        assert_eq!(ru.to_string(), "Russian F.");
    }
}
