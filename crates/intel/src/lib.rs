//! Threat-intelligence substrates for `iotscope`.
//!
//! Section V of the paper correlates the inferred IoT devices with two
//! external sources, neither of which is redistributable:
//!
//! * **Cymon**, a public threat repository indexing IP-keyed events across
//!   six illicit categories (Table VI) — modeled by [`threat::ThreatRepo`];
//! * an **in-house malware database** built by parsing XML sandbox reports
//!   from a daily ThreatTrack feed, indexed by the network activity
//!   (contacted IPs/domains) of each sample, with VirusTotal resolving
//!   hashes to families (Table VII) — modeled by [`sandbox`] (the report
//!   format and parser), [`malwaredb::MalwareDb`] (the index) and
//!   [`family::FamilyResolver`].
//!
//! [`synth::IntelBuilder`] populates both stores *correlated with a
//! simulation's ground truth* plus background noise, so the analysis
//! pipeline's Section V joins exercise the same dataflow as the paper.

#![forbid(unsafe_code)]

pub mod family;
pub mod index;
pub mod malwaredb;
pub mod sandbox;
pub mod synth;
pub mod threat;

pub use family::{FamilyResolver, MalwareFamily};
pub use index::{IntelContext, IntelHit, IntelIndex};
pub use malwaredb::MalwareDb;
pub use sandbox::{MalwareHash, SandboxReport};
pub use threat::{ThreatCategory, ThreatEvent, ThreatRepo};

use std::error::Error;
use std::fmt;

/// Errors produced by the intel substrates.
#[derive(Debug)]
#[non_exhaustive]
pub enum IntelError {
    /// A sandbox report failed to parse.
    ParseReport(String),
}

impl fmt::Display for IntelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IntelError::ParseReport(s) => write!(f, "invalid sandbox report: {s}"),
        }
    }
}

impl Error for IntelError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn error_is_send_sync_display() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<IntelError>();
        let e = IntelError::ParseReport("missing hash".into());
        assert!(format!("{e}").contains("missing hash"));
    }
}
