//! The Cymon-like threat event repository.
//!
//! Cymon "tracks and aggregates Internet-scale events related to IP
//! addresses and domains, which are involved in malware, phishing, botnets,
//! spamming, DNS blacklisting, scanning, and web attacks" (§V-A). The
//! repository here keeps the same shape: IP-keyed events in the six
//! categories the paper amalgamates in Table VI.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::net::Ipv4Addr;

/// The six amalgamated threat categories of Table VI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum ThreatCategory {
    /// Illicit Internet scanning.
    Scanning,
    /// Web/FTP attacks, DNS blacklisting, malicious domains, VoIP abuse.
    Miscellaneous,
    /// SSH brute-force attacks.
    BruteForce,
    /// Mail/IMAP spam.
    Spam,
    /// Virus, worm, bot/botnet, trojan activity.
    Malware,
    /// Phishing.
    Phishing,
}

impl ThreatCategory {
    /// All categories in Table VI order (descending paper prevalence).
    pub const ALL: [ThreatCategory; 6] = [
        ThreatCategory::Scanning,
        ThreatCategory::Miscellaneous,
        ThreatCategory::BruteForce,
        ThreatCategory::Spam,
        ThreatCategory::Malware,
        ThreatCategory::Phishing,
    ];

    /// This category's bit in a packed category mask. Discriminants
    /// follow [`ThreatCategory::ALL`] order, so the six categories fit
    /// the low six bits of a `u8`.
    #[inline]
    pub fn bit(self) -> u8 {
        1u8 << (self as u8)
    }

    /// Decode a packed category mask into categories, in
    /// [`ThreatCategory::ALL`] (Table VI) order.
    pub fn from_mask(mask: u8) -> impl Iterator<Item = ThreatCategory> {
        ThreatCategory::ALL
            .into_iter()
            .filter(move |c| mask & c.bit() != 0)
    }

    /// The prevalence among flagged devices reported in Table VI
    /// (fractions of the 816 flagged devices; categories overlap).
    pub fn paper_prevalence(self) -> f64 {
        match self {
            ThreatCategory::Scanning => 0.963,
            ThreatCategory::Miscellaneous => 0.703,
            ThreatCategory::BruteForce => 0.309,
            ThreatCategory::Spam => 0.278,
            ThreatCategory::Malware => 0.143,
            ThreatCategory::Phishing => 0.006,
        }
    }
}

impl fmt::Display for ThreatCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ThreatCategory::Scanning => "Scanning",
            ThreatCategory::Miscellaneous => {
                "Miscellaneous (Web/FTP attacks, DNSBL, Malicious domains, VoIP)"
            }
            ThreatCategory::BruteForce => "Brute force (SSH)",
            ThreatCategory::Spam => "Spam (Mail, IMAP)",
            ThreatCategory::Malware => "Malware (Virus, Worm, Bot/Botnet, Trojan)",
            ThreatCategory::Phishing => "Phishing",
        };
        f.write_str(s)
    }
}

/// One indexed event.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ThreatEvent {
    /// The reported address.
    pub ip: Ipv4Addr,
    /// The amalgamated category.
    pub category: ThreatCategory,
    /// The reporting feed (free-form, e.g. `"honeypot-agg"`).
    pub source: String,
    /// Unix timestamp of the report.
    pub reported_at: u64,
}

/// An IP-indexed store of threat events.
///
/// # Example
///
/// ```
/// use iotscope_intel::threat::{ThreatCategory, ThreatEvent, ThreatRepo};
/// use std::net::Ipv4Addr;
///
/// let mut repo = ThreatRepo::new();
/// let ip = Ipv4Addr::new(203, 0, 113, 5);
/// repo.add(ThreatEvent {
///     ip,
///     category: ThreatCategory::Scanning,
///     source: "honeypot".into(),
///     reported_at: 1_492_000_000,
/// });
/// assert!(repo.is_flagged(ip));
/// assert_eq!(repo.categories_for(ip).len(), 1);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ThreatRepo {
    by_ip: HashMap<Ipv4Addr, Vec<ThreatEvent>>,
    num_events: usize,
}

impl ThreatRepo {
    /// An empty repository.
    pub fn new() -> Self {
        ThreatRepo::default()
    }

    /// Index one event.
    pub fn add(&mut self, event: ThreatEvent) {
        self.by_ip.entry(event.ip).or_default().push(event);
        self.num_events += 1;
    }

    /// Total indexed events.
    pub fn num_events(&self) -> usize {
        self.num_events
    }

    /// Number of distinct flagged addresses.
    pub fn num_flagged_ips(&self) -> usize {
        self.by_ip.len()
    }

    /// Whether any event concerns `ip`.
    pub fn is_flagged(&self, ip: Ipv4Addr) -> bool {
        self.by_ip.contains_key(&ip)
    }

    /// All events for `ip` (empty slice if none).
    pub fn events_for(&self, ip: Ipv4Addr) -> &[ThreatEvent] {
        self.by_ip.get(&ip).map(Vec::as_slice).unwrap_or(&[])
    }

    /// The distinct categories `ip` is flagged with, sorted in
    /// [`ThreatCategory::ALL`] (Table VI) order.
    ///
    /// Sorted output keeps every consumer byte-stable: report text and
    /// JSON payloads that list categories render identically across
    /// runs regardless of event insertion order (the old `HashSet`
    /// return iterated in hash order).
    pub fn categories_for(&self, ip: Ipv4Addr) -> Vec<ThreatCategory> {
        let mut cats: Vec<ThreatCategory> =
            self.events_for(ip).iter().map(|e| e.category).collect();
        cats.sort_unstable();
        cats.dedup();
        cats
    }

    /// Iterate `(ip, events)` pairs in unspecified (hash) order — index
    /// builders sort by address themselves.
    pub fn iter_flagged(&self) -> impl Iterator<Item = (Ipv4Addr, &[ThreatEvent])> {
        self.by_ip.iter().map(|(ip, evs)| (*ip, evs.as_slice()))
    }
}

impl Extend<ThreatEvent> for ThreatRepo {
    fn extend<I: IntoIterator<Item = ThreatEvent>>(&mut self, iter: I) {
        for e in iter {
            self.add(e);
        }
    }
}

impl FromIterator<ThreatEvent> for ThreatRepo {
    fn from_iter<I: IntoIterator<Item = ThreatEvent>>(iter: I) -> Self {
        let mut repo = ThreatRepo::new();
        repo.extend(iter);
        repo
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn event(ip: [u8; 4], category: ThreatCategory) -> ThreatEvent {
        ThreatEvent {
            ip: Ipv4Addr::from(ip),
            category,
            source: "test".into(),
            reported_at: 0,
        }
    }

    #[test]
    fn add_and_query() {
        let mut repo = ThreatRepo::new();
        repo.add(event([1, 2, 3, 4], ThreatCategory::Scanning));
        repo.add(event([1, 2, 3, 4], ThreatCategory::Malware));
        repo.add(event([1, 2, 3, 4], ThreatCategory::Scanning));
        repo.add(event([5, 6, 7, 8], ThreatCategory::Phishing));
        assert_eq!(repo.num_events(), 4);
        assert_eq!(repo.num_flagged_ips(), 2);
        assert_eq!(repo.events_for(Ipv4Addr::new(1, 2, 3, 4)).len(), 3);
        let cats = repo.categories_for(Ipv4Addr::new(1, 2, 3, 4));
        assert_eq!(cats.len(), 2);
        assert!(cats.contains(&ThreatCategory::Malware));
        assert!(!repo.is_flagged(Ipv4Addr::new(9, 9, 9, 9)));
        assert!(repo.events_for(Ipv4Addr::new(9, 9, 9, 9)).is_empty());
    }

    #[test]
    fn collect_from_iterator() {
        let repo: ThreatRepo = vec![
            event([1, 1, 1, 1], ThreatCategory::Spam),
            event([2, 2, 2, 2], ThreatCategory::BruteForce),
        ]
        .into_iter()
        .collect();
        assert_eq!(repo.num_flagged_ips(), 2);
    }

    #[test]
    fn table_vi_prevalences_are_ordered() {
        let prev: Vec<f64> = ThreatCategory::ALL
            .iter()
            .map(|c| c.paper_prevalence())
            .collect();
        for w in prev.windows(2) {
            assert!(w[0] >= w[1], "Table VI order violated: {prev:?}");
        }
        assert!((ThreatCategory::Scanning.paper_prevalence() - 0.963).abs() < 1e-9);
    }

    #[test]
    fn categories_for_is_sorted_regardless_of_insertion_order() {
        // Satellite regression: the old HashSet return iterated in hash
        // order; the sorted Vec must render identically no matter how
        // events arrive.
        let ip = [10, 0, 0, 1];
        let forward = [
            ThreatCategory::Scanning,
            ThreatCategory::Spam,
            ThreatCategory::Phishing,
            ThreatCategory::Malware,
        ];
        let mut orders: Vec<Vec<ThreatCategory>> = Vec::new();
        for perm in [[0usize, 1, 2, 3], [3, 2, 1, 0], [2, 0, 3, 1], [1, 3, 0, 2]] {
            let mut repo = ThreatRepo::new();
            for &i in &perm {
                repo.add(event(ip, forward[i]));
                // Duplicates must not change the output either.
                repo.add(event(ip, forward[i]));
            }
            orders.push(repo.categories_for(Ipv4Addr::from(ip)));
        }
        let want = vec![
            ThreatCategory::Scanning,
            ThreatCategory::Spam,
            ThreatCategory::Malware,
            ThreatCategory::Phishing,
        ];
        for got in orders {
            assert_eq!(got, want, "categories_for must be sorted and deduped");
        }
    }

    #[test]
    fn mask_bits_follow_all_order() {
        // `bit()` packing relies on declaration order == ALL order.
        for (i, cat) in ThreatCategory::ALL.iter().enumerate() {
            assert_eq!(*cat as u8, i as u8, "{cat:?} discriminant drifted");
            assert_eq!(cat.bit(), 1u8 << i);
        }
        let mask = ThreatCategory::Scanning.bit() | ThreatCategory::Phishing.bit();
        let decoded: Vec<ThreatCategory> = ThreatCategory::from_mask(mask).collect();
        assert_eq!(
            decoded,
            vec![ThreatCategory::Scanning, ThreatCategory::Phishing]
        );
        assert_eq!(ThreatCategory::from_mask(0).count(), 0);
    }

    #[test]
    fn category_display_matches_table_vi_labels() {
        assert_eq!(ThreatCategory::Scanning.to_string(), "Scanning");
        assert!(ThreatCategory::Miscellaneous.to_string().contains("DNSBL"));
        assert!(ThreatCategory::BruteForce.to_string().contains("SSH"));
    }
}
