//! Sandbox report format and parser.
//!
//! The paper's malware database "is built by parsing and indexing XML
//! malware reports" produced by dynamic analysis; reports contain network
//! level activities (connections, IPs, ports, URLs/domains, payloads) and
//! system level activities (DLLs, registry changes, memory usage) (§V-B).
//! [`SandboxReport`] carries the same content; [`SandboxReport::to_xml`] /
//! [`SandboxReport::parse_xml`] round-trip a simple XML-like encoding so
//! the ingestion path (parse → index) mirrors the paper's.

use crate::IntelError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;

/// A sample identifier (hex digest).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MalwareHash(String);

impl MalwareHash {
    /// Wrap a lowercase hex digest string.
    pub fn from_hex<S: Into<String>>(hex: S) -> Self {
        MalwareHash(hex.into().to_ascii_lowercase())
    }

    /// The digest as hex.
    pub fn as_hex(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for MalwareHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Network-level activities of an instrumented sample.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct NetworkActivity {
    /// Addresses the sample connected to.
    pub contacted_ips: Vec<Ipv4Addr>,
    /// Ports used in those connections.
    pub contacted_ports: Vec<u16>,
    /// Visited domains / URLs.
    pub domains: Vec<String>,
    /// Bytes of payload data sent.
    pub payload_bytes: u64,
}

/// System-level activities of an instrumented sample.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemActivity {
    /// DLLs loaded by the sample.
    pub dlls: Vec<String>,
    /// Registry keys written.
    pub registry_keys: Vec<String>,
    /// Peak memory usage in KiB.
    pub peak_memory_kib: u64,
}

/// One dynamic-analysis report.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SandboxReport {
    /// The analyzed sample's digest.
    pub sha256: MalwareHash,
    /// Network-level activities.
    pub network: NetworkActivity,
    /// System-level activities.
    pub system: SystemActivity,
}

impl SandboxReport {
    /// Serialize to the XML-like report format.
    pub fn to_xml(&self) -> String {
        let mut s = String::new();
        s.push_str("<report>\n");
        s.push_str(&format!("  <sha256>{}</sha256>\n", self.sha256));
        s.push_str("  <network>\n");
        for ip in &self.network.contacted_ips {
            s.push_str(&format!("    <ip>{ip}</ip>\n"));
        }
        for p in &self.network.contacted_ports {
            s.push_str(&format!("    <port>{p}</port>\n"));
        }
        for d in &self.network.domains {
            s.push_str(&format!("    <domain>{d}</domain>\n"));
        }
        s.push_str(&format!(
            "    <payload_bytes>{}</payload_bytes>\n",
            self.network.payload_bytes
        ));
        s.push_str("  </network>\n  <system>\n");
        for d in &self.system.dlls {
            s.push_str(&format!("    <dll>{d}</dll>\n"));
        }
        for k in &self.system.registry_keys {
            s.push_str(&format!("    <regkey>{k}</regkey>\n"));
        }
        s.push_str(&format!(
            "    <peak_memory_kib>{}</peak_memory_kib>\n",
            self.system.peak_memory_kib
        ));
        s.push_str("  </system>\n</report>\n");
        s
    }

    /// Parse a report from the XML-like format produced by
    /// [`to_xml`](Self::to_xml).
    ///
    /// # Errors
    ///
    /// Returns [`IntelError::ParseReport`] on malformed input (missing
    /// hash, unparseable IPs/numbers, bad tags).
    pub fn parse_xml(text: &str) -> Result<SandboxReport, IntelError> {
        let mut sha256: Option<MalwareHash> = None;
        let mut network = NetworkActivity::default();
        let mut system = SystemActivity::default();
        for line in text.lines() {
            let line = line.trim();
            if line.is_empty()
                || line.starts_with("<report")
                || line.starts_with("</report")
                || line.starts_with("<network")
                || line.starts_with("</network")
                || line.starts_with("<system")
                || line.starts_with("</system")
            {
                continue;
            }
            let (tag, value) = parse_element(line)?;
            match tag {
                "sha256" => sha256 = Some(MalwareHash::from_hex(value)),
                "ip" => network.contacted_ips.push(
                    value
                        .parse()
                        .map_err(|_| IntelError::ParseReport(format!("bad ip {value:?}")))?,
                ),
                "port" => network.contacted_ports.push(
                    value
                        .parse()
                        .map_err(|_| IntelError::ParseReport(format!("bad port {value:?}")))?,
                ),
                "domain" => network.domains.push(value.to_owned()),
                "payload_bytes" => {
                    network.payload_bytes = value
                        .parse()
                        .map_err(|_| IntelError::ParseReport(format!("bad payload {value:?}")))?
                }
                "dll" => system.dlls.push(value.to_owned()),
                "regkey" => system.registry_keys.push(value.to_owned()),
                "peak_memory_kib" => {
                    system.peak_memory_kib = value
                        .parse()
                        .map_err(|_| IntelError::ParseReport(format!("bad memory {value:?}")))?
                }
                other => {
                    return Err(IntelError::ParseReport(format!("unknown tag <{other}>")));
                }
            }
        }
        let sha256 =
            sha256.ok_or_else(|| IntelError::ParseReport("missing <sha256>".to_owned()))?;
        Ok(SandboxReport {
            sha256,
            network,
            system,
        })
    }
}

/// Parse `<tag>value</tag>` into `(tag, value)`.
fn parse_element(line: &str) -> Result<(&str, &str), IntelError> {
    let bad = || IntelError::ParseReport(format!("malformed element {line:?}"));
    let rest = line.strip_prefix('<').ok_or_else(bad)?;
    let (tag, rest) = rest.split_once('>').ok_or_else(bad)?;
    let close = format!("</{tag}>");
    let value = rest.strip_suffix(close.as_str()).ok_or_else(bad)?;
    Ok((tag, value))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SandboxReport {
        SandboxReport {
            sha256: MalwareHash::from_hex("DEADBEEF00112233"),
            network: NetworkActivity {
                contacted_ips: vec![Ipv4Addr::new(5, 6, 7, 8), Ipv4Addr::new(9, 9, 9, 9)],
                contacted_ports: vec![80, 23],
                domains: vec!["evil.example".into(), "c2.example".into()],
                payload_bytes: 4821,
            },
            system: SystemActivity {
                dlls: vec!["ws2_32.dll".into(), "kernel32.dll".into()],
                registry_keys: vec!["HKLM\\Software\\Run\\svc".into()],
                peak_memory_kib: 10_240,
            },
        }
    }

    #[test]
    fn hash_normalizes_to_lowercase() {
        let h = MalwareHash::from_hex("AbCd");
        assert_eq!(h.as_hex(), "abcd");
        assert_eq!(h.to_string(), "abcd");
    }

    #[test]
    fn xml_roundtrip() {
        let r = sample();
        let xml = r.to_xml();
        let back = SandboxReport::parse_xml(&xml).unwrap();
        assert_eq!(back, r);
    }

    #[test]
    fn xml_contains_expected_tags() {
        let xml = sample().to_xml();
        assert!(xml.contains("<sha256>deadbeef00112233</sha256>"));
        assert!(xml.contains("<ip>5.6.7.8</ip>"));
        assert!(xml.contains("<domain>evil.example</domain>"));
        assert!(xml.contains("<dll>ws2_32.dll</dll>"));
    }

    #[test]
    fn parse_rejects_missing_hash() {
        let err = SandboxReport::parse_xml("<report>\n</report>\n").unwrap_err();
        assert!(format!("{err}").contains("sha256"));
    }

    #[test]
    fn parse_rejects_bad_ip_and_unknown_tag() {
        assert!(SandboxReport::parse_xml(
            "<report>\n<sha256>aa</sha256>\n<ip>not-an-ip</ip>\n</report>"
        )
        .is_err());
        assert!(SandboxReport::parse_xml(
            "<report>\n<sha256>aa</sha256>\n<mystery>1</mystery>\n</report>"
        )
        .is_err());
    }

    #[test]
    fn parse_rejects_malformed_elements() {
        assert!(SandboxReport::parse_xml("<report>\n<sha256>aa\n</report>").is_err());
        assert!(SandboxReport::parse_xml("no tags at all").is_err());
    }

    #[test]
    fn empty_activities_roundtrip() {
        let r = SandboxReport {
            sha256: MalwareHash::from_hex("00"),
            network: NetworkActivity::default(),
            system: SystemActivity::default(),
        };
        let back = SandboxReport::parse_xml(&r.to_xml()).unwrap();
        assert_eq!(back, r);
    }
}
