//! Malware families and the hash→family resolver.
//!
//! Table VII lists the 11 previously-unreported families the paper found
//! communicating with IoT devices; VirusTotal resolved sample hashes to
//! family labels. [`FamilyResolver`] plays VirusTotal's role.

use crate::sandbox::MalwareHash;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// The 11 families of Table VII.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum MalwareFamily {
    /// Ramnit — known as a backdoor.
    Ramnit,
    /// Starman.
    Starman,
    /// Kryptik.
    Kryptik,
    /// Nivdort.
    Nivdort,
    /// Razy.
    Razy,
    /// Zusy — known for generating email spam.
    Zusy,
    /// Bayrod.
    Bayrod,
    /// Artemis.
    Artemis,
    /// MSIL.
    Msil,
    /// Vupa.
    Vupa,
    /// Allaple.
    Allaple,
}

impl MalwareFamily {
    /// All 11 families in Table VII order.
    pub const ALL: [MalwareFamily; 11] = [
        MalwareFamily::Ramnit,
        MalwareFamily::Starman,
        MalwareFamily::Kryptik,
        MalwareFamily::Nivdort,
        MalwareFamily::Razy,
        MalwareFamily::Zusy,
        MalwareFamily::Bayrod,
        MalwareFamily::Artemis,
        MalwareFamily::Msil,
        MalwareFamily::Vupa,
        MalwareFamily::Allaple,
    ];
}

impl fmt::Display for MalwareFamily {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MalwareFamily::Ramnit => "Ramnit",
            MalwareFamily::Starman => "Starman",
            MalwareFamily::Kryptik => "Kryptik",
            MalwareFamily::Nivdort => "Nivdort",
            MalwareFamily::Razy => "Razy",
            MalwareFamily::Zusy => "Zusy",
            MalwareFamily::Bayrod => "Bayrod",
            MalwareFamily::Artemis => "Artemis",
            MalwareFamily::Msil => "MSIL",
            MalwareFamily::Vupa => "Vupa",
            MalwareFamily::Allaple => "Allaple",
        };
        f.write_str(s)
    }
}

/// Resolves sample hashes to family labels (the VirusTotal stand-in).
///
/// # Example
///
/// ```
/// use iotscope_intel::family::{FamilyResolver, MalwareFamily};
/// use iotscope_intel::sandbox::MalwareHash;
///
/// let mut resolver = FamilyResolver::new();
/// let h = MalwareHash::from_hex("ab12");
/// resolver.register(h.clone(), MalwareFamily::Ramnit);
/// assert_eq!(resolver.resolve(&h), Some(MalwareFamily::Ramnit));
/// assert_eq!(resolver.resolve(&MalwareHash::from_hex("ffff")), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct FamilyResolver {
    by_hash: HashMap<MalwareHash, MalwareFamily>,
}

impl FamilyResolver {
    /// An empty resolver.
    pub fn new() -> Self {
        FamilyResolver::default()
    }

    /// Register (or replace) the family label for a hash.
    pub fn register(&mut self, hash: MalwareHash, family: MalwareFamily) {
        self.by_hash.insert(hash, family);
    }

    /// Resolve a hash to its family, if known.
    pub fn resolve(&self, hash: &MalwareHash) -> Option<MalwareFamily> {
        self.by_hash.get(hash).copied()
    }

    /// Number of known hashes.
    pub fn len(&self) -> usize {
        self.by_hash.len()
    }

    /// Whether no hash is registered.
    pub fn is_empty(&self) -> bool {
        self.by_hash.is_empty()
    }

    /// Distinct families across all registered hashes, sorted.
    pub fn known_families(&self) -> Vec<MalwareFamily> {
        let mut v: Vec<MalwareFamily> = self
            .by_hash
            .values()
            .copied()
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect();
        v.sort();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn eleven_families() {
        assert_eq!(MalwareFamily::ALL.len(), 11);
        let labels: std::collections::HashSet<String> =
            MalwareFamily::ALL.iter().map(|f| f.to_string()).collect();
        assert_eq!(labels.len(), 11);
        assert!(labels.contains("Ramnit"));
        assert!(labels.contains("Zusy"));
    }

    #[test]
    fn resolver_register_resolve() {
        let mut r = FamilyResolver::new();
        assert!(r.is_empty());
        let h1 = MalwareHash::from_hex("0011");
        let h2 = MalwareHash::from_hex("0022");
        r.register(h1.clone(), MalwareFamily::Kryptik);
        r.register(h2.clone(), MalwareFamily::Kryptik);
        assert_eq!(r.len(), 2);
        assert_eq!(r.resolve(&h1), Some(MalwareFamily::Kryptik));
        assert_eq!(r.known_families(), vec![MalwareFamily::Kryptik]);
        // Replacing a hash's label.
        r.register(h1.clone(), MalwareFamily::Vupa);
        assert_eq!(r.resolve(&h1), Some(MalwareFamily::Vupa));
        assert_eq!(r.len(), 2);
        assert_eq!(r.known_families().len(), 2);
    }
}
