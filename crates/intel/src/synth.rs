//! Synthetic intel population, correlated with a simulation's ground truth.
//!
//! Mirrors what the paper found when it queried Cymon and its malware
//! database: 9.2% of the explored devices were flagged, categories follow
//! Table VI's (overlapping) prevalences, 117 devices linked to malware, 24
//! distinct sample hashes across 11 families, and 33 associated domains.

use crate::family::{FamilyResolver, MalwareFamily};
use crate::malwaredb::MalwareDb;
use crate::sandbox::{MalwareHash, NetworkActivity, SandboxReport, SystemActivity};
use crate::threat::{ThreatCategory, ThreatEvent, ThreatRepo};
use iotscope_devicedb::{DeviceDb, DeviceId};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::net::Ipv4Addr;

/// Configuration for [`IntelBuilder`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntelSynthConfig {
    /// Master seed.
    pub seed: u64,
    /// Fraction of candidate devices that the repository flags (§V-A:
    /// 816/8,839 ≈ 9.2%).
    pub flagged_fraction: f64,
    /// Unrelated flagged addresses (background noise in the repo).
    pub noise_ips: u32,
    /// Sandbox reports contacting only unrelated addresses.
    pub noise_reports: u32,
}

impl IntelSynthConfig {
    /// Paper-shaped defaults for the given seed.
    pub fn paper(seed: u64) -> Self {
        IntelSynthConfig {
            seed,
            flagged_fraction: 0.092,
            noise_ips: 2_000,
            noise_reports: 300,
        }
    }
}

impl Default for IntelSynthConfig {
    fn default() -> Self {
        IntelSynthConfig::paper(0)
    }
}

/// The populated stores plus the flag ledger.
#[derive(Debug)]
pub struct IntelOutput {
    /// The Cymon-like repository.
    pub threats: ThreatRepo,
    /// The malware database.
    pub malware: MalwareDb,
    /// The VirusTotal-like resolver, seeded with all generated hashes.
    pub resolver: FamilyResolver,
    /// Ground truth: which candidate devices were flagged.
    pub flagged_devices: Vec<DeviceId>,
    /// Ground truth: which candidate devices were linked to malware.
    pub malware_devices: Vec<DeviceId>,
}

/// Populates the intel stores from a candidate device list.
///
/// # Example
///
/// ```
/// use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};
/// use iotscope_intel::synth::{IntelBuilder, IntelSynthConfig};
///
/// let inv = InventoryBuilder::new(SynthConfig::small(1)).build();
/// let out = IntelBuilder::new(IntelSynthConfig::paper(1))
///     .build(&inv.db, &inv.designated_consumer);
/// assert!(!out.flagged_devices.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct IntelBuilder {
    config: IntelSynthConfig,
}

/// The 33 domains the malware correlation surfaced (§V-B); synthetic
/// stand-ins with stable names.
fn domain_pool() -> Vec<String> {
    (0..33)
        .map(|i| format!("c2-{i:02}.badnet.example"))
        .collect()
}

impl IntelBuilder {
    /// Create a builder.
    pub fn new(config: IntelSynthConfig) -> Self {
        IntelBuilder { config }
    }

    /// Populate the stores. `candidates` are the devices eligible for
    /// flagging (in the paper: the DoS victims plus the top scanners).
    pub fn build(&self, db: &DeviceDb, candidates: &[DeviceId]) -> IntelOutput {
        let mut rng = StdRng::seed_from_u64(self.config.seed ^ 0x1A7E_11CE);
        let mut threats = ThreatRepo::new();
        let mut malware = MalwareDb::new();
        let mut resolver = FamilyResolver::new();

        // 24 hashes over the 11 families, every family represented.
        let hashes: Vec<(MalwareHash, MalwareFamily)> = (0..24)
            .map(|i| {
                let family = MalwareFamily::ALL[i % MalwareFamily::ALL.len()];
                let hash = MalwareHash::from_hex(format!(
                    "{:016x}{:016x}",
                    rng.gen::<u64>(),
                    rng.gen::<u64>()
                ));
                resolver.register(hash.clone(), family);
                (hash, family)
            })
            .collect();
        let domains = domain_pool();

        // Flag candidates.
        let mut pool: Vec<DeviceId> = candidates.to_vec();
        pool.shuffle(&mut rng);
        let n_flagged = ((pool.len() as f64 * self.config.flagged_fraction).round() as usize)
            .clamp(usize::from(!pool.is_empty()), pool.len());
        let flagged: Vec<DeviceId> = pool[..n_flagged].to_vec();
        let mut malware_devices = Vec::new();

        for id in &flagged {
            let device = db.device(*id);
            let ip = device.ip;
            let mut any = false;
            for cat in ThreatCategory::ALL {
                // §V-A: malware links skew heavily toward CPS devices (91
                // CPS vs 26 consumer of 117); the other categories follow
                // the aggregate Table VI prevalences.
                let p = if cat == ThreatCategory::Malware {
                    match device.realm() {
                        iotscope_devicedb::Realm::Cps => 0.205,
                        iotscope_devicedb::Realm::Consumer => 0.075,
                    }
                } else {
                    cat.paper_prevalence()
                };
                if rng.gen::<f64>() < p {
                    any = true;
                    threats.add(Self::event(&mut rng, ip, cat));
                    if cat == ThreatCategory::Malware {
                        malware_devices.push(*id);
                        self.emit_reports(&mut rng, &mut malware, ip, &hashes, &domains);
                    }
                }
            }
            if !any {
                threats.add(Self::event(&mut rng, ip, ThreatCategory::Scanning));
            }
        }

        // Background noise: flagged non-device addresses and reports that
        // contact nothing in the inventory (the 192.0.2.0/24 TEST-NET
        // block is never allocated to devices).
        for _ in 0..self.config.noise_ips {
            let ip = Ipv4Addr::new(192, 0, 2, rng.gen());
            let cat = ThreatCategory::ALL[rng.gen_range(0..ThreatCategory::ALL.len())];
            threats.add(Self::event(&mut rng, ip, cat));
        }
        for _ in 0..self.config.noise_reports {
            let ip = Ipv4Addr::new(192, 0, 2, rng.gen());
            self.emit_reports(&mut rng, &mut malware, ip, &hashes, &domains);
        }

        IntelOutput {
            threats,
            malware,
            resolver,
            flagged_devices: flagged,
            malware_devices,
        }
    }

    fn event(rng: &mut StdRng, ip: Ipv4Addr, category: ThreatCategory) -> ThreatEvent {
        const SOURCES: [&str; 4] = [
            "honeypot-agg",
            "dnsbl-feed",
            "abuse-report",
            "ids-telemetry",
        ];
        ThreatEvent {
            ip,
            category,
            source: SOURCES[rng.gen_range(0..SOURCES.len())].to_owned(),
            reported_at: 1_491_955_200 + rng.gen_range(0..143 * 3600),
        }
    }

    fn emit_reports(
        &self,
        rng: &mut StdRng,
        malware: &mut MalwareDb,
        ip: Ipv4Addr,
        hashes: &[(MalwareHash, MalwareFamily)],
        domains: &[String],
    ) {
        let n = rng.gen_range(1..=2);
        for _ in 0..n {
            let (hash, _) = &hashes[rng.gen_range(0..hashes.len())];
            let n_domains = rng.gen_range(0..=2);
            let domains: Vec<String> = (0..n_domains)
                .map(|_| domains[rng.gen_range(0..domains.len())].clone())
                .collect();
            malware.ingest(SandboxReport {
                sha256: hash.clone(),
                network: NetworkActivity {
                    contacted_ips: vec![ip],
                    contacted_ports: vec![*[23u16, 80, 445, 2323, 7547]
                        .get(rng.gen_range(0..5))
                        .expect("index in range")],
                    domains,
                    payload_bytes: rng.gen_range(100..50_000),
                },
                system: SystemActivity {
                    dlls: vec!["ws2_32.dll".into(), "wininet.dll".into()],
                    registry_keys: vec!["HKLM\\Software\\Microsoft\\Windows\\Run\\upd".into()],
                    peak_memory_kib: rng.gen_range(2_048..65_536),
                },
            });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use iotscope_devicedb::synth::{InventoryBuilder, SynthConfig};

    fn setup() -> (iotscope_devicedb::synth::SynthOutput, IntelOutput) {
        let inv = InventoryBuilder::new(SynthConfig::small(3)).build();
        let candidates: Vec<DeviceId> = inv
            .designated_consumer
            .iter()
            .chain(inv.designated_cps.iter())
            .copied()
            .collect();
        let out = IntelBuilder::new(IntelSynthConfig::paper(3)).build(&inv.db, &candidates);
        (inv, out)
    }

    #[test]
    fn flags_about_nine_percent() {
        let (_, out) = setup();
        // 1050 candidates × 9.2% ≈ 97.
        assert!(
            (70..=130).contains(&out.flagged_devices.len()),
            "{}",
            out.flagged_devices.len()
        );
    }

    #[test]
    fn every_flagged_device_has_events() {
        let (inv, out) = setup();
        for id in &out.flagged_devices {
            let ip = inv.db.device(*id).ip;
            assert!(out.threats.is_flagged(ip), "{id} not in repo");
            assert!(!out.threats.categories_for(ip).is_empty());
        }
    }

    #[test]
    fn category_mix_resembles_table_vi() {
        let (inv, out) = setup();
        let n = out.flagged_devices.len() as f64;
        let share = |cat: ThreatCategory| {
            out.flagged_devices
                .iter()
                .filter(|id| {
                    out.threats
                        .categories_for(inv.db.device(**id).ip)
                        .contains(&cat)
                })
                .count() as f64
                / n
        };
        assert!(share(ThreatCategory::Scanning) > 0.85);
        assert!(share(ThreatCategory::Miscellaneous) > share(ThreatCategory::BruteForce));
        assert!(share(ThreatCategory::BruteForce) > share(ThreatCategory::Malware));
        assert!(share(ThreatCategory::Phishing) < 0.05);
    }

    #[test]
    fn malware_devices_have_reports_resolving_to_families() {
        let (inv, out) = setup();
        assert!(!out.malware_devices.is_empty());
        let mut families = std::collections::HashSet::new();
        for id in &out.malware_devices {
            let ip = inv.db.device(*id).ip;
            let hashes = out.malware.hashes_contacting(ip);
            assert!(!hashes.is_empty(), "{id} has no reports");
            for h in hashes {
                families.insert(out.resolver.resolve(&h).expect("hash registered"));
            }
        }
        assert!(families.len() >= 3, "families {families:?}");
    }

    #[test]
    fn resolver_knows_24_hashes_11_families() {
        let (_, out) = setup();
        assert_eq!(out.resolver.len(), 24);
        assert_eq!(out.resolver.known_families().len(), 11);
    }

    #[test]
    fn noise_does_not_touch_device_space() {
        let (inv, out) = setup();
        // Noise lives in 192.0.2.0/24, which the allocator never assigns.
        for d in inv.db.iter() {
            assert_ne!(d.ip.octets()[0], 192);
        }
        assert!(out.threats.num_flagged_ips() > out.flagged_devices.len());
    }

    #[test]
    fn deterministic_per_seed() {
        let inv = InventoryBuilder::new(SynthConfig::small(4)).build();
        let candidates: Vec<DeviceId> = inv.designated_consumer.clone();
        let a = IntelBuilder::new(IntelSynthConfig::paper(9)).build(&inv.db, &candidates);
        let b = IntelBuilder::new(IntelSynthConfig::paper(9)).build(&inv.db, &candidates);
        assert_eq!(a.flagged_devices, b.flagged_devices);
        assert_eq!(a.threats.num_events(), b.threats.num_events());
        let c = IntelBuilder::new(IntelSynthConfig::paper(10)).build(&inv.db, &candidates);
        assert_ne!(a.flagged_devices, c.flagged_devices);
    }

    #[test]
    fn empty_candidates_yield_empty_flags() {
        let inv = InventoryBuilder::new(SynthConfig::small(5)).build();
        let out = IntelBuilder::new(IntelSynthConfig::paper(5)).build(&inv.db, &[]);
        assert!(out.flagged_devices.is_empty());
        assert!(out.malware_devices.is_empty());
        // Noise still present.
        assert!(out.threats.num_events() > 0);
    }
}
