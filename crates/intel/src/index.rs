//! Streaming-lookup index over the two §V intel stores.
//!
//! The batch §V join probes `ThreatRepo::categories_for` and
//! `MalwareDb::hashes_contacting` once per candidate, and each probe
//! allocates (a `Vec` of categories, a `HashSet` of hashes) after a
//! hash-map walk. That is tolerable for a one-shot report but not for a
//! per-hour streaming fold that re-touches every observed device. The
//! [`IntelIndex`] flattens both stores into the same two-level shape
//! [`CorrelationIndex`](iotscope_devicedb::CorrelationIndex) uses for
//! device correlation:
//!
//! * **Level 1**: 65,536 `/16` buckets as 65,537 prefix-sum offsets
//!   into the slot array — one shift and one load to find a bucket.
//! * **Level 2**: one packed 12-byte `IntelSlot` per flagged address,
//!   suffix-sorted within its bucket, carrying the category bitmask
//!   (six Table VI categories in the low bits of a `u8`) and an
//!   `(offset, len)` window into a shared flat array of sandbox-report
//!   indices.
//!
//! A lookup is a bucket slice plus a binary search and returns borrowed
//! data — no allocation, no second hash probe for the malware side.
//! Construction drains both hash maps through a `BTreeMap`, so the
//! index layout is deterministic regardless of hash iteration order.

use crate::malwaredb::MalwareDb;
use crate::synth::IntelOutput;
use crate::threat::ThreatRepo;
use crate::FamilyResolver;
use std::collections::BTreeMap;
use std::net::Ipv4Addr;

/// Number of `/16` buckets.
const BUCKETS: usize = 1 << 16;

/// One flagged address: category mask plus a window into the shared
/// sample-reference array.
#[derive(Debug, Clone, Copy)]
struct IntelSlot {
    /// Low 16 bits of the address (the bucket sort key).
    suffix: u16,
    /// Packed [`ThreatCategory`](crate::ThreatCategory) bitmask
    /// (`ThreatCategory::bit` encoding).
    cat_mask: u8,
    /// Start of this address's sample references in `sample_refs`.
    samples_start: u32,
    /// Number of sample references.
    samples_len: u32,
}

/// A resolved intel hit for one address: borrowed, allocation-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IntelHit<'a> {
    /// Packed category bitmask; decode with
    /// [`ThreatCategory::from_mask`](crate::ThreatCategory::from_mask).
    pub cat_mask: u8,
    /// Indices into [`MalwareDb::reports`] of samples that contacted
    /// this address, in ingestion order.
    pub samples: &'a [u32],
}

impl IntelHit<'_> {
    /// Whether the threat repository flagged this address.
    #[inline]
    pub fn is_flagged(&self) -> bool {
        self.cat_mask != 0
    }
}

/// A `/16`-bucketed read-only index over a [`ThreatRepo`] and a
/// [`MalwareDb`], replacing their per-call `HashMap` + `Vec` scans on
/// the streaming hot path.
///
/// # Example
///
/// ```
/// use iotscope_intel::index::IntelIndex;
/// use iotscope_intel::threat::{ThreatCategory, ThreatEvent, ThreatRepo};
/// use iotscope_intel::MalwareDb;
/// use std::net::Ipv4Addr;
///
/// let ip = Ipv4Addr::new(203, 0, 113, 9);
/// let mut repo = ThreatRepo::new();
/// repo.add(ThreatEvent {
///     ip,
///     category: ThreatCategory::Scanning,
///     source: "honeypot".into(),
///     reported_at: 0,
/// });
/// let index = IntelIndex::build(&repo, &MalwareDb::new());
/// let hit = index.lookup(ip).unwrap();
/// assert_eq!(hit.cat_mask, ThreatCategory::Scanning.bit());
/// assert!(index.lookup(Ipv4Addr::new(203, 0, 113, 10)).is_none());
/// ```
#[derive(Debug, Clone)]
pub struct IntelIndex {
    /// `bucket_starts[b]..bucket_starts[b+1]` is the slot range of
    /// /16 bucket `b` (65,537 prefix-sum entries).
    bucket_starts: Box<[u32]>,
    /// One packed entry per flagged/contacted address, suffix-sorted
    /// within each bucket.
    slots: Box<[IntelSlot]>,
    /// Flat pool of sandbox-report indices, windowed by the slots.
    sample_refs: Box<[u32]>,
}

impl IntelIndex {
    /// Build the index over both stores. An address appears if the
    /// threat repo flags it *or* a sandbox sample contacted it.
    pub fn build(threats: &ThreatRepo, malware: &MalwareDb) -> Self {
        // Merge through a BTreeMap: deterministic address order despite
        // the HashMap-backed sources, and a full-address sort leaves
        // every bucket's suffixes sorted too.
        let mut merged: BTreeMap<u32, (u8, &[usize])> = BTreeMap::new();
        for (ip, events) in threats.iter_flagged() {
            let mut mask = 0u8;
            for e in events {
                mask |= e.category.bit();
            }
            merged.insert(u32::from(ip), (mask, &[]));
        }
        for (ip, refs) in malware.contacted_ips() {
            merged.entry(u32::from(ip)).or_insert((0, &[])).1 = refs;
        }

        let mut bucket_starts = vec![0u32; BUCKETS + 1];
        for ip in merged.keys() {
            bucket_starts[(ip >> 16) as usize + 1] += 1;
        }
        for b in 0..BUCKETS {
            bucket_starts[b + 1] += bucket_starts[b];
        }

        let mut slots = Vec::with_capacity(merged.len());
        let mut sample_refs = Vec::new();
        for (ip, (cat_mask, refs)) in merged {
            let samples_start = sample_refs.len() as u32;
            sample_refs.extend(refs.iter().map(|&i| i as u32));
            slots.push(IntelSlot {
                suffix: (ip & 0xffff) as u16,
                cat_mask,
                samples_start,
                samples_len: refs.len() as u32,
            });
        }
        IntelIndex {
            bucket_starts: bucket_starts.into_boxed_slice(),
            slots: slots.into_boxed_slice(),
            sample_refs: sample_refs.into_boxed_slice(),
        }
    }

    /// An index over empty stores: every lookup misses.
    pub fn empty() -> Self {
        IntelIndex::build(&ThreatRepo::new(), &MalwareDb::new())
    }

    /// Number of indexed addresses.
    pub fn len(&self) -> usize {
        self.slots.len()
    }

    /// Whether no address is indexed.
    pub fn is_empty(&self) -> bool {
        self.slots.is_empty()
    }

    /// Heap footprint in bytes.
    pub fn heap_bytes(&self) -> usize {
        self.bucket_starts.len() * std::mem::size_of::<u32>()
            + self.slots.len() * std::mem::size_of::<IntelSlot>()
            + self.sample_refs.len() * std::mem::size_of::<u32>()
    }

    /// Resolve `ip` against both stores — the streaming hot path.
    #[inline]
    pub fn lookup(&self, ip: Ipv4Addr) -> Option<IntelHit<'_>> {
        let ip = u32::from(ip);
        let bucket = (ip >> 16) as usize;
        let lo = self.bucket_starts[bucket] as usize;
        let hi = self.bucket_starts[bucket + 1] as usize;
        let run = &self.slots[lo..hi];
        let suffix = (ip & 0xffff) as u16;
        let i = run.binary_search_by_key(&suffix, |s| s.suffix).ok()?;
        let slot = run[i];
        let start = slot.samples_start as usize;
        Some(IntelHit {
            cat_mask: slot.cat_mask,
            samples: &self.sample_refs[start..start + slot.samples_len as usize],
        })
    }

    /// Sentinel returned by [`IntelIndex::lookup_sorted_block`] for an
    /// address with no intel.
    pub const NO_SLOT: u32 = u32::MAX;

    /// Resolve a whole block of addresses (big-endian `u32` form) in
    /// one streaming merge-join pass, appending one slot handle per
    /// input to `out` (cleared first): [`IntelIndex::NO_SLOT`] for a
    /// miss, otherwise an opaque handle [`IntelIndex::hit_at`] resolves
    /// to the same [`IntelHit`] that [`IntelIndex::lookup`] returns.
    ///
    /// The same sorted-column contract as
    /// `CorrelationIndex::correlate_sorted_block` in
    /// `iotscope-devicedb`: the v3 store's decoded `src_ip` column is
    /// ascending per block in delta-encoded files, so buckets are
    /// entered monotonically and the in-bucket cursor gallops forward
    /// instead of binary-searching from scratch per record; runs of
    /// equal addresses reuse the previous answer. Unsorted input resets
    /// the gallop on every descending step — correct, just not faster.
    pub fn lookup_sorted_block(&self, ips: &[u32], out: &mut Vec<u32>) {
        out.clear();
        out.reserve(ips.len());
        let mut prev_ip = 0u32;
        let mut prev_slot = Self::NO_SLOT;
        let mut have_prev = false;
        let mut bucket = usize::MAX;
        let mut cursor = 0usize;
        let mut hi = 0usize;
        for &ip in ips {
            if have_prev && ip == prev_ip {
                out.push(prev_slot);
                continue;
            }
            if have_prev && ip < prev_ip {
                bucket = usize::MAX;
            }
            let b = (ip >> 16) as usize;
            if b != bucket {
                bucket = b;
                cursor = self.bucket_starts[b] as usize;
                hi = self.bucket_starts[b + 1] as usize;
            }
            let suffix = (ip & 0xffff) as u16;
            cursor += gallop_lower_bound(&self.slots[cursor..hi], suffix);
            let slot = if cursor < hi && self.slots[cursor].suffix == suffix {
                cursor as u32
            } else {
                Self::NO_SLOT
            };
            prev_ip = ip;
            prev_slot = slot;
            have_prev = true;
            out.push(slot);
        }
    }

    /// Resolve a slot handle from [`IntelIndex::lookup_sorted_block`]
    /// into the hit it denotes. Panics on [`IntelIndex::NO_SLOT`] or a
    /// handle from a different index — handles are positions, not
    /// validated capabilities.
    #[inline]
    pub fn hit_at(&self, slot: u32) -> IntelHit<'_> {
        let slot = self.slots[slot as usize];
        let start = slot.samples_start as usize;
        IntelHit {
            cat_mask: slot.cat_mask,
            samples: &self.sample_refs[start..start + slot.samples_len as usize],
        }
    }
}

/// Index of the first slot whose suffix is `>= suffix` (`slots.len()`
/// when none is): exponential probe + binary search over the probed
/// window — `O(log d)` in the distance `d` advanced, the gallop step of
/// the sorted-block merge-join.
#[inline]
fn gallop_lower_bound(slots: &[IntelSlot], suffix: u16) -> usize {
    let n = slots.len();
    if n == 0 || slots[0].suffix >= suffix {
        return 0;
    }
    // Invariant: slots[lo].suffix < suffix.
    let mut lo = 0usize;
    let mut step = 1usize;
    while lo + step < n && slots[lo + step].suffix < suffix {
        lo += step;
        step <<= 1;
    }
    let hi = (lo + step).min(n);
    lo + 1 + slots[lo + 1..hi].partition_point(|s| s.suffix < suffix)
}

/// The full §V intel surface bundled for streaming consumers: both raw
/// stores (for report paths that need events, domains, or families),
/// the resolver, and the prebuilt [`IntelIndex`] over them.
#[derive(Debug, Clone)]
pub struct IntelContext {
    /// The Cymon-like threat repository.
    pub threats: ThreatRepo,
    /// The sandbox-report database.
    pub malware: MalwareDb,
    /// Hash → family resolution (Table VII).
    pub resolver: FamilyResolver,
    /// The streaming lookup index over `threats` + `malware`.
    pub index: IntelIndex,
}

impl IntelContext {
    /// Bundle the stores and build their index.
    pub fn new(threats: ThreatRepo, malware: MalwareDb, resolver: FamilyResolver) -> Self {
        let index = IntelIndex::build(&threats, &malware);
        IntelContext {
            threats,
            malware,
            resolver,
            index,
        }
    }

    /// Bundle a synthesized [`IntelOutput`] (drops the ground-truth
    /// ledgers, which are test-only).
    pub fn from_synth(out: IntelOutput) -> Self {
        IntelContext::new(out.threats, out.malware, out.resolver)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sandbox::{MalwareHash, NetworkActivity, SandboxReport, SystemActivity};
    use crate::threat::{ThreatCategory, ThreatEvent};
    use proptest::prelude::*;

    fn event(ip: u32, category: ThreatCategory) -> ThreatEvent {
        ThreatEvent {
            ip: Ipv4Addr::from(ip),
            category,
            source: "test".into(),
            reported_at: 0,
        }
    }

    fn sample(hash: &str, ips: &[u32]) -> SandboxReport {
        SandboxReport {
            sha256: MalwareHash::from_hex(hash),
            network: NetworkActivity {
                contacted_ips: ips.iter().map(|&o| Ipv4Addr::from(o)).collect(),
                ..Default::default()
            },
            system: SystemActivity::default(),
        }
    }

    #[test]
    fn empty_index_misses_everything() {
        let idx = IntelIndex::empty();
        assert!(idx.is_empty());
        assert_eq!(idx.len(), 0);
        assert!(idx.lookup(Ipv4Addr::new(0, 0, 0, 0)).is_none());
        assert!(idx.lookup(Ipv4Addr::new(255, 255, 255, 255)).is_none());
    }

    #[test]
    fn merges_threat_and_malware_evidence_per_address() {
        let both = 0x0a00_0001u32; // flagged + contacted
        let threat_only = 0x0a00_0002u32;
        let malware_only = 0x0a00_0003u32;
        let mut repo = ThreatRepo::new();
        repo.add(event(both, ThreatCategory::Scanning));
        repo.add(event(both, ThreatCategory::Malware));
        repo.add(event(threat_only, ThreatCategory::Spam));
        let db: MalwareDb = vec![sample("aa", &[both]), sample("bb", &[both, malware_only])]
            .into_iter()
            .collect();

        let idx = IntelIndex::build(&repo, &db);
        assert_eq!(idx.len(), 3);

        let hit = idx.lookup(Ipv4Addr::from(both)).unwrap();
        assert_eq!(
            hit.cat_mask,
            ThreatCategory::Scanning.bit() | ThreatCategory::Malware.bit()
        );
        assert_eq!(hit.samples, &[0, 1]);
        assert!(hit.is_flagged());

        let hit = idx.lookup(Ipv4Addr::from(threat_only)).unwrap();
        assert_eq!(hit.cat_mask, ThreatCategory::Spam.bit());
        assert!(hit.samples.is_empty());

        let hit = idx.lookup(Ipv4Addr::from(malware_only)).unwrap();
        assert_eq!(hit.cat_mask, 0);
        assert!(!hit.is_flagged());
        assert_eq!(hit.samples, &[1]);

        assert!(idx.lookup(Ipv4Addr::from(0x0a00_0004u32)).is_none());
        assert!(idx.heap_bytes() > (BUCKETS + 1) * 4);
    }

    #[test]
    fn bucket_edge_suffixes_resolve() {
        let mut repo = ThreatRepo::new();
        repo.add(event(0x7f00_0000, ThreatCategory::Scanning));
        repo.add(event(0x7f00_ffff, ThreatCategory::Phishing));
        let idx = IntelIndex::build(&repo, &MalwareDb::new());
        assert!(idx.lookup(Ipv4Addr::from(0x7f00_0000u32)).is_some());
        assert!(idx.lookup(Ipv4Addr::from(0x7f00_ffffu32)).is_some());
        assert!(idx.lookup(Ipv4Addr::from(0x7f00_8000u32)).is_none());
        assert!(idx.lookup(Ipv4Addr::from(0x7eff_ffffu32)).is_none());
        assert!(idx.lookup(Ipv4Addr::from(0x7f01_0000u32)).is_none());
    }

    /// Reference model: the pre-index per-call scans.
    fn reference(repo: &ThreatRepo, db: &MalwareDb, ip: Ipv4Addr) -> Option<(u8, Vec<u32>)> {
        let mut mask = 0u8;
        for c in repo.categories_for(ip) {
            mask |= c.bit();
        }
        let refs: Vec<u32> = db
            .contacted_ips()
            .filter(|(i, _)| *i == ip)
            .flat_map(|(_, idx)| idx.iter().map(|&i| i as u32))
            .collect();
        if mask == 0 && refs.is_empty() {
            None
        } else {
            Some((mask, refs))
        }
    }

    fn addr_strategy() -> impl Strategy<Value = u32> {
        prop_oneof![
            // Dense shared buckets.
            (0u32..3, any::<u16>()).prop_map(|(p, s)| ((0x0a0a + p) << 16) | u32::from(s)),
            // Nearly-singleton buckets.
            (0u32..64, 0u16..4).prop_map(|(p, s)| ((0xc0a8 + p) << 16) | u32::from(s)),
            // Anywhere.
            any::<u32>(),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(96))]

        /// The index agrees with the HashMap-scan reference model on
        /// hits, misses, and near-miss probes.
        #[test]
        fn prop_index_matches_hashmap_scans(
            flagged in proptest::collection::vec((addr_strategy(), 0u8..6), 0..120),
            contacted in proptest::collection::vec(
                proptest::collection::vec(addr_strategy(), 0..4), 0..40),
            probes in proptest::collection::vec(any::<u32>(), 0..48),
        ) {
            let mut repo = ThreatRepo::new();
            for &(ip, cat) in &flagged {
                repo.add(event(ip, ThreatCategory::ALL[cat as usize]));
            }
            let db: MalwareDb = contacted
                .iter()
                .enumerate()
                .map(|(i, ips)| sample(&format!("{i:02x}"), ips))
                .collect();
            let idx = IntelIndex::build(&repo, &db);

            // Address universe = every member + random probes + near misses.
            let mut universe: Vec<u32> = flagged.iter().map(|&(ip, _)| ip).collect();
            universe.extend(contacted.iter().flatten().copied());
            for &ip in universe.clone().iter() {
                universe.push(ip.wrapping_add(1));
                universe.push(ip.wrapping_sub(1));
            }
            universe.extend(probes);

            for ip_u in universe {
                let ip = Ipv4Addr::from(ip_u);
                let got = idx.lookup(ip).map(|h| (h.cat_mask, h.samples.to_vec()));
                prop_assert_eq!(got, reference(&repo, &db, ip), "address {}", ip);
            }
        }

        /// Build is deterministic: two builds from independently
        /// populated (differently ordered) stores lay out identically.
        #[test]
        fn prop_build_is_order_independent(
            mut flagged in proptest::collection::vec((addr_strategy(), 0u8..6), 1..60),
        ) {
            let forward: ThreatRepo = flagged
                .iter()
                .map(|&(ip, c)| event(ip, ThreatCategory::ALL[c as usize]))
                .collect();
            flagged.reverse();
            let backward: ThreatRepo = flagged
                .iter()
                .map(|&(ip, c)| event(ip, ThreatCategory::ALL[c as usize]))
                .collect();
            let a = IntelIndex::build(&forward, &MalwareDb::new());
            let b = IntelIndex::build(&backward, &MalwareDb::new());
            prop_assert_eq!(a.len(), b.len());
            for &(ip, _) in &flagged {
                let ip = Ipv4Addr::from(ip);
                prop_assert_eq!(a.lookup(ip), b.lookup(ip));
            }
        }

        /// The sorted-block merge-join resolves every address to the
        /// same hit (or miss) as per-record `lookup`, on ascending and
        /// on arbitrary (unsorted) blocks, and reusing the out buffer
        /// replaces its contents.
        #[test]
        fn prop_sorted_block_matches_per_record(
            flagged in proptest::collection::vec((addr_strategy(), 0u8..6), 0..100),
            mut block in proptest::collection::vec(addr_strategy(), 0..400),
            sort_block in any::<bool>(),
        ) {
            let repo: ThreatRepo = flagged
                .iter()
                .map(|&(ip, c)| event(ip, ThreatCategory::ALL[c as usize]))
                .collect();
            let idx = IntelIndex::build(&repo, &MalwareDb::new());
            // Mix known members in so hits are common, then duplicate a
            // prefix to exercise the equal-run fast path.
            block.extend(flagged.iter().map(|&(ip, _)| ip));
            let dup: Vec<u32> = block.iter().take(8).copied().collect();
            block.extend(dup);
            if sort_block {
                block.sort_unstable();
            }

            let mut slots = Vec::new();
            idx.lookup_sorted_block(&block, &mut slots);
            prop_assert_eq!(slots.len(), block.len());
            for (&ip, &slot) in block.iter().zip(&slots) {
                let got = (slot != IntelIndex::NO_SLOT)
                    .then(|| idx.hit_at(slot))
                    .map(|h| (h.cat_mask, h.samples.to_vec()));
                let want = idx
                    .lookup(Ipv4Addr::from(ip))
                    .map(|h| (h.cat_mask, h.samples.to_vec()));
                prop_assert_eq!(got, want, "address {}", Ipv4Addr::from(ip));
            }

            // Reuse: the second pass must fully replace the first.
            block.reverse();
            idx.lookup_sorted_block(&block, &mut slots);
            prop_assert_eq!(slots.len(), block.len());
            for (&ip, &slot) in block.iter().zip(&slots) {
                let hit = slot != IntelIndex::NO_SLOT;
                prop_assert_eq!(hit, idx.lookup(Ipv4Addr::from(ip)).is_some());
            }
        }
    }

    #[test]
    fn context_bundles_and_indexes() {
        let mut repo = ThreatRepo::new();
        repo.add(event(0x0101_0101, ThreatCategory::Scanning));
        let ctx = IntelContext::new(repo, MalwareDb::new(), FamilyResolver::new());
        assert_eq!(ctx.index.len(), 1);
        assert!(ctx.threats.is_flagged(Ipv4Addr::from(0x0101_0101u32)));
    }
}
