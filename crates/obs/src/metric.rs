//! Metric handles: cheap `Arc`-backed clones updated with single atomic
//! operations, so instrumented hot paths never take a lock.

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Whether a metric's final value is reproducible across runs.
///
/// See the crate docs for the full determinism contract.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Stability {
    /// Identical for a successful run over the same input regardless of
    /// thread count or scheduling.
    Stable,
    /// Timing- or schedule-dependent (timers, per-worker counts).
    Variant,
}

/// A monotonically increasing `u64` counter.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (counts are discarded at
    /// snapshot time). Useful as a default before instrumentation.
    pub fn detached() -> Self {
        Counter::default()
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge holding the latest set value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn detached() -> Self {
        Gauge::default()
    }

    /// Overwrite the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjust the value by `d` (may be negative).
    #[inline]
    pub fn adjust(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Shared histogram state: fixed bucket upper bounds plus one overflow
/// bucket, a total count, and a sum for mean computation.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    pub(crate) bounds: Box<[u64]>,
    /// `bounds.len() + 1` buckets; the last is the overflow bucket.
    pub(crate) buckets: Box<[AtomicU64]>,
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    /// Largest observation so far (0 before any observation) — gives
    /// quantile estimation a tight cap for the overflow bucket.
    pub(crate) max: AtomicU64,
}

/// A fixed-bucket histogram of `u64` observations.
///
/// Bucket bounds are fixed at registration, so observing is one atomic
/// add into a pre-sized slot — no allocation, no locking, and bucket
/// counts merge deterministically across threads. (That fixed layout is
/// *why* the determinism contract can include histograms: a dynamic
/// scheme like t-digest re-centers on ingestion order.)
#[derive(Debug, Clone)]
pub struct Histogram(pub(crate) Arc<HistogramCore>);

impl Histogram {
    pub(crate) fn with_bounds(bounds: &[u64]) -> Self {
        let mut sorted: Vec<u64> = bounds.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        let buckets = (0..=sorted.len()).map(|_| AtomicU64::new(0)).collect();
        Histogram(Arc::new(HistogramCore {
            bounds: sorted.into_boxed_slice(),
            buckets,
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }))
    }

    /// A histogram not attached to any registry.
    pub fn detached(bounds: &[u64]) -> Self {
        Histogram::with_bounds(bounds)
    }

    /// Record one observation. Values land in the first bucket whose
    /// upper bound is `>= v`, or the overflow bucket.
    #[inline]
    pub fn observe(&self, v: u64) {
        let idx = self.0.bounds.partition_point(|&b| b < v);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        self.0.sum.fetch_add(v, Ordering::Relaxed);
        self.0.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations so far.
    pub fn sum(&self) -> u64 {
        self.0.sum.load(Ordering::Relaxed)
    }

    /// Largest observation so far (0 if none).
    pub fn max(&self) -> u64 {
        self.0.max.load(Ordering::Relaxed)
    }

    /// Estimate the `q`-quantile (`0.0..=1.0`) from bucket counts.
    ///
    /// Returns the upper bound of the bucket holding the rank-`⌈q·n⌉`
    /// observation — an over-estimate by at most one bucket width, the
    /// usual fixed-bucket convention — or [`max`](Self::max) when the
    /// rank lands in the overflow bucket. `None` before any observation.
    ///
    /// Reads are unsynchronized with concurrent `observe` calls, so a
    /// live estimate may lag in-flight observations; quiesce writers for
    /// exact results.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let count = self.count();
        if count == 0 {
            return None;
        }
        let rank = ((q.clamp(0.0, 1.0) * count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, b) in self.0.buckets.iter().enumerate() {
            seen += b.load(Ordering::Relaxed);
            if seen >= rank {
                return Some(match self.0.bounds.get(i) {
                    Some(&bound) => bound.min(self.max()),
                    None => self.max(),
                });
            }
        }
        Some(self.max())
    }
}

/// An accumulating duration timer (total nanoseconds + span count).
///
/// Always [`Stability::Variant`]: wall time is never reproducible.
#[derive(Debug, Clone, Default)]
pub struct Timer {
    pub(crate) nanos: Arc<AtomicU64>,
    pub(crate) spans: Arc<AtomicU64>,
}

impl Timer {
    /// A timer not attached to any registry.
    pub fn detached() -> Self {
        Timer::default()
    }

    /// Add one measured duration.
    #[inline]
    pub fn record(&self, d: Duration) {
        self.nanos.fetch_add(
            u64::try_from(d.as_nanos()).unwrap_or(u64::MAX),
            Ordering::Relaxed,
        );
        self.spans.fetch_add(1, Ordering::Relaxed);
    }

    /// Start a scoped span; the elapsed time is recorded when the
    /// returned guard drops.
    pub fn span(&self) -> Span {
        Span {
            timer: self.clone(),
            start: Instant::now(),
        }
    }

    /// Total recorded time.
    pub fn total(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::Relaxed))
    }

    /// Number of recorded spans.
    pub fn span_count(&self) -> u64 {
        self.spans.load(Ordering::Relaxed)
    }
}

/// Scope guard returned by [`Timer::span`]; records elapsed time into
/// its timer on drop.
#[derive(Debug)]
pub struct Span {
    timer: Timer,
    start: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        self.timer.record(self.start.elapsed());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::detached();
        c.inc();
        c.add(9);
        assert_eq!(c.get(), 10);
        let g = Gauge::detached();
        g.set(4);
        g.adjust(-6);
        assert_eq!(g.get(), -2);
    }

    #[test]
    fn histogram_bucketing_is_inclusive_upper_bound() {
        let h = Histogram::detached(&[10, 100]);
        for v in [0, 10, 11, 100, 101, 5000] {
            h.observe(v);
        }
        assert_eq!(h.count(), 6);
        assert_eq!(h.sum(), 10 + 11 + 100 + 101 + 5000);
        let counts: Vec<u64> =
            h.0.buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect();
        // <=10: {0, 10}; <=100: {11, 100}; overflow: {101, 5000}.
        assert_eq!(counts, vec![2, 2, 2]);
    }

    #[test]
    fn histogram_bounds_are_sorted_and_deduped() {
        let h = Histogram::detached(&[100, 10, 100]);
        assert_eq!(&*h.0.bounds, &[10, 100]);
    }

    #[test]
    fn histogram_quantiles_and_max() {
        let h = Histogram::detached(&[10, 100, 1000]);
        assert_eq!(h.quantile(0.5), None);
        for v in 1..=100u64 {
            h.observe(v);
        }
        // Ranks 1..=10 are in the <=10 bucket, 11..=100 in <=100.
        assert_eq!(h.quantile(0.0), Some(10));
        assert_eq!(h.quantile(0.1), Some(10));
        assert_eq!(h.quantile(0.5), Some(100));
        assert_eq!(h.quantile(0.99), Some(100));
        assert_eq!(h.max(), 100);
        // Overflow observations report the tracked max, not a bound.
        h.observe(50_000);
        assert_eq!(h.quantile(1.0), Some(50_000));
        assert_eq!(h.max(), 50_000);
    }

    #[test]
    fn timer_spans_accumulate() {
        let t = Timer::detached();
        t.record(Duration::from_millis(2));
        {
            let _s = t.span();
        }
        assert_eq!(t.span_count(), 2);
        assert!(t.total() >= Duration::from_millis(2));
    }

    #[test]
    fn clones_share_state() {
        let c = Counter::detached();
        let c2 = c.clone();
        c2.add(5);
        assert_eq!(c.get(), 5);
    }
}
