//! Text and JSON exporters over [`Snapshot`].
//!
//! Both are hand-rolled (the crate is zero-dependency) and emit entries
//! in the snapshot's lexicographic order, so output is byte-stable for
//! equal snapshots.

use crate::metric::Stability;
use crate::snapshot::{Snapshot, SnapshotValue};
use std::fmt::Write as _;
use std::time::Duration;

impl Snapshot {
    /// Render as aligned human-readable text, one metric per line.
    /// Variant metrics are marked `~` (not comparable across runs).
    pub fn to_text(&self) -> String {
        let width = self.entries.iter().map(|e| e.name.len()).max().unwrap_or(0);
        let mut out = String::new();
        for e in &self.entries {
            let marker = match e.stability {
                Stability::Stable => ' ',
                Stability::Variant => '~',
            };
            let _ = write!(out, "{marker}{:<width$}  ", e.name);
            match &e.value {
                SnapshotValue::Counter(v) => {
                    let _ = writeln!(out, "{v}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = writeln!(out, "{v}");
                }
                SnapshotValue::Duration { total_ns, spans } => {
                    let _ = writeln!(
                        out,
                        "{:.3?} over {spans} spans",
                        Duration::from_nanos(*total_ns)
                    );
                }
                SnapshotValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                    max,
                } => {
                    let _ = write!(out, "count={count} sum={sum} max={max} buckets=[");
                    for (i, n) in buckets.iter().enumerate() {
                        if i > 0 {
                            let _ = write!(out, " ");
                        }
                        match bounds.get(i) {
                            Some(b) => {
                                let _ = write!(out, "<={b}:{n}");
                            }
                            None => {
                                let _ = write!(out, ">{}:{n}", bounds.last().unwrap_or(&0));
                            }
                        }
                    }
                    let _ = writeln!(out, "]");
                }
            }
        }
        out
    }

    /// Render as a JSON object keyed by metric name. Each value carries
    /// its `kind`, `stability`, and kind-specific fields; key order is
    /// the snapshot's (lexicographic) order.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(
                out,
                "{}:{{\"stability\":\"{}\",",
                json_string(&e.name),
                match e.stability {
                    Stability::Stable => "stable",
                    Stability::Variant => "variant",
                }
            );
            match &e.value {
                SnapshotValue::Counter(v) => {
                    let _ = write!(out, "\"kind\":\"counter\",\"value\":{v}");
                }
                SnapshotValue::Gauge(v) => {
                    let _ = write!(out, "\"kind\":\"gauge\",\"value\":{v}");
                }
                SnapshotValue::Duration { total_ns, spans } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"timer\",\"total_ns\":{total_ns},\"spans\":{spans}"
                    );
                }
                SnapshotValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                    max,
                } => {
                    let _ = write!(
                        out,
                        "\"kind\":\"histogram\",\"bounds\":{},\"buckets\":{},\"count\":{count},\"sum\":{sum},\"max\":{max}",
                        json_u64_array(bounds),
                        json_u64_array(buckets)
                    );
                }
            }
            out.push('}');
        }
        out.push('}');
        out
    }
}

fn json_u64_array(values: &[u64]) -> String {
    let mut out = String::from("[");
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{v}");
    }
    out.push(']');
    out
}

/// Escape a metric name as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Snapshot {
        let r = Registry::new();
        r.counter("store.bytes_read").add(1234);
        r.gauge("pipeline.threads").set(4);
        r.timer("pipeline.read_time")
            .record(Duration::from_millis(3));
        let h = r.histogram("store.hour_bytes", &[10, 100]);
        h.observe(5);
        h.observe(500);
        r.snapshot()
    }

    #[test]
    fn text_contains_every_metric_and_marks_variants() {
        let text = sample().to_text();
        assert!(text.contains(" store.bytes_read"));
        assert!(text.contains("1234"));
        assert!(text.contains("~pipeline.threads"));
        assert!(text.contains("~pipeline.read_time"));
        assert!(text.contains("count=2 sum=505 max=500 buckets=[<=10:1 <=100:0 >100:1]"));
    }

    #[test]
    fn json_is_parseable_shape_and_ordered() {
        let json = sample().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains(
            "\"store.bytes_read\":{\"stability\":\"stable\",\"kind\":\"counter\",\"value\":1234}"
        ));
        assert!(json.contains("\"kind\":\"histogram\",\"bounds\":[10,100],\"buckets\":[1,0,1]"));
        let threads = json.find("pipeline.threads").unwrap();
        let bytes = json.find("store.bytes_read").unwrap();
        assert!(threads < bytes, "keys must be name-ordered");
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn equal_registries_render_identically() {
        let build = || {
            let r = Registry::new();
            r.counter("a").add(7);
            r.counter("b").add(9);
            r.snapshot()
        };
        assert_eq!(build().to_json(), build().to_json());
        assert_eq!(build().to_text(), build().to_text());
    }

    #[test]
    fn empty_snapshot_renders() {
        let s = Registry::new().snapshot();
        assert_eq!(s.to_json(), "{}");
        assert_eq!(s.to_text(), "");
    }
}
