//! The metric registry: name → metric, with idempotent registration.

use crate::metric::{Counter, Gauge, Histogram, Stability, Timer};
use crate::snapshot::{Snapshot, SnapshotEntry, SnapshotValue};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};

#[derive(Debug, Clone)]
pub(crate) enum Slot {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
    Timer(Timer),
}

impl Slot {
    fn kind(&self) -> &'static str {
        match self {
            Slot::Counter(_) => "counter",
            Slot::Gauge(_) => "gauge",
            Slot::Histogram(_) => "histogram",
            Slot::Timer(_) => "timer",
        }
    }
}

/// A shared, cheaply clonable registry of named metrics.
///
/// Registration (`counter`, `gauge`, `histogram`, `timer`) is
/// idempotent: asking twice for the same name returns handles over the
/// same underlying atomic, which is how separately instrumented layers
/// (store, pipeline workers, analyzer) converge on one set of totals.
/// Registration takes a short lock; the returned handles never do.
///
/// Snapshots iterate the backing `BTreeMap`, so exporter output order is
/// the lexicographic metric-name order — stable across runs by
/// construction.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    slots: Arc<Mutex<BTreeMap<String, (Stability, Slot)>>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(&self, name: &str, stability: Stability, make: impl FnOnce() -> Slot) -> Slot {
        let mut slots = self.slots.lock().expect("metric registry not poisoned");
        let (existing_stability, slot) = slots
            .entry(name.to_owned())
            .or_insert_with(|| (stability, make()));
        assert_eq!(
            *existing_stability, stability,
            "metric {name:?} re-registered with a different stability"
        );
        slot.clone()
    }

    /// Get or create a [`Stability::Stable`] counter.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different kind or
    /// stability — metric names are a global namespace and a conflict is
    /// an instrumentation bug, not a runtime condition.
    pub fn counter(&self, name: &str) -> Counter {
        self.counter_with(name, Stability::Stable)
    }

    /// Get or create a [`Stability::Variant`] counter (e.g. per-worker
    /// item counts, which depend on scheduling).
    pub fn counter_variant(&self, name: &str) -> Counter {
        self.counter_with(name, Stability::Variant)
    }

    fn counter_with(&self, name: &str, stability: Stability) -> Counter {
        match self.register(name, stability, || Slot::Counter(Counter::detached())) {
            Slot::Counter(c) => c,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a [`Stability::Variant`] gauge.
    ///
    /// Gauges hold run-shape facts (thread count, queue depth) that are
    /// legitimately different between configurations, so they are always
    /// variant.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, Stability::Variant, || Slot::Gauge(Gauge::detached())) {
            Slot::Gauge(g) => g,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a [`Stability::Stable`] fixed-bucket histogram.
    /// `bounds` are inclusive upper bounds; an overflow bucket is added.
    /// If the name exists, the existing histogram is returned and
    /// `bounds` are ignored.
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    pub fn histogram(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, bounds, Stability::Stable)
    }

    /// Get or create a [`Stability::Variant`] fixed-bucket histogram
    /// (e.g. request latencies, which depend on wall time).
    pub fn histogram_variant(&self, name: &str, bounds: &[u64]) -> Histogram {
        self.histogram_with(name, bounds, Stability::Variant)
    }

    fn histogram_with(&self, name: &str, bounds: &[u64], stability: Stability) -> Histogram {
        match self.register(name, stability, || {
            Slot::Histogram(Histogram::with_bounds(bounds))
        }) {
            Slot::Histogram(h) => h,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Get or create a timer (always [`Stability::Variant`]).
    ///
    /// # Panics
    ///
    /// As [`Registry::counter`].
    pub fn timer(&self, name: &str) -> Timer {
        match self.register(name, Stability::Variant, || Slot::Timer(Timer::detached())) {
            Slot::Timer(t) => t,
            other => panic!("metric {name:?} already registered as a {}", other.kind()),
        }
    }

    /// Merge a snapshot's values into this registry: counters and
    /// timers accumulate, histograms add bucket-wise, gauges take the
    /// snapshot's value. Metrics absent here are created with the
    /// snapshot's stability (and bounds, for histograms).
    ///
    /// This is how per-run registries publish into a long-lived caller
    /// registry without ever sharing live handles — two concurrent runs
    /// each account privately and absorb their totals on completion, so
    /// neither can attribute the other's work to itself.
    ///
    /// # Panics
    ///
    /// Panics if a snapshot entry's name is already registered here as
    /// a different kind or stability (an instrumentation bug, as with
    /// direct registration).
    pub fn absorb(&self, snapshot: &Snapshot) {
        use crate::metric::Stability;
        for entry in snapshot.entries() {
            match &entry.value {
                SnapshotValue::Counter(v) => {
                    let c = match entry.stability {
                        Stability::Stable => self.counter(&entry.name),
                        Stability::Variant => self.counter_variant(&entry.name),
                    };
                    c.add(*v);
                }
                SnapshotValue::Gauge(v) => self.gauge(&entry.name).set(*v),
                SnapshotValue::Duration { total_ns, spans } => {
                    let t = self.timer(&entry.name);
                    t.nanos.fetch_add(*total_ns, Ordering::Relaxed);
                    t.spans.fetch_add(*spans, Ordering::Relaxed);
                }
                SnapshotValue::Histogram {
                    bounds,
                    buckets,
                    count,
                    sum,
                    max,
                } => {
                    let h = match entry.stability {
                        Stability::Stable => self.histogram(&entry.name, bounds),
                        Stability::Variant => self.histogram_variant(&entry.name, bounds),
                    };
                    assert_eq!(
                        &*h.0.bounds,
                        &bounds[..],
                        "histogram {:?} absorbed with different bounds",
                        entry.name
                    );
                    for (slot, add) in h.0.buckets.iter().zip(buckets) {
                        slot.fetch_add(*add, Ordering::Relaxed);
                    }
                    h.0.count.fetch_add(*count, Ordering::Relaxed);
                    h.0.sum.fetch_add(*sum, Ordering::Relaxed);
                    h.0.max.fetch_max(*max, Ordering::Relaxed);
                }
            }
        }
    }

    /// Freeze every metric into a [`Snapshot`], ordered by name.
    pub fn snapshot(&self) -> Snapshot {
        let slots = self.slots.lock().expect("metric registry not poisoned");
        let entries = slots
            .iter()
            .map(|(name, (stability, slot))| SnapshotEntry {
                name: name.clone(),
                stability: *stability,
                value: match slot {
                    Slot::Counter(c) => SnapshotValue::Counter(c.get()),
                    Slot::Gauge(g) => SnapshotValue::Gauge(g.get()),
                    Slot::Histogram(h) => SnapshotValue::Histogram {
                        bounds: h.0.bounds.to_vec(),
                        buckets: h
                            .0
                            .buckets
                            .iter()
                            .map(|b| b.load(Ordering::Relaxed))
                            .collect(),
                        count: h.count(),
                        sum: h.sum(),
                        max: h.max(),
                    },
                    Slot::Timer(t) => SnapshotValue::Duration {
                        total_ns: t.nanos.load(Ordering::Relaxed),
                        spans: t.span_count(),
                    },
                },
            })
            .collect();
        Snapshot { entries }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registration_is_idempotent_and_shared() {
        let r = Registry::new();
        r.counter("a.x").add(3);
        r.counter("a.x").add(4);
        assert_eq!(r.snapshot().counter("a.x"), Some(7));
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_conflict_panics() {
        let r = Registry::new();
        r.counter("dup");
        r.histogram("dup", &[1]);
    }

    #[test]
    #[should_panic(expected = "different stability")]
    fn stability_conflict_panics() {
        let r = Registry::new();
        r.counter("s");
        r.counter_variant("s");
    }

    #[test]
    fn snapshot_is_name_ordered() {
        let r = Registry::new();
        r.counter("z.last");
        r.counter("a.first");
        r.gauge("m.middle");
        let snap = r.snapshot();
        let names: Vec<&str> = snap.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["a.first", "m.middle", "z.last"]);
    }

    #[test]
    fn concurrent_increments_sum_exactly() {
        let r = Registry::new();
        let c = r.counter("hot");
        std::thread::scope(|s| {
            for _ in 0..4 {
                let c = c.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        c.inc();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }

    #[test]
    fn registries_share_state_through_clones() {
        let r = Registry::new();
        let r2 = r.clone();
        r2.counter("shared").add(5);
        assert_eq!(r.snapshot().counter("shared"), Some(5));
    }

    #[test]
    fn absorb_accumulates_every_metric_kind() {
        let private = Registry::new();
        private.counter("c").add(3);
        private.counter_variant("cv").add(2);
        private.gauge("g").set(7);
        private
            .timer("t")
            .record(std::time::Duration::from_micros(9));
        private.histogram("h", &[10, 100]).observe(5);
        private.histogram("h", &[10, 100]).observe(5000);

        let target = Registry::new();
        target.counter("c").add(10);
        target.absorb(&private.snapshot());
        target.absorb(&private.snapshot());

        let snap = target.snapshot();
        assert_eq!(snap.counter("c"), Some(16));
        assert_eq!(snap.counter("cv"), Some(4));
        assert_eq!(snap.gauge("g"), Some(7));
        assert_eq!(
            snap.duration("t"),
            Some(std::time::Duration::from_micros(18))
        );
        match &snap.get("h").unwrap().value {
            SnapshotValue::Histogram {
                buckets,
                count,
                sum,
                ..
            } => {
                assert_eq!(buckets, &vec![2, 0, 2]);
                assert_eq!(*count, 4);
                assert_eq!(*sum, 2 * 5005);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "already registered as a")]
    fn absorb_kind_conflict_panics() {
        let a = Registry::new();
        a.counter("dup");
        let b = Registry::new();
        b.histogram("dup", &[1]);
        a.absorb(&b.snapshot());
    }
}
