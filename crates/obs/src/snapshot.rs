//! Frozen metric values in deterministic order.

use crate::metric::Stability;
use std::time::Duration;

/// One frozen metric value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotValue {
    /// A counter's value.
    Counter(u64),
    /// A gauge's value.
    Gauge(i64),
    /// A timer: accumulated nanoseconds and number of spans.
    Duration {
        /// Total accumulated nanoseconds.
        total_ns: u64,
        /// Number of recorded spans.
        spans: u64,
    },
    /// A fixed-bucket histogram.
    Histogram {
        /// Inclusive upper bounds, ascending.
        bounds: Vec<u64>,
        /// `bounds.len() + 1` bucket counts (last is overflow).
        buckets: Vec<u64>,
        /// Total observations.
        count: u64,
        /// Sum of observations.
        sum: u64,
        /// Largest observation (0 if none) — caps quantile estimates
        /// for the overflow bucket.
        max: u64,
    },
}

/// One named metric in a snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotEntry {
    /// The metric name.
    pub name: String,
    /// Its determinism class.
    pub stability: Stability,
    /// Its frozen value.
    pub value: SnapshotValue,
}

/// A point-in-time copy of every metric in a registry, ordered by name.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Snapshot {
    pub(crate) entries: Vec<SnapshotEntry>,
}

impl Snapshot {
    /// All entries, in lexicographic name order.
    pub fn entries(&self) -> &[SnapshotEntry] {
        &self.entries
    }

    /// Look up one entry by name (binary search — snapshots are sorted).
    pub fn get(&self, name: &str) -> Option<&SnapshotEntry> {
        self.entries
            .binary_search_by(|e| e.name.as_str().cmp(name))
            .ok()
            .map(|i| &self.entries[i])
    }

    /// A counter's value, if `name` is a counter.
    pub fn counter(&self, name: &str) -> Option<u64> {
        match self.get(name)?.value {
            SnapshotValue::Counter(v) => Some(v),
            _ => None,
        }
    }

    /// A gauge's value, if `name` is a gauge.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        match self.get(name)?.value {
            SnapshotValue::Gauge(v) => Some(v),
            _ => None,
        }
    }

    /// A timer's accumulated duration, if `name` is a timer.
    pub fn duration(&self, name: &str) -> Option<Duration> {
        match self.get(name)?.value {
            SnapshotValue::Duration { total_ns, .. } => Some(Duration::from_nanos(total_ns)),
            _ => None,
        }
    }

    /// The increase of counter `name` since `earlier` (0 if absent
    /// there). Registries are cumulative across runs; per-run accounting
    /// diffs two snapshots.
    pub fn counter_since(&self, earlier: &Snapshot, name: &str) -> u64 {
        self.counter(name)
            .unwrap_or(0)
            .saturating_sub(earlier.counter(name).unwrap_or(0))
    }

    /// The increase of timer `name` since `earlier`.
    pub fn duration_since(&self, earlier: &Snapshot, name: &str) -> Duration {
        self.duration(name)
            .unwrap_or(Duration::ZERO)
            .saturating_sub(earlier.duration(name).unwrap_or(Duration::ZERO))
    }

    /// Only the [`Stability::Stable`] entries — the subset the
    /// determinism contract guarantees identical across thread counts.
    pub fn stable_only(&self) -> Snapshot {
        Snapshot {
            entries: self
                .entries
                .iter()
                .filter(|e| e.stability == Stability::Stable)
                .cloned()
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Registry;

    fn sample() -> Registry {
        let r = Registry::new();
        r.counter("c.stable").add(2);
        r.counter_variant("c.variant").add(9);
        r.gauge("g").set(-3);
        r.timer("t").record(Duration::from_micros(5));
        r.histogram("h", &[1, 2]).observe(2);
        r
    }

    #[test]
    fn lookups_by_kind() {
        let s = sample().snapshot();
        assert_eq!(s.counter("c.stable"), Some(2));
        assert_eq!(s.gauge("g"), Some(-3));
        assert_eq!(s.duration("t"), Some(Duration::from_micros(5)));
        assert_eq!(s.counter("g"), None, "kind mismatch yields None");
        assert_eq!(s.counter("nope"), None);
    }

    #[test]
    fn stable_only_drops_variant_and_timers() {
        let s = sample().snapshot().stable_only();
        let names: Vec<&str> = s.entries().iter().map(|e| e.name.as_str()).collect();
        assert_eq!(names, vec!["c.stable", "h"]);
    }

    #[test]
    fn deltas_between_snapshots() {
        let r = sample();
        let before = r.snapshot();
        r.counter("c.stable").add(10);
        r.timer("t").record(Duration::from_micros(7));
        let after = r.snapshot();
        assert_eq!(after.counter_since(&before, "c.stable"), 10);
        assert_eq!(after.counter_since(&before, "brand.new"), 0);
        assert_eq!(after.duration_since(&before, "t"), Duration::from_micros(7));
    }
}
