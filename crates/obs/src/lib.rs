//! Observability substrate for the iotscope pipeline.
//!
//! A deliberately small, zero-dependency metrics layer: named metrics
//! live in a [`Registry`], handles ([`Counter`], [`Gauge`],
//! [`Histogram`], [`Timer`]) are cheap `Arc`-backed clones that hot
//! paths update with a single atomic operation, and a [`Snapshot`]
//! freezes every metric in **deterministic (lexicographic) order** for
//! the text and JSON exporters.
//!
//! # Determinism contract
//!
//! Every metric is registered with a [`Stability`]:
//!
//! * [`Stability::Stable`] — for a successful run over the same input
//!   the final value is identical regardless of thread count, worker
//!   scheduling, or wall-clock speed. Counters of *work done* (bytes
//!   read, records decoded, packets per class) belong here: the same
//!   hours are processed exactly once whichever worker gets them, and
//!   atomic additions commute.
//! * [`Stability::Variant`] — anything timing- or schedule-dependent:
//!   span timers, per-worker item counts, the thread-count gauge.
//!
//! [`Snapshot::stable_only`] filters to the stable subset, which is what
//! the pipeline's cross-thread-count determinism tests compare. Timers
//! are always variant.
//!
//! # Example
//!
//! ```
//! use iotscope_obs::Registry;
//!
//! let registry = Registry::new();
//! let bytes = registry.counter("store.bytes_read");
//! bytes.add(4096);
//! let t = registry.timer("pipeline.read_time");
//! {
//!     let _span = t.span(); // records elapsed time on drop
//! }
//! let snap = registry.snapshot();
//! assert_eq!(snap.counter("store.bytes_read"), Some(4096));
//! assert!(snap.to_text().contains("store.bytes_read"));
//! assert!(snap.to_json().starts_with('{'));
//! ```

#![forbid(unsafe_code)]

mod export;
mod metric;
mod registry;
mod snapshot;

pub use metric::{Counter, Gauge, Histogram, Span, Stability, Timer};
pub use registry::Registry;
pub use snapshot::{Snapshot, SnapshotEntry, SnapshotValue};

/// Power-of-four byte-size bucket bounds (64 B .. 64 MiB), a sensible
/// default for file- and payload-size histograms.
pub const BYTE_SIZE_BOUNDS: [u64; 11] = [
    64,
    256,
    1 << 10,
    4 << 10,
    16 << 10,
    64 << 10,
    256 << 10,
    1 << 20,
    4 << 20,
    16 << 20,
    64 << 20,
];
