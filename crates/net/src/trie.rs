//! A binary longest-prefix-match trie for IP-keyed metadata.
//!
//! Used to answer "which registered prefix covers this source address?" —
//! e.g. mapping darknet source IPs to ISP/geography blocks during
//! correlation, or testing telescope membership against several dark
//! prefixes at once.

use crate::addr::{ip_to_u32, Ipv4Cidr};
use std::net::Ipv4Addr;

/// A longest-prefix-match trie from [`Ipv4Cidr`] to values of type `T`.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), iotscope_net::NetError> {
/// use iotscope_net::trie::PrefixTrie;
/// use std::net::Ipv4Addr;
///
/// let mut trie = PrefixTrie::new();
/// trie.insert("10.0.0.0/8".parse()?, "corp");
/// trie.insert("10.20.0.0/16".parse()?, "lab");
///
/// assert_eq!(trie.longest_match(Ipv4Addr::new(10, 20, 3, 4)), Some(&"lab"));
/// assert_eq!(trie.longest_match(Ipv4Addr::new(10, 9, 9, 9)), Some(&"corp"));
/// assert_eq!(trie.longest_match(Ipv4Addr::new(11, 0, 0, 1)), None);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct PrefixTrie<T> {
    nodes: Vec<Node<T>>,
    len: usize,
}

#[derive(Debug, Clone)]
struct Node<T> {
    children: [Option<u32>; 2],
    value: Option<T>,
}

impl<T> Node<T> {
    fn empty() -> Self {
        Node {
            children: [None, None],
            value: None,
        }
    }
}

impl<T> PrefixTrie<T> {
    /// An empty trie.
    pub fn new() -> Self {
        PrefixTrie {
            nodes: vec![Node::empty()],
            len: 0,
        }
    }

    /// Number of prefixes stored.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the trie stores no prefixes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Insert (or replace) the value for `prefix`; returns the previous
    /// value if the exact prefix was already present.
    pub fn insert(&mut self, prefix: Ipv4Cidr, value: T) -> Option<T> {
        let bits = ip_to_u32(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = match self.nodes[node].children[bit] {
                Some(next) => next as usize,
                None => {
                    let next = self.nodes.len();
                    self.nodes.push(Node::empty());
                    self.nodes[node].children[bit] = Some(next as u32);
                    next
                }
            };
        }
        let prev = self.nodes[node].value.replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// The value of the most specific (longest) registered prefix covering
    /// `ip`, or `None` if no prefix covers it.
    pub fn longest_match(&self, ip: Ipv4Addr) -> Option<&T> {
        self.longest_match_entry(ip).map(|(_, v)| v)
    }

    /// Like [`longest_match`](Self::longest_match) but also yields the
    /// matched prefix length.
    pub fn longest_match_entry(&self, ip: Ipv4Addr) -> Option<(u8, &T)> {
        let bits = ip_to_u32(ip);
        let mut node = 0usize;
        let mut best: Option<(u8, &T)> = self.nodes[0].value.as_ref().map(|v| (0u8, v));
        for depth in 0..32u8 {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            match self.nodes[node].children[bit] {
                Some(next) => {
                    node = next as usize;
                    if let Some(v) = self.nodes[node].value.as_ref() {
                        best = Some((depth + 1, v));
                    }
                }
                None => break,
            }
        }
        best
    }

    /// The value registered for exactly `prefix`, if present.
    pub fn get_exact(&self, prefix: Ipv4Cidr) -> Option<&T> {
        let bits = ip_to_u32(prefix.network());
        let mut node = 0usize;
        for depth in 0..prefix.prefix_len() {
            let bit = ((bits >> (31 - depth)) & 1) as usize;
            node = self.nodes[node].children[bit]? as usize;
        }
        self.nodes[node].value.as_ref()
    }

    /// Whether any registered prefix covers `ip`.
    pub fn covers(&self, ip: Ipv4Addr) -> bool {
        self.longest_match(ip).is_some()
    }
}

impl<T> Default for PrefixTrie<T> {
    fn default() -> Self {
        PrefixTrie::new()
    }
}

impl<T> FromIterator<(Ipv4Cidr, T)> for PrefixTrie<T> {
    fn from_iter<I: IntoIterator<Item = (Ipv4Cidr, T)>>(iter: I) -> Self {
        let mut trie = PrefixTrie::new();
        for (p, v) in iter {
            trie.insert(p, v);
        }
        trie
    }
}

impl<T> Extend<(Ipv4Cidr, T)> for PrefixTrie<T> {
    fn extend<I: IntoIterator<Item = (Ipv4Cidr, T)>>(&mut self, iter: I) {
        for (p, v) in iter {
            self.insert(p, v);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::u32_to_ip;
    use proptest::prelude::*;

    fn cidr(s: &str) -> Ipv4Cidr {
        s.parse().unwrap()
    }

    #[test]
    fn empty_trie_matches_nothing() {
        let trie: PrefixTrie<u32> = PrefixTrie::new();
        assert!(trie.is_empty());
        assert_eq!(trie.longest_match(Ipv4Addr::new(1, 2, 3, 4)), None);
        assert!(!trie.covers(Ipv4Addr::new(1, 2, 3, 4)));
    }

    #[test]
    fn longest_prefix_wins() {
        let mut trie = PrefixTrie::new();
        trie.insert(cidr("10.0.0.0/8"), 8);
        trie.insert(cidr("10.20.0.0/16"), 16);
        trie.insert(cidr("10.20.30.0/24"), 24);
        assert_eq!(trie.longest_match(Ipv4Addr::new(10, 20, 30, 40)), Some(&24));
        assert_eq!(trie.longest_match(Ipv4Addr::new(10, 20, 99, 1)), Some(&16));
        assert_eq!(trie.longest_match(Ipv4Addr::new(10, 99, 0, 1)), Some(&8));
        assert_eq!(trie.longest_match(Ipv4Addr::new(11, 0, 0, 1)), None);
        assert_eq!(
            trie.longest_match_entry(Ipv4Addr::new(10, 20, 30, 40)),
            Some((24, &24))
        );
    }

    #[test]
    fn default_route_matches_everything() {
        let mut trie = PrefixTrie::new();
        trie.insert(cidr("0.0.0.0/0"), "default");
        assert_eq!(
            trie.longest_match(Ipv4Addr::new(255, 1, 2, 3)),
            Some(&"default")
        );
        assert_eq!(
            trie.longest_match_entry(Ipv4Addr::new(0, 0, 0, 0)),
            Some((0, &"default"))
        );
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut trie = PrefixTrie::new();
        assert_eq!(trie.insert(cidr("192.0.2.0/24"), 1), None);
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.insert(cidr("192.0.2.0/24"), 2), Some(1));
        assert_eq!(trie.len(), 1);
        assert_eq!(trie.get_exact(cidr("192.0.2.0/24")), Some(&2));
    }

    #[test]
    fn get_exact_distinguishes_lengths() {
        let mut trie = PrefixTrie::new();
        trie.insert(cidr("10.0.0.0/8"), "a");
        assert_eq!(trie.get_exact(cidr("10.0.0.0/8")), Some(&"a"));
        assert_eq!(trie.get_exact(cidr("10.0.0.0/16")), None);
        assert_eq!(trie.get_exact(cidr("10.0.0.0/9")), None);
    }

    #[test]
    fn host_route_matches_single_address() {
        let mut trie = PrefixTrie::new();
        trie.insert(cidr("203.0.113.7/32"), ());
        assert!(trie.covers(Ipv4Addr::new(203, 0, 113, 7)));
        assert!(!trie.covers(Ipv4Addr::new(203, 0, 113, 8)));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut trie: PrefixTrie<i32> = vec![(cidr("10.0.0.0/8"), 1), (cidr("172.16.0.0/12"), 2)]
            .into_iter()
            .collect();
        trie.extend([(cidr("192.168.0.0/16"), 3)]);
        assert_eq!(trie.len(), 3);
        assert_eq!(trie.longest_match(Ipv4Addr::new(172, 20, 1, 1)), Some(&2));
        assert_eq!(trie.longest_match(Ipv4Addr::new(192, 168, 9, 9)), Some(&3));
    }

    /// Reference model: linear scan over (prefix, value) pairs.
    fn linear_longest<T>(entries: &[(Ipv4Cidr, T)], ip: Ipv4Addr) -> Option<&T> {
        entries
            .iter()
            .filter(|(p, _)| p.contains(ip))
            .max_by_key(|(p, _)| p.prefix_len())
            .map(|(_, v)| v)
    }

    proptest! {
        #[test]
        fn prop_trie_equals_linear_scan(
            entries in proptest::collection::vec((any::<u32>(), 0u8..=32, any::<u16>()), 0..40),
            probes in proptest::collection::vec(any::<u32>(), 0..60),
        ) {
            // Deduplicate identical prefixes keeping the last value, to match
            // insert-replaces semantics.
            let mut map = std::collections::HashMap::new();
            for (net, len, val) in &entries {
                let c = Ipv4Cidr::new(u32_to_ip(*net), *len).unwrap();
                map.insert(c, *val);
            }
            let entries: Vec<(Ipv4Cidr, u16)> = map.into_iter().collect();
            let trie: PrefixTrie<u16> = entries.iter().cloned().collect();
            prop_assert_eq!(trie.len(), entries.len());
            for probe in probes {
                let ip = u32_to_ip(probe);
                let expect = linear_longest(&entries, ip).copied();
                prop_assert_eq!(trie.longest_match(ip).copied(), expect);
            }
        }
    }
}
