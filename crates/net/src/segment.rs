//! Year-scale segment container and manifest for the flowtuple store.
//!
//! One file per hour works for the paper's 143-hour window but falls
//! over at telescope scale: a synthetic year is 8,760 files of a few
//! hundred KB each, and every read pays an open + a full copy into a
//! `Vec<u8>`. A **segment** packs many complete hour files (any
//! `IOTFT` version; the compactor writes `IOTFT03`) into one
//! container behind an hour table, and a store-level **manifest** maps
//! each hour to its segment and byte range, so a year of traffic is a
//! few dozen files read zero-copy through [`Mmap`].
//!
//! # Segment layout (`IOTSG01`)
//!
//! ```text
//! magic   7 B   "IOTSG01"
//! flags   1 B   reserved, 0
//! count   4 B   u32 hour entries
//! cksum   8 B   FNV-1a over magic..count + the hour table
//! table   count × (hour u64, len u32)
//! hours   the hour payloads, concatenated in table order
//! ```
//!
//! Hours are strictly ascending and offsets are the prefix sums of the
//! lengths (the same implicit-offset idiom as the v3 block index). Each
//! payload is a complete, self-checksummed hour file, so the container
//! checksum only needs to cover its own header and table.
//!
//! # Manifest layout (`IOTMF01`)
//!
//! ```text
//! magic   7 B   "IOTMF01"
//! flags   1 B   reserved, 0
//! count   4 B   u32 entries
//! cksum   8 B   FNV-1a over magic..count + the entries
//! entries count × (hour u64, segment u32, offset u64, len u32)
//! ```
//!
//! Entries are strictly ascending by hour (binary-searchable). The
//! manifest is advisory routing — reads cross-check it against the
//! segment's own table, so a stale or tampered manifest fails loudly
//! instead of serving the wrong hour.

use crate::mmap::Mmap;
use crate::store::{claimed_hour, Fnv1a, HEADER};
use crate::time::UnixHour;
use crate::NetError;
use bytes::{Buf, BufMut};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};

const MAGIC_SEGMENT: &[u8; 7] = b"IOTSG01";
const MAGIC_MANIFEST: &[u8; 7] = b"IOTMF01";

/// Shared container-header layout: magic (7) + flags (1) + count (4) +
/// checksum (8). The checksum covers everything before it plus the
/// table/entries that follow it.
const CONTAINER_HEADER: usize = 7 + 1 + 4 + 8;
const CONTAINER_HASHED: usize = CONTAINER_HEADER - 8;

/// Segment hour-table entry: hour (8) + payload length (4). Offsets are
/// the prefix sums of the lengths.
const SEGMENT_ENTRY: usize = 8 + 4;

/// Manifest entry: hour (8) + segment id (4) + offset (8) + length (4).
const MANIFEST_ENTRY: usize = 8 + 4 + 8 + 4;

/// Default hours packed per segment: one week. Small enough that a
/// corrupt segment loses a bounded slice of the archive, big enough
/// that a year is ~52 files.
pub const DEFAULT_HOURS_PER_SEGMENT: usize = 168;

/// On-disk file name of segment `id` inside the store's segment
/// directory.
pub fn segment_file_name(id: u32) -> String {
    format!("seg-{id}.seg")
}

/// Encode one segment from `(hour, encoded-hour-file)` pairs. Hours
/// must be strictly ascending and each payload a plausible hour file
/// (correct magic, header claiming the labeled hour).
///
/// # Errors
///
/// Returns [`NetError::Codec`] on an empty input, out-of-order hours,
/// or a payload that is not an hour file for its labeled hour.
pub fn encode_segment<B: AsRef<[u8]>>(hours: &[(UnixHour, B)]) -> Result<Vec<u8>, NetError> {
    let (prefix, payload_len) = segment_prefix(hours)?;
    let mut out = prefix;
    out.reserve(payload_len);
    for (_, bytes) in hours {
        out.extend_from_slice(bytes.as_ref());
    }
    Ok(out)
}

/// Validate `hours` and build the segment's checksummed prefix (header
/// plus hour table); the payloads follow it verbatim. Shared by
/// [`encode_segment`] and the builder's streaming flush — which writes
/// payloads straight to the file instead of materializing the segment —
/// so both produce byte-identical segments. Returns the prefix and the
/// total payload length.
fn segment_prefix<B: AsRef<[u8]>>(hours: &[(UnixHour, B)]) -> Result<(Vec<u8>, usize), NetError> {
    if hours.is_empty() {
        return Err(NetError::Codec(
            "segment must hold at least one hour".to_owned(),
        ));
    }
    let mut table = Vec::with_capacity(hours.len() * SEGMENT_ENTRY);
    let mut payload_len = 0usize;
    let mut prev: Option<UnixHour> = None;
    for (hour, bytes) in hours {
        let bytes = bytes.as_ref();
        if prev.is_some_and(|p| p >= *hour) {
            return Err(NetError::Codec(format!(
                "segment hours must be strictly ascending (saw {hour} after {})",
                prev.expect("checked")
            )));
        }
        prev = Some(*hour);
        let claimed = claimed_hour(bytes)
            .map_err(|e| NetError::Codec(format!("segment payload for {hour}: {e}")))?;
        if claimed != *hour {
            return Err(NetError::Codec(format!(
                "segment payload claims hour {claimed}, labeled {hour}"
            )));
        }
        let len = u32::try_from(bytes.len())
            .map_err(|_| NetError::Codec(format!("hour {hour} payload too large for segment")))?;
        table.put_u64(hour.get());
        table.put_u32(len);
        payload_len += bytes.len();
    }
    let mut out = Vec::with_capacity(CONTAINER_HEADER + table.len());
    out.extend_from_slice(MAGIC_SEGMENT);
    out.put_u8(0);
    out.put_u32(hours.len() as u32);
    let mut hasher = Fnv1a::new();
    hasher.update(&out[..CONTAINER_HASHED]);
    hasher.update(&table);
    out.put_u64(hasher.finish());
    out.extend_from_slice(&table);
    Ok((out, payload_len))
}

/// An open segment: the mapped file plus its validated hour table.
#[derive(Debug)]
pub struct Segment {
    map: Mmap,
    /// `(hour, offset, len)`, ascending by hour.
    table: Vec<(UnixHour, usize, usize)>,
}

impl Segment {
    /// Map and validate a segment file.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Io`] if the file cannot be opened and
    /// [`NetError::Codec`] if the header, checksum, or hour table is
    /// malformed.
    pub fn open(path: &Path) -> Result<Segment, NetError> {
        let map = Mmap::open(path)?;
        let table = Segment::parse(map.bytes())?;
        Ok(Segment { map, table })
    }

    /// Validate header + hour table and compute payload offsets.
    fn parse(bytes: &[u8]) -> Result<Vec<(UnixHour, usize, usize)>, NetError> {
        if bytes.len() < CONTAINER_HEADER {
            return Err(NetError::Codec("segment shorter than header".to_owned()));
        }
        if &bytes[..7] != MAGIC_SEGMENT {
            return Err(NetError::Codec("bad magic (not a segment file)".to_owned()));
        }
        let mut hdr = &bytes[7..CONTAINER_HEADER];
        let _flags = hdr.get_u8();
        let count = hdr.get_u32() as usize;
        let checksum = hdr.get_u64();
        let table_end = count
            .checked_mul(SEGMENT_ENTRY)
            .and_then(|n| n.checked_add(CONTAINER_HEADER))
            .filter(|end| *end <= bytes.len())
            .ok_or_else(|| {
                NetError::Codec(format!(
                    "implausible hour count {count} for {}-byte segment",
                    bytes.len()
                ))
            })?;
        let mut hasher = Fnv1a::new();
        hasher.update(&bytes[..CONTAINER_HASHED]);
        hasher.update(&bytes[CONTAINER_HEADER..table_end]);
        if hasher.finish() != checksum {
            return Err(NetError::Codec(
                "checksum mismatch (corrupt segment header or hour table)".to_owned(),
            ));
        }
        let mut table = Vec::with_capacity(count);
        let mut entries = &bytes[CONTAINER_HEADER..table_end];
        let mut offset = table_end;
        let mut prev: Option<UnixHour> = None;
        for i in 0..count {
            let hour = UnixHour::new(entries.get_u64());
            let len = entries.get_u32() as usize;
            if prev.is_some_and(|p| p >= hour) {
                return Err(NetError::Codec(format!(
                    "segment hour table not strictly ascending at entry {i}"
                )));
            }
            prev = Some(hour);
            if len < HEADER || offset + len > bytes.len() {
                return Err(NetError::Codec(format!(
                    "segment entry {i} ({hour}): implausible payload length {len}"
                )));
            }
            table.push((hour, offset, len));
            offset += len;
        }
        if offset != bytes.len() {
            return Err(NetError::Codec(format!(
                "{} trailing bytes after {count} segment hours",
                bytes.len() - offset
            )));
        }
        Ok(table)
    }

    /// The whole mapped file.
    pub fn bytes(&self) -> &[u8] {
        self.map.bytes()
    }

    /// Whether the file is really memory-mapped (false on the owned
    /// fallback — see [`Mmap::is_mapped`]).
    pub fn is_mapped(&self) -> bool {
        self.map.is_mapped()
    }

    /// Hours in this segment, ascending.
    pub fn hours(&self) -> impl Iterator<Item = UnixHour> + '_ {
        self.table.iter().map(|(h, _, _)| *h)
    }

    /// Number of hours in this segment.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// Whether the segment holds no hours (an encoder never writes one,
    /// but the reader tolerates it).
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// The byte range of `hour`'s payload, if present.
    pub fn locate(&self, hour: UnixHour) -> Option<(usize, usize)> {
        self.table
            .binary_search_by_key(&hour, |(h, _, _)| *h)
            .ok()
            .map(|i| (self.table[i].1, self.table[i].2))
    }

    /// Borrow `hour`'s complete hour-file payload, zero-copy.
    pub fn hour_bytes(&self, hour: UnixHour) -> Option<&[u8]> {
        self.locate(hour)
            .map(|(offset, len)| &self.bytes()[offset..offset + len])
    }
}

/// One manifest row: where an hour lives.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ManifestEntry {
    /// The hour this entry routes.
    pub hour: UnixHour,
    /// Segment id (file `seg-{id}.seg`).
    pub segment: u32,
    /// Byte offset of the hour payload inside the segment file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u32,
}

/// The store-level hour → segment index. Entries are kept sorted by
/// hour; lookups are binary searches.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    entries: Vec<ManifestEntry>,
}

impl Manifest {
    /// Build a manifest from `entries`; sorts by hour.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] if two entries route the same hour.
    pub fn from_entries(mut entries: Vec<ManifestEntry>) -> Result<Manifest, NetError> {
        entries.sort_by_key(|e| e.hour);
        for pair in entries.windows(2) {
            if pair[0].hour == pair[1].hour {
                return Err(NetError::Codec(format!(
                    "duplicate manifest entry for {}",
                    pair[0].hour
                )));
            }
        }
        Ok(Manifest { entries })
    }

    /// All entries, ascending by hour.
    pub fn entries(&self) -> &[ManifestEntry] {
        &self.entries
    }

    /// Number of routed hours.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the manifest routes no hours.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Where `hour` lives, if routed.
    pub fn lookup(&self, hour: UnixHour) -> Option<&ManifestEntry> {
        self.entries
            .binary_search_by_key(&hour, |e| e.hour)
            .ok()
            .map(|i| &self.entries[i])
    }

    /// Serialize to the `IOTMF01` byte layout.
    pub fn encode(&self) -> Vec<u8> {
        let mut body = Vec::with_capacity(self.entries.len() * MANIFEST_ENTRY);
        for e in &self.entries {
            body.put_u64(e.hour.get());
            body.put_u32(e.segment);
            body.put_u64(e.offset);
            body.put_u32(e.len);
        }
        let mut out = Vec::with_capacity(CONTAINER_HEADER + body.len());
        out.extend_from_slice(MAGIC_MANIFEST);
        out.put_u8(0);
        out.put_u32(self.entries.len() as u32);
        let mut hasher = Fnv1a::new();
        hasher.update(&out[..CONTAINER_HASHED]);
        hasher.update(&body);
        out.put_u64(hasher.finish());
        out.extend_from_slice(&body);
        out
    }

    /// Parse the `IOTMF01` byte layout.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] for bad magic, checksum mismatch,
    /// truncation, trailing bytes, or out-of-order entries.
    pub fn decode(bytes: &[u8]) -> Result<Manifest, NetError> {
        if bytes.len() < CONTAINER_HEADER {
            return Err(NetError::Codec("manifest shorter than header".to_owned()));
        }
        if &bytes[..7] != MAGIC_MANIFEST {
            return Err(NetError::Codec(
                "bad magic (not a manifest file)".to_owned(),
            ));
        }
        let mut hdr = &bytes[7..CONTAINER_HEADER];
        let _flags = hdr.get_u8();
        let count = hdr.get_u32() as usize;
        let checksum = hdr.get_u64();
        let end = count
            .checked_mul(MANIFEST_ENTRY)
            .and_then(|n| n.checked_add(CONTAINER_HEADER))
            .filter(|end| *end == bytes.len())
            .ok_or_else(|| {
                NetError::Codec(format!(
                    "manifest length {} does not fit {count} entries",
                    bytes.len()
                ))
            })?;
        let mut hasher = Fnv1a::new();
        hasher.update(&bytes[..CONTAINER_HASHED]);
        hasher.update(&bytes[CONTAINER_HEADER..end]);
        if hasher.finish() != checksum {
            return Err(NetError::Codec(
                "checksum mismatch (corrupt manifest)".to_owned(),
            ));
        }
        let mut entries = Vec::with_capacity(count);
        let mut body = &bytes[CONTAINER_HEADER..end];
        let mut prev: Option<UnixHour> = None;
        for i in 0..count {
            let hour = UnixHour::new(body.get_u64());
            let segment = body.get_u32();
            let offset = body.get_u64();
            let len = body.get_u32();
            if prev.is_some_and(|p| p >= hour) {
                return Err(NetError::Codec(format!(
                    "manifest not strictly ascending at entry {i}"
                )));
            }
            prev = Some(hour);
            entries.push(ManifestEntry {
                hour,
                segment,
                offset,
                len,
            });
        }
        Ok(Manifest { entries })
    }

    /// Read and parse a manifest file.
    ///
    /// # Errors
    ///
    /// [`NetError::Io`] if unreadable, [`NetError::Codec`] if malformed.
    pub fn load(path: &Path) -> Result<Manifest, NetError> {
        Manifest::decode(&fs::read(path)?)
    }

    /// Write the manifest atomically (`.tmp` sibling + rename), the
    /// same durability discipline as hour files.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures; the temporary file is removed on error.
    pub fn write(&self, path: &Path) -> Result<(), NetError> {
        write_atomic(path, &self.encode())
    }
}

/// Write `bytes` to `path` via a `.tmp` sibling and an atomic rename.
fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), NetError> {
    write_atomic_with(path, |f| f.write_all(bytes))
}

/// Atomic-rename write with a caller-streamed body: `fill` writes into
/// the `.tmp` sibling (so large segments never need to be materialized
/// in memory), then the file is synced and renamed into place. The
/// temporary file is removed on any failure.
fn write_atomic_with(
    path: &Path,
    fill: impl FnOnce(&mut fs::File) -> std::io::Result<()>,
) -> Result<(), NetError> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(".tmp");
    let tmp = PathBuf::from(tmp);
    let write = (|| -> std::io::Result<()> {
        let mut f = fs::File::create(&tmp)?;
        fill(&mut f)?;
        f.sync_all()?;
        Ok(())
    })();
    if let Err(e) = write {
        let _ = fs::remove_file(&tmp);
        return Err(NetError::Io(e));
    }
    if let Err(e) = fs::rename(&tmp, path) {
        let _ = fs::remove_file(&tmp);
        return Err(NetError::Io(e));
    }
    Ok(())
}

/// What a [`SegmentStoreBuilder::finish`] produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentBuildReport {
    /// The manifest now on disk (old entries merged, new hours win).
    pub manifest: Manifest,
    /// Segments written by this builder.
    pub segments_written: usize,
    /// Total segment bytes written by this builder.
    pub bytes_written: u64,
}

/// Incremental writer for a store's segment directory: feed encoded
/// hours in ascending order, and it emits `seg-{id}.seg` files of
/// `hours_per_segment` hours each plus the merged `manifest.idx` — the
/// shared machinery behind `FlowStore::compact_to_segments` and the
/// perf bin's synthetic year.
#[derive(Debug)]
pub struct SegmentStoreBuilder {
    dir: PathBuf,
    hours_per_segment: usize,
    pending: Vec<(UnixHour, Vec<u8>)>,
    entries: Vec<ManifestEntry>,
    next_id: u32,
    last_hour: Option<UnixHour>,
    segments_written: usize,
    bytes_written: u64,
}

impl SegmentStoreBuilder {
    /// Start building into `segments_dir` (created if missing), merging
    /// on top of `existing` manifest entries. New segment ids continue
    /// after the highest existing id.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] for a zero `hours_per_segment`,
    /// [`NetError::Io`] if the directory cannot be created.
    pub fn new(
        segments_dir: &Path,
        hours_per_segment: usize,
        existing: Manifest,
    ) -> Result<SegmentStoreBuilder, NetError> {
        if hours_per_segment == 0 {
            return Err(NetError::Codec(
                "hours_per_segment must be at least 1".to_owned(),
            ));
        }
        fs::create_dir_all(segments_dir)?;
        let next_id = existing
            .entries()
            .iter()
            .map(|e| e.segment + 1)
            .max()
            .unwrap_or(0);
        Ok(SegmentStoreBuilder {
            dir: segments_dir.to_path_buf(),
            hours_per_segment,
            pending: Vec::new(),
            entries: existing.entries.clone(),
            next_id,
            last_hour: None,
            segments_written: 0,
            bytes_written: 0,
        })
    }

    /// Queue one encoded hour file; flushes a segment whenever
    /// `hours_per_segment` hours are pending.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Codec`] if `hour` is not strictly after the
    /// previously pushed hour (or if the payload fails the segment
    /// encoder's validation when a flush triggers), [`NetError::Io`] on
    /// write failures.
    pub fn push(&mut self, hour: UnixHour, bytes: Vec<u8>) -> Result<(), NetError> {
        if self.last_hour.is_some_and(|p| p >= hour) {
            return Err(NetError::Codec(format!(
                "segment builder hours must ascend (saw {hour} after {})",
                self.last_hour.expect("checked")
            )));
        }
        self.last_hour = Some(hour);
        self.pending.push((hour, bytes));
        if self.pending.len() >= self.hours_per_segment {
            self.flush()?;
        }
        Ok(())
    }

    fn flush(&mut self) -> Result<(), NetError> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let id = self.next_id;
        self.next_id += 1;
        // Stream the payloads straight into the tmp file: only the
        // checksummed prefix is materialized, so flushing a segment
        // costs O(table), not O(segment) — byte-identical to
        // `encode_segment` (the checksum covers header + table only).
        let (prefix, payload_len) = segment_prefix(&self.pending)?;
        let pending = &self.pending;
        write_atomic_with(&self.dir.join(segment_file_name(id)), |f| {
            f.write_all(&prefix)?;
            for (_, bytes) in pending {
                f.write_all(bytes)?;
            }
            Ok(())
        })?;
        let mut offset = prefix.len();
        for (hour, bytes) in self.pending.drain(..) {
            self.entries.push(ManifestEntry {
                hour,
                segment: id,
                offset: offset as u64,
                len: bytes.len() as u32,
            });
            offset += bytes.len();
        }
        self.segments_written += 1;
        self.bytes_written += (prefix.len() + payload_len) as u64;
        Ok(())
    }

    /// Flush the remainder and write the merged manifest. Where an hour
    /// appears both in the pre-existing manifest and in this build, the
    /// new entry wins (re-compaction refreshes the routing).
    ///
    /// # Errors
    ///
    /// As [`SegmentStoreBuilder::push`], plus manifest write failures.
    pub fn finish(mut self) -> Result<SegmentBuildReport, NetError> {
        self.flush()?;
        // Later entries override earlier ones per hour: `entries` holds
        // the old manifest first, then this build's pushes in order.
        let mut merged: std::collections::BTreeMap<u64, ManifestEntry> =
            std::collections::BTreeMap::new();
        for e in self.entries.drain(..) {
            merged.insert(e.hour.get(), e);
        }
        let manifest = Manifest {
            entries: merged.into_values().collect(),
        };
        manifest.write(&self.dir.join(MANIFEST_FILE))?;
        Ok(SegmentBuildReport {
            manifest,
            segments_written: self.segments_written,
            bytes_written: self.bytes_written,
        })
    }
}

/// File name of the manifest inside a store's segment directory.
pub const MANIFEST_FILE: &str = "manifest.idx";

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flowtuple::FlowTuple;
    use crate::protocol::TcpFlags;
    use crate::store::{encode_hour, StoreOptions};
    use std::net::Ipv4Addr;

    fn hour_file(hour: u64, n: u32) -> (UnixHour, Vec<u8>) {
        let flows: Vec<FlowTuple> = (0..n)
            .map(|i| {
                FlowTuple::tcp(
                    Ipv4Addr::from(0x0a00_0100 + i),
                    Ipv4Addr::from(0x2c00_0000 + i * 7),
                    40_000 + (i % 1000) as u16,
                    23,
                    TcpFlags::SYN,
                )
            })
            .collect();
        let h = UnixHour::new(hour);
        (h, encode_hour(h, &flows, StoreOptions::default()))
    }

    fn sample_segment() -> (Vec<(UnixHour, Vec<u8>)>, Vec<u8>) {
        let hours = vec![hour_file(100, 10), hour_file(101, 0), hour_file(104, 25)];
        let bytes = encode_segment(&hours).unwrap();
        (hours, bytes)
    }

    #[test]
    fn segment_roundtrips_hour_payloads() {
        let (hours, bytes) = sample_segment();
        let dir = std::env::temp_dir().join(format!("iotscope-seg-rt-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join(segment_file_name(0));
        fs::write(&path, &bytes).unwrap();
        let seg = Segment::open(&path).unwrap();
        assert_eq!(seg.len(), 3);
        assert_eq!(
            seg.hours().collect::<Vec<_>>(),
            hours.iter().map(|(h, _)| *h).collect::<Vec<_>>()
        );
        for (h, payload) in &hours {
            assert_eq!(seg.hour_bytes(*h).unwrap(), &payload[..]);
        }
        assert!(seg.hour_bytes(UnixHour::new(102)).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn segment_rejects_disorder_and_mislabels() {
        let (a, ab) = hour_file(10, 3);
        let (b, bb) = hour_file(9, 3);
        let err = encode_segment(&[(a, ab.clone()), (b, bb)]).unwrap_err();
        assert!(format!("{err}").contains("ascending"), "{err}");
        let err = encode_segment(&[(UnixHour::new(11), ab)]).unwrap_err();
        assert!(format!("{err}").contains("claims hour"), "{err}");
        let err = encode_segment::<Vec<u8>>(&[]).unwrap_err();
        assert!(format!("{err}").contains("at least one hour"), "{err}");
    }

    #[test]
    fn segment_detects_table_corruption_and_truncation() {
        let (_, bytes) = sample_segment();
        let dir = std::env::temp_dir().join(format!("iotscope-seg-bad-{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        // Flip a byte inside the hour table.
        let mut corrupt = bytes.clone();
        corrupt[CONTAINER_HEADER + 2] ^= 0xff;
        let path = dir.join("corrupt.seg");
        fs::write(&path, &corrupt).unwrap();
        let err = Segment::open(&path).unwrap_err();
        assert!(err.is_checksum_mismatch(), "{err}");
        // Truncate into the final hour payload.
        let path = dir.join("truncated.seg");
        fs::write(&path, &bytes[..bytes.len() - 5]).unwrap();
        let err = Segment::open(&path).unwrap_err();
        assert!(
            format!("{err}").contains("implausible payload length"),
            "{err}"
        );
        // Trailing garbage.
        let mut trailing = bytes.clone();
        trailing.extend_from_slice(b"zzz");
        let path = dir.join("trailing.seg");
        fs::write(&path, &trailing).unwrap();
        let err = Segment::open(&path).unwrap_err();
        assert!(format!("{err}").contains("trailing bytes"), "{err}");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn manifest_roundtrips_and_rejects_corruption() {
        let manifest = Manifest::from_entries(vec![
            ManifestEntry {
                hour: UnixHour::new(7),
                segment: 1,
                offset: 64,
                len: 100,
            },
            ManifestEntry {
                hour: UnixHour::new(3),
                segment: 0,
                offset: 32,
                len: 50,
            },
        ])
        .unwrap();
        let bytes = manifest.encode();
        let back = Manifest::decode(&bytes).unwrap();
        assert_eq!(back, manifest);
        assert_eq!(back.lookup(UnixHour::new(3)).unwrap().segment, 0);
        assert_eq!(back.lookup(UnixHour::new(7)).unwrap().offset, 64);
        assert!(back.lookup(UnixHour::new(5)).is_none());

        let mut corrupt = bytes.clone();
        *corrupt.last_mut().unwrap() ^= 0x55;
        assert!(Manifest::decode(&corrupt)
            .unwrap_err()
            .is_checksum_mismatch());
        assert!(Manifest::decode(&bytes[..bytes.len() - 1]).is_err());
        let dup = Manifest::from_entries(vec![
            ManifestEntry {
                hour: UnixHour::new(3),
                segment: 0,
                offset: 0,
                len: 1,
            },
            ManifestEntry {
                hour: UnixHour::new(3),
                segment: 1,
                offset: 0,
                len: 1,
            },
        ]);
        assert!(dup.is_err());
    }

    #[test]
    fn builder_splits_segments_and_merges_manifests() {
        let dir = std::env::temp_dir().join(format!("iotscope-seg-bld-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let mut builder = SegmentStoreBuilder::new(&dir, 2, Manifest::default()).unwrap();
        for h in [200u64, 201, 202, 203, 204] {
            let (hour, bytes) = hour_file(h, 4);
            builder.push(hour, bytes).unwrap();
        }
        let report = builder.finish().unwrap();
        assert_eq!(report.segments_written, 3, "5 hours at 2/segment");
        assert_eq!(report.manifest.len(), 5);
        // Reads resolve through the written files.
        for e in report.manifest.entries() {
            let seg = Segment::open(&dir.join(segment_file_name(e.segment))).unwrap();
            assert_eq!(
                seg.locate(e.hour),
                Some((e.offset as usize, e.len as usize)),
                "manifest and segment table agree for {}",
                e.hour
            );
        }
        // A second build on top re-routes an overlapping hour.
        let existing = Manifest::load(&dir.join(MANIFEST_FILE)).unwrap();
        let mut builder = SegmentStoreBuilder::new(&dir, 2, existing).unwrap();
        let (hour, bytes) = hour_file(204, 9);
        builder.push(hour, bytes).unwrap();
        let report = builder.finish().unwrap();
        assert_eq!(
            report.manifest.len(),
            5,
            "hour 204 replaced, not duplicated"
        );
        let e = report.manifest.lookup(UnixHour::new(204)).unwrap();
        assert_eq!(e.segment, 3, "ids continue past the existing maximum");
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn builder_streamed_flush_matches_encode_segment() {
        let dir = std::env::temp_dir().join(format!("iotscope-seg-stream-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let hours: Vec<(UnixHour, Vec<u8>)> = [300u64, 301, 302]
            .iter()
            .map(|&h| hour_file(h, 50))
            .collect();
        let mut builder = SegmentStoreBuilder::new(&dir, 3, Manifest::default()).unwrap();
        for (hour, bytes) in &hours {
            builder.push(*hour, bytes.clone()).unwrap();
        }
        let report = builder.finish().unwrap();
        assert_eq!(report.segments_written, 1);
        let written = fs::read(dir.join(segment_file_name(0))).unwrap();
        let reference = encode_segment(&hours).unwrap();
        assert_eq!(
            written, reference,
            "streamed flush drifted from encode_segment"
        );
        assert_eq!(report.bytes_written, reference.len() as u64);
        let _ = fs::remove_dir_all(&dir);
    }
}
