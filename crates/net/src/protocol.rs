//! Transport protocols, TCP flags and ICMP taxonomy.
//!
//! The paper classifies darknet traffic by transport protocol (Fig 4) and
//! uses TCP-flag / ICMP-type rules to separate *backscatter* (replies from
//! DoS victims that received floods with spoofed sources inside the
//! telescope) from *scanning* traffic (§IV-B, §IV-C):
//!
//! * backscatter TCP: `SYN-ACK` or `RST`;
//! * backscatter ICMP: echo reply, destination unreachable, source quench,
//!   redirect, time exceeded, parameter problem, timestamp reply,
//!   information reply, address-mask reply;
//! * scanning TCP: `SYN` (without `ACK`);
//! * scanning ICMP: echo request.

use serde::{Deserialize, Serialize};
use std::fmt;

/// IANA protocol numbers for the transports seen at the telescope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum TransportProtocol {
    /// Internet Control Message Protocol (protocol number 1).
    Icmp = 1,
    /// Transmission Control Protocol (protocol number 6).
    Tcp = 6,
    /// User Datagram Protocol (protocol number 17).
    Udp = 17,
}

impl TransportProtocol {
    /// The IANA protocol number.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Parse from an IANA protocol number.
    ///
    /// Returns `None` for protocols the telescope pipeline does not model.
    pub fn from_number(n: u8) -> Option<Self> {
        match n {
            1 => Some(TransportProtocol::Icmp),
            6 => Some(TransportProtocol::Tcp),
            17 => Some(TransportProtocol::Udp),
            _ => None,
        }
    }

    /// All modeled transports, in protocol-number order.
    pub const ALL: [TransportProtocol; 3] = [
        TransportProtocol::Icmp,
        TransportProtocol::Tcp,
        TransportProtocol::Udp,
    ];
}

impl fmt::Display for TransportProtocol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TransportProtocol::Icmp => "ICMP",
            TransportProtocol::Tcp => "TCP",
            TransportProtocol::Udp => "UDP",
        };
        f.write_str(s)
    }
}

/// TCP header flags, stored as the raw flag byte.
///
/// # Example
///
/// ```
/// use iotscope_net::protocol::TcpFlags;
///
/// let synack = TcpFlags::SYN | TcpFlags::ACK;
/// assert!(synack.contains(TcpFlags::SYN));
/// assert!(synack.is_syn_ack());
/// assert!(!TcpFlags::SYN.is_syn_ack());
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct TcpFlags(u8);

impl TcpFlags {
    /// No flags set.
    pub const EMPTY: TcpFlags = TcpFlags(0);
    /// FIN — no more data from sender.
    pub const FIN: TcpFlags = TcpFlags(0x01);
    /// SYN — synchronize sequence numbers.
    pub const SYN: TcpFlags = TcpFlags(0x02);
    /// RST — reset the connection.
    pub const RST: TcpFlags = TcpFlags(0x04);
    /// PSH — push function.
    pub const PSH: TcpFlags = TcpFlags(0x08);
    /// ACK — acknowledgment field significant.
    pub const ACK: TcpFlags = TcpFlags(0x10);
    /// URG — urgent pointer field significant.
    pub const URG: TcpFlags = TcpFlags(0x20);

    /// Construct from the raw flag byte of a TCP header.
    pub fn from_bits(bits: u8) -> TcpFlags {
        TcpFlags(bits)
    }

    /// The raw flag byte.
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether every flag in `other` is set in `self`.
    #[inline]
    pub fn contains(self, other: TcpFlags) -> bool {
        self.0 & other.0 == other.0
    }

    /// `SYN` set and `ACK` clear: the signature of a half-open connection
    /// attempt, i.e. scanning traffic at a darknet.
    #[inline]
    pub fn is_bare_syn(self) -> bool {
        self.contains(TcpFlags::SYN) && !self.contains(TcpFlags::ACK)
    }

    /// Both `SYN` and `ACK` set: a connection-accept reply. At a darknet
    /// this is backscatter from a SYN-flood victim.
    #[inline]
    pub fn is_syn_ack(self) -> bool {
        self.contains(TcpFlags::SYN) && self.contains(TcpFlags::ACK)
    }

    /// `RST` set: a reset, also backscatter when arriving at dark space.
    #[inline]
    pub fn is_rst(self) -> bool {
        self.contains(TcpFlags::RST)
    }

    /// TCP backscatter per the paper: `SYN-ACK` or `RST` replies.
    #[inline]
    pub fn is_backscatter(self) -> bool {
        self.is_syn_ack() || self.is_rst()
    }
}

impl std::ops::BitOr for TcpFlags {
    type Output = TcpFlags;
    fn bitor(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 | rhs.0)
    }
}

impl std::ops::BitOrAssign for TcpFlags {
    fn bitor_assign(&mut self, rhs: TcpFlags) {
        self.0 |= rhs.0;
    }
}

impl std::ops::BitAnd for TcpFlags {
    type Output = TcpFlags;
    fn bitand(self, rhs: TcpFlags) -> TcpFlags {
        TcpFlags(self.0 & rhs.0)
    }
}

impl fmt::Display for TcpFlags {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 == 0 {
            return f.write_str("-");
        }
        let mut first = true;
        for (flag, name) in [
            (TcpFlags::FIN, "FIN"),
            (TcpFlags::SYN, "SYN"),
            (TcpFlags::RST, "RST"),
            (TcpFlags::PSH, "PSH"),
            (TcpFlags::ACK, "ACK"),
            (TcpFlags::URG, "URG"),
        ] {
            if self.contains(flag) {
                if !first {
                    f.write_str("|")?;
                }
                f.write_str(name)?;
                first = false;
            }
        }
        Ok(())
    }
}

/// ICMP message types relevant to darknet analysis.
///
/// The `is_backscatter` / `is_scan` split follows the paper's §IV-B list of
/// reply types and the observation that scanning ICMP is echo-request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum IcmpType {
    /// Type 0 — reply to a ping; backscatter when a victim is ping-flooded
    /// with spoofed sources.
    EchoReply = 0,
    /// Type 3 — destination unreachable.
    DestinationUnreachable = 3,
    /// Type 4 — source quench (deprecated congestion signal).
    SourceQuench = 4,
    /// Type 5 — redirect.
    Redirect = 5,
    /// Type 8 — echo request; the canonical remote network scan (ping).
    EchoRequest = 8,
    /// Type 11 — time exceeded.
    TimeExceeded = 11,
    /// Type 12 — parameter problem.
    ParameterProblem = 12,
    /// Type 13 — timestamp request.
    TimestampRequest = 13,
    /// Type 14 — timestamp reply.
    TimestampReply = 14,
    /// Type 15 — information request (historic).
    InformationRequest = 15,
    /// Type 16 — information reply (historic).
    InformationReply = 16,
    /// Type 17 — address mask request.
    AddressMaskRequest = 17,
    /// Type 18 — address mask reply.
    AddressMaskReply = 18,
}

impl IcmpType {
    /// The on-wire ICMP type number.
    pub fn number(self) -> u8 {
        self as u8
    }

    /// Parse from an on-wire type number; `None` for unmodeled types.
    pub fn from_number(n: u8) -> Option<Self> {
        use IcmpType::*;
        Some(match n {
            0 => EchoReply,
            3 => DestinationUnreachable,
            4 => SourceQuench,
            5 => Redirect,
            8 => EchoRequest,
            11 => TimeExceeded,
            12 => ParameterProblem,
            13 => TimestampRequest,
            14 => TimestampReply,
            15 => InformationRequest,
            16 => InformationReply,
            17 => AddressMaskRequest,
            18 => AddressMaskReply,
            _ => return None,
        })
    }

    /// The nine reply types the paper treats as DoS backscatter (§IV-B).
    pub fn is_backscatter(self) -> bool {
        use IcmpType::*;
        matches!(
            self,
            EchoReply
                | DestinationUnreachable
                | SourceQuench
                | Redirect
                | TimeExceeded
                | ParameterProblem
                | TimestampReply
                | InformationReply
                | AddressMaskReply
        )
    }

    /// Request types that indicate active scanning (echo request and the
    /// other solicitation types).
    pub fn is_scan(self) -> bool {
        !self.is_backscatter()
    }
}

impl fmt::Display for IcmpType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use IcmpType::*;
        let s = match self {
            EchoReply => "echo-reply",
            DestinationUnreachable => "destination-unreachable",
            SourceQuench => "source-quench",
            Redirect => "redirect",
            EchoRequest => "echo-request",
            TimeExceeded => "time-exceeded",
            ParameterProblem => "parameter-problem",
            TimestampRequest => "timestamp-request",
            TimestampReply => "timestamp-reply",
            InformationRequest => "information-request",
            InformationReply => "information-reply",
            AddressMaskRequest => "address-mask-request",
            AddressMaskReply => "address-mask-reply",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transport_number_roundtrip() {
        for p in TransportProtocol::ALL {
            assert_eq!(TransportProtocol::from_number(p.number()), Some(p));
        }
        assert_eq!(TransportProtocol::from_number(47), None);
    }

    #[test]
    fn transport_display() {
        assert_eq!(TransportProtocol::Tcp.to_string(), "TCP");
        assert_eq!(TransportProtocol::Udp.to_string(), "UDP");
        assert_eq!(TransportProtocol::Icmp.to_string(), "ICMP");
    }

    #[test]
    fn tcp_flag_algebra() {
        let f = TcpFlags::SYN | TcpFlags::ACK | TcpFlags::PSH;
        assert!(f.contains(TcpFlags::SYN));
        assert!(f.contains(TcpFlags::SYN | TcpFlags::ACK));
        assert!(!f.contains(TcpFlags::RST));
        assert_eq!((f & TcpFlags::ACK).bits(), TcpFlags::ACK.bits());
        let mut g = TcpFlags::EMPTY;
        g |= TcpFlags::RST;
        assert!(g.is_rst());
    }

    #[test]
    fn bare_syn_is_scan_not_backscatter() {
        assert!(TcpFlags::SYN.is_bare_syn());
        assert!(!TcpFlags::SYN.is_backscatter());
        assert!(!(TcpFlags::SYN | TcpFlags::ACK).is_bare_syn());
    }

    #[test]
    fn synack_and_rst_are_backscatter() {
        assert!((TcpFlags::SYN | TcpFlags::ACK).is_backscatter());
        assert!(TcpFlags::RST.is_backscatter());
        assert!((TcpFlags::RST | TcpFlags::ACK).is_backscatter());
        assert!(!TcpFlags::ACK.is_backscatter());
        assert!(!TcpFlags::FIN.is_backscatter());
    }

    #[test]
    fn tcp_flags_display() {
        assert_eq!((TcpFlags::SYN | TcpFlags::ACK).to_string(), "SYN|ACK");
        assert_eq!(TcpFlags::EMPTY.to_string(), "-");
        assert_eq!(TcpFlags::RST.to_string(), "RST");
    }

    #[test]
    fn icmp_number_roundtrip_all_modeled() {
        for n in 0u8..=255 {
            if let Some(t) = IcmpType::from_number(n) {
                assert_eq!(t.number(), n);
            }
        }
        assert_eq!(IcmpType::from_number(8), Some(IcmpType::EchoRequest));
        assert_eq!(IcmpType::from_number(200), None);
    }

    #[test]
    fn icmp_backscatter_set_matches_paper_list() {
        use IcmpType::*;
        let backscatter = [
            EchoReply,
            DestinationUnreachable,
            SourceQuench,
            Redirect,
            TimeExceeded,
            ParameterProblem,
            TimestampReply,
            InformationReply,
            AddressMaskReply,
        ];
        for t in backscatter {
            assert!(t.is_backscatter(), "{t} should be backscatter");
            assert!(!t.is_scan());
        }
        for t in [
            EchoRequest,
            TimestampRequest,
            InformationRequest,
            AddressMaskRequest,
        ] {
            assert!(t.is_scan(), "{t} should be scan");
        }
    }

    #[test]
    fn icmp_backscatter_and_scan_partition() {
        for n in 0u8..=255 {
            if let Some(t) = IcmpType::from_number(n) {
                assert!(t.is_backscatter() ^ t.is_scan());
            }
        }
    }
}
