//! Hour-granularity time intervals and the paper's analysis window.
//!
//! The UCSD telescope stores one flowtuple file per hour; the paper analyzes
//! **143 hourly intervals** spanning six days (April 12–17, 2017) after
//! dropping the incomplete April 18 data (only 15 of 24 hours were
//! available). Figures index intervals 1..=143.

use crate::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;

/// Seconds per hour.
pub const SECS_PER_HOUR: u64 = 3600;
/// Hours per day.
pub const HOURS_PER_DAY: u32 = 24;

/// An hour counted from the Unix epoch (UTC).
///
/// # Example
///
/// ```
/// use iotscope_net::time::UnixHour;
/// let h = UnixHour::from_unix_secs(1_491_955_200); // 2017-04-12T00:00:00Z
/// assert_eq!(h.as_unix_secs(), 1_491_955_200);
/// assert_eq!(h.next(), UnixHour::new(h.get() + 1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct UnixHour(u64);

impl UnixHour {
    /// Construct from an hour count since the Unix epoch.
    pub fn new(hours: u64) -> Self {
        UnixHour(hours)
    }

    /// Construct from a Unix timestamp in seconds (truncating to the hour).
    pub fn from_unix_secs(secs: u64) -> Self {
        UnixHour(secs / SECS_PER_HOUR)
    }

    /// The raw hour count.
    pub fn get(self) -> u64 {
        self.0
    }

    /// The timestamp of the start of this hour, in Unix seconds.
    pub fn as_unix_secs(self) -> u64 {
        self.0 * SECS_PER_HOUR
    }

    /// The following hour.
    pub fn next(self) -> UnixHour {
        UnixHour(self.0 + 1)
    }

    /// Add `n` hours.
    pub fn plus(self, n: u64) -> UnixHour {
        UnixHour(self.0 + n)
    }

    /// The proleptic-Gregorian civil date and hour (UTC):
    /// `(year, month, day, hour)`. Uses Hinnant's days-from-civil
    /// inversion, valid for the full representable range.
    pub fn civil(self) -> (i64, u32, u32, u32) {
        let days = (self.0 / 24) as i64;
        let hour = (self.0 % 24) as u32;
        // civil_from_days (days since 1970-01-01).
        let z = days + 719_468;
        let era = z.div_euclid(146_097);
        let doe = z.rem_euclid(146_097); // day of era [0, 146096]
        let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146_096) / 365;
        let y = yoe + era * 400;
        let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
        let mp = (5 * doy + 2) / 153;
        let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
        let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
        let year = if m <= 2 { y + 1 } else { y };
        (year, m, d, hour)
    }

    /// A human-readable UTC label, e.g. `"2017-04-13 05:00Z"`.
    pub fn label(self) -> String {
        let (y, m, d, h) = self.civil();
        format!("{y:04}-{m:02}-{d:02} {h:02}:00Z")
    }
}

impl fmt::Display for UnixHour {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "h{}", self.0)
    }
}

/// A contiguous window of hourly intervals, the unit of an analysis run.
///
/// Interval indices used throughout the workspace (and in the paper's
/// figures) are **1-based**: interval 1 is the window's first hour.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), iotscope_net::NetError> {
/// use iotscope_net::time::AnalysisWindow;
///
/// let w = AnalysisWindow::paper();
/// assert_eq!(w.num_hours(), 143);
/// assert_eq!(w.num_days(), 6);
/// assert_eq!(w.day_of_interval(1)?, 0);   // April 12
/// assert_eq!(w.day_of_interval(143)?, 5); // April 17
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AnalysisWindow {
    start: UnixHour,
    num_hours: u32,
}

impl AnalysisWindow {
    /// 2017-04-12T00:00:00Z, the start of the paper's measurement window.
    pub const PAPER_START_SECS: u64 = 1_491_955_200;
    /// The paper's 143 analyzed hours.
    pub const PAPER_HOURS: u32 = 143;

    /// Create a window starting at `start` and covering `num_hours` hours.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidInterval`] if `num_hours == 0`.
    pub fn new(start: UnixHour, num_hours: u32) -> Result<Self, NetError> {
        if num_hours == 0 {
            return Err(NetError::InvalidInterval(
                "window must cover at least one hour".to_owned(),
            ));
        }
        Ok(AnalysisWindow { start, num_hours })
    }

    /// The paper's window: 143 hours starting April 12, 2017 (UTC).
    pub fn paper() -> Self {
        AnalysisWindow {
            start: UnixHour::from_unix_secs(Self::PAPER_START_SECS),
            num_hours: Self::PAPER_HOURS,
        }
    }

    /// A short window for tests and examples.
    pub fn short(num_hours: u32) -> Self {
        AnalysisWindow {
            start: UnixHour::from_unix_secs(Self::PAPER_START_SECS),
            num_hours: num_hours.max(1),
        }
    }

    /// First hour of the window.
    pub fn start(&self) -> UnixHour {
        self.start
    }

    /// Number of hourly intervals.
    pub fn num_hours(&self) -> u32 {
        self.num_hours
    }

    /// Number of (possibly partial) days covered.
    pub fn num_days(&self) -> u32 {
        self.num_hours.div_ceil(HOURS_PER_DAY)
    }

    /// The hour corresponding to 1-based interval index `interval`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidInterval`] if `interval` is 0 or beyond
    /// the window.
    pub fn hour_of_interval(&self, interval: u32) -> Result<UnixHour, NetError> {
        self.check_interval(interval)?;
        Ok(self.start.plus(u64::from(interval - 1)))
    }

    /// The 1-based interval index of `hour`, or `None` if outside the window.
    pub fn interval_of_hour(&self, hour: UnixHour) -> Option<u32> {
        if hour < self.start {
            return None;
        }
        let off = hour.get() - self.start.get();
        if off < u64::from(self.num_hours) {
            Some(off as u32 + 1)
        } else {
            None
        }
    }

    /// The 0-based day index (day 0 = first calendar day of the window) of a
    /// 1-based interval.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidInterval`] for out-of-window intervals.
    pub fn day_of_interval(&self, interval: u32) -> Result<u32, NetError> {
        self.check_interval(interval)?;
        Ok((interval - 1) / HOURS_PER_DAY)
    }

    /// Iterate over the window's hours in order.
    pub fn iter_hours(&self) -> impl Iterator<Item = UnixHour> + '_ {
        let start = self.start;
        (0..u64::from(self.num_hours)).map(move |i| start.plus(i))
    }

    /// Iterate over `(interval, hour)` pairs with 1-based interval indices.
    pub fn iter_intervals(&self) -> impl Iterator<Item = (u32, UnixHour)> + '_ {
        let start = self.start;
        (1..=self.num_hours).map(move |i| (i, start.plus(u64::from(i - 1))))
    }

    /// Number of hours that fall on day `day` (0-based); the trailing day
    /// may be partial.
    pub fn hours_in_day(&self, day: u32) -> u32 {
        let begin = day * HOURS_PER_DAY;
        if begin >= self.num_hours {
            0
        } else {
            (self.num_hours - begin).min(HOURS_PER_DAY)
        }
    }

    /// Whether day `day` has the paper's completeness bar (a full 24 hours
    /// of data — the paper dropped April 18, which had only 15).
    pub fn day_is_complete(&self, day: u32) -> bool {
        // The final day of the paper's window has 23 hours and was kept, so
        // the bar is >= 23 hours rather than a strict 24.
        self.hours_in_day(day) >= HOURS_PER_DAY - 1
    }

    fn check_interval(&self, interval: u32) -> Result<(), NetError> {
        if interval == 0 || interval > self.num_hours {
            return Err(NetError::InvalidInterval(format!(
                "interval {interval} outside 1..={}",
                self.num_hours
            )));
        }
        Ok(())
    }
}

impl Default for AnalysisWindow {
    fn default() -> Self {
        AnalysisWindow::paper()
    }
}

impl fmt::Display for AnalysisWindow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} +{}h", self.start, self.num_hours)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unix_hour_conversions() {
        let h = UnixHour::from_unix_secs(AnalysisWindow::PAPER_START_SECS + 1800);
        assert_eq!(h.as_unix_secs(), AnalysisWindow::PAPER_START_SECS);
        assert_eq!(h.next().get(), h.get() + 1);
        assert_eq!(h.plus(24).get(), h.get() + 24);
    }

    #[test]
    fn civil_dates_known_values() {
        // Unix epoch.
        assert_eq!(UnixHour::new(0).civil(), (1970, 1, 1, 0));
        // The paper's window start: 2017-04-12T00:00:00Z.
        let start = UnixHour::from_unix_secs(AnalysisWindow::PAPER_START_SECS);
        assert_eq!(start.civil(), (2017, 4, 12, 0));
        assert_eq!(start.label(), "2017-04-12 00:00Z");
        // The window's last hour (interval 143) starts 2017-04-17T22:00Z.
        assert_eq!(start.plus(142).civil(), (2017, 4, 17, 22));
        // Leap-day handling: 2016-02-29 = 1456704000s.
        assert_eq!(
            UnixHour::from_unix_secs(1_456_704_000).civil(),
            (2016, 2, 29, 0)
        );
        // Year boundary: 2017-01-01 = 1483228800s.
        assert_eq!(
            UnixHour::from_unix_secs(1_483_228_800).civil(),
            (2017, 1, 1, 0)
        );
        assert_eq!(
            UnixHour::from_unix_secs(1_483_228_800 - 3600).civil(),
            (2016, 12, 31, 23)
        );
    }

    #[test]
    fn paper_window_shape() {
        let w = AnalysisWindow::paper();
        assert_eq!(w.num_hours(), 143);
        assert_eq!(w.num_days(), 6);
        assert_eq!(w.start().as_unix_secs(), 1_491_955_200);
    }

    #[test]
    fn zero_hour_window_rejected() {
        assert!(AnalysisWindow::new(UnixHour::new(0), 0).is_err());
        assert!(AnalysisWindow::new(UnixHour::new(0), 1).is_ok());
    }

    #[test]
    fn interval_hour_roundtrip() {
        let w = AnalysisWindow::paper();
        for i in [1u32, 2, 24, 25, 100, 143] {
            let h = w.hour_of_interval(i).unwrap();
            assert_eq!(w.interval_of_hour(h), Some(i));
        }
        assert!(w.hour_of_interval(0).is_err());
        assert!(w.hour_of_interval(144).is_err());
        assert_eq!(w.interval_of_hour(w.start().plus(143)), None);
        assert_eq!(w.interval_of_hour(UnixHour::new(0)), None);
    }

    #[test]
    fn day_mapping() {
        let w = AnalysisWindow::paper();
        assert_eq!(w.day_of_interval(1).unwrap(), 0);
        assert_eq!(w.day_of_interval(24).unwrap(), 0);
        assert_eq!(w.day_of_interval(25).unwrap(), 1);
        assert_eq!(w.day_of_interval(143).unwrap(), 5);
    }

    #[test]
    fn hours_in_day_trailing_partial() {
        let w = AnalysisWindow::paper();
        for d in 0..5 {
            assert_eq!(w.hours_in_day(d), 24);
        }
        assert_eq!(w.hours_in_day(5), 23);
        assert_eq!(w.hours_in_day(6), 0);
    }

    #[test]
    fn completeness_rule_keeps_23h_day_drops_15h_day() {
        let w = AnalysisWindow::paper();
        assert!(w.day_is_complete(5)); // 23-hour April 17 kept
        let partial = AnalysisWindow::new(w.start(), 24 + 15).unwrap();
        assert!(partial.day_is_complete(0));
        assert!(!partial.day_is_complete(1)); // 15-hour April-18-like day dropped
    }

    #[test]
    fn iterators_agree() {
        let w = AnalysisWindow::short(30);
        let hours: Vec<_> = w.iter_hours().collect();
        let pairs: Vec<_> = w.iter_intervals().collect();
        assert_eq!(hours.len(), 30);
        assert_eq!(pairs.len(), 30);
        assert_eq!(pairs[0].0, 1);
        assert_eq!(pairs[0].1, hours[0]);
        assert_eq!(pairs[29].0, 30);
        assert_eq!(pairs[29].1, hours[29]);
    }

    #[test]
    fn window_display() {
        let w = AnalysisWindow::short(5);
        let s = w.to_string();
        assert!(s.contains("+5h"), "{s}");
    }
}
