//! IPv4 address arithmetic and CIDR prefixes.
//!
//! The telescope monitors a contiguous CIDR block of *dark* (routable but
//! unused) addresses; the device inventory and traffic generators need fast
//! containment checks, subnet iteration and uniform sampling within blocks.

use crate::NetError;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::net::Ipv4Addr;
use std::str::FromStr;

/// Convert an [`Ipv4Addr`] to its numeric (big-endian) value.
///
/// # Example
///
/// ```
/// use iotscope_net::addr::ip_to_u32;
/// use std::net::Ipv4Addr;
/// assert_eq!(ip_to_u32(Ipv4Addr::new(0, 0, 1, 0)), 256);
/// ```
#[inline]
pub fn ip_to_u32(ip: Ipv4Addr) -> u32 {
    u32::from(ip)
}

/// Convert a numeric value back to an [`Ipv4Addr`].
///
/// # Example
///
/// ```
/// use iotscope_net::addr::u32_to_ip;
/// use std::net::Ipv4Addr;
/// assert_eq!(u32_to_ip(256), Ipv4Addr::new(0, 0, 1, 0));
/// ```
#[inline]
pub fn u32_to_ip(v: u32) -> Ipv4Addr {
    Ipv4Addr::from(v)
}

/// An IPv4 CIDR prefix such as `44.0.0.0/8`.
///
/// The network address is stored normalized: host bits below the prefix
/// length are always zero. Construction validates both the prefix length and
/// normalization, so every `Ipv4Cidr` value is well-formed.
///
/// # Example
///
/// ```
/// # fn main() -> Result<(), iotscope_net::NetError> {
/// use iotscope_net::addr::Ipv4Cidr;
/// use std::net::Ipv4Addr;
///
/// let net: Ipv4Cidr = "192.0.2.0/24".parse()?;
/// assert!(net.contains(Ipv4Addr::new(192, 0, 2, 200)));
/// assert!(!net.contains(Ipv4Addr::new(192, 0, 3, 1)));
/// assert_eq!(net.num_addresses(), 256);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct Ipv4Cidr {
    network: u32,
    prefix_len: u8,
}

impl Ipv4Cidr {
    /// Creates a CIDR from a network address and prefix length.
    ///
    /// Host bits in `network` below `prefix_len` are masked off, so
    /// `Ipv4Cidr::new(10.1.2.3, 8)` normalizes to `10.0.0.0/8`.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPrefixLen`] if `prefix_len > 32`.
    pub fn new(network: Ipv4Addr, prefix_len: u8) -> Result<Self, NetError> {
        if prefix_len > 32 {
            return Err(NetError::InvalidPrefixLen(prefix_len));
        }
        let mask = prefix_mask(prefix_len);
        Ok(Ipv4Cidr {
            network: ip_to_u32(network) & mask,
            prefix_len,
        })
    }

    /// The normalized network address.
    pub fn network(&self) -> Ipv4Addr {
        u32_to_ip(self.network)
    }

    /// The prefix length in bits.
    pub fn prefix_len(&self) -> u8 {
        self.prefix_len
    }

    /// The netmask as an address, e.g. `255.255.255.0` for a `/24`.
    pub fn netmask(&self) -> Ipv4Addr {
        u32_to_ip(prefix_mask(self.prefix_len))
    }

    /// The last (broadcast) address in the block.
    pub fn broadcast(&self) -> Ipv4Addr {
        u32_to_ip(self.network | !prefix_mask(self.prefix_len))
    }

    /// Number of addresses covered by this prefix (2^(32 − prefix_len)).
    pub fn num_addresses(&self) -> u64 {
        1u64 << (32 - self.prefix_len)
    }

    /// Whether `ip` falls inside this prefix.
    #[inline]
    pub fn contains(&self, ip: Ipv4Addr) -> bool {
        ip_to_u32(ip) & prefix_mask(self.prefix_len) == self.network
    }

    /// Whether `other` is entirely contained in `self`.
    pub fn contains_cidr(&self, other: &Ipv4Cidr) -> bool {
        other.prefix_len >= self.prefix_len && self.contains(other.network())
    }

    /// The `index`-th address of the block (0 = network address).
    ///
    /// Indexing is useful for deterministic, collision-free address
    /// assignment inside a simulated block.
    ///
    /// # Panics
    ///
    /// Panics if `index >= self.num_addresses()`.
    pub fn addr_at(&self, index: u64) -> Ipv4Addr {
        assert!(
            index < self.num_addresses(),
            "index {index} out of range for {self}"
        );
        u32_to_ip(self.network.wrapping_add(index as u32))
    }

    /// The offset of `ip` within the block, or `None` if outside.
    pub fn index_of(&self, ip: Ipv4Addr) -> Option<u64> {
        if self.contains(ip) {
            Some(u64::from(ip_to_u32(ip) - self.network))
        } else {
            None
        }
    }

    /// Iterate over all addresses in the block, in order.
    ///
    /// Intended for small blocks (e.g. `/24`); a `/8` yields 16.7M items.
    pub fn iter(&self) -> Ipv4CidrIter {
        Ipv4CidrIter {
            next: Some(self.network),
            last: self.network | !prefix_mask(self.prefix_len),
        }
    }

    /// Split this prefix into subnets of the given (longer) prefix length.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::InvalidPrefixLen`] if `new_len` is shorter than
    /// the current prefix or exceeds 32.
    pub fn subnets(&self, new_len: u8) -> Result<Vec<Ipv4Cidr>, NetError> {
        if new_len < self.prefix_len || new_len > 32 {
            return Err(NetError::InvalidPrefixLen(new_len));
        }
        let count = 1u64 << (new_len - self.prefix_len);
        let step = 1u64 << (32 - new_len);
        let mut out = Vec::with_capacity(count as usize);
        for i in 0..count {
            out.push(Ipv4Cidr {
                network: self.network + (i * step) as u32,
                prefix_len: new_len,
            });
        }
        Ok(out)
    }
}

impl fmt::Display for Ipv4Cidr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.network(), self.prefix_len)
    }
}

impl FromStr for Ipv4Cidr {
    type Err = NetError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (addr, len) = s
            .split_once('/')
            .ok_or_else(|| NetError::ParseCidr(s.to_owned()))?;
        let addr: Ipv4Addr = addr
            .parse()
            .map_err(|_| NetError::ParseCidr(s.to_owned()))?;
        let len: u8 = len.parse().map_err(|_| NetError::ParseCidr(s.to_owned()))?;
        Ipv4Cidr::new(addr, len)
    }
}

/// Iterator over the addresses of an [`Ipv4Cidr`], produced by
/// [`Ipv4Cidr::iter`].
#[derive(Debug, Clone)]
pub struct Ipv4CidrIter {
    next: Option<u32>,
    last: u32,
}

impl Iterator for Ipv4CidrIter {
    type Item = Ipv4Addr;

    fn next(&mut self) -> Option<Ipv4Addr> {
        let cur = self.next?;
        self.next = if cur == self.last {
            None
        } else {
            Some(cur + 1)
        };
        Some(u32_to_ip(cur))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match self.next {
            None => (0, Some(0)),
            Some(n) => {
                let rem = (self.last - n) as usize + 1;
                (rem, Some(rem))
            }
        }
    }
}

impl ExactSizeIterator for Ipv4CidrIter {}

#[inline]
fn prefix_mask(len: u8) -> u32 {
    debug_assert!(len <= 32);
    if len == 0 {
        0
    } else {
        u32::MAX << (32 - len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn cidr_parse_display_roundtrip() {
        for s in ["44.0.0.0/8", "192.0.2.0/24", "0.0.0.0/0", "10.1.2.3/32"] {
            let c: Ipv4Cidr = s.parse().unwrap();
            assert_eq!(c.to_string(), s);
        }
    }

    #[test]
    fn cidr_normalizes_host_bits() {
        let c = Ipv4Cidr::new(Ipv4Addr::new(10, 99, 3, 200), 8).unwrap();
        assert_eq!(c.network(), Ipv4Addr::new(10, 0, 0, 0));
        assert_eq!(c.to_string(), "10.0.0.0/8");
    }

    #[test]
    fn cidr_rejects_long_prefix() {
        assert!(matches!(
            Ipv4Cidr::new(Ipv4Addr::new(1, 2, 3, 4), 33),
            Err(NetError::InvalidPrefixLen(33))
        ));
    }

    #[test]
    fn cidr_rejects_bad_syntax() {
        assert!("10.0.0.0".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0/ab".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0/8".parse::<Ipv4Cidr>().is_err());
        assert!("10.0.0.0/40".parse::<Ipv4Cidr>().is_err());
    }

    #[test]
    fn contains_boundaries() {
        let c: Ipv4Cidr = "192.0.2.0/24".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(192, 0, 2, 0)));
        assert!(c.contains(Ipv4Addr::new(192, 0, 2, 255)));
        assert!(!c.contains(Ipv4Addr::new(192, 0, 1, 255)));
        assert!(!c.contains(Ipv4Addr::new(192, 0, 3, 0)));
    }

    #[test]
    fn zero_prefix_contains_everything() {
        let c: Ipv4Cidr = "0.0.0.0/0".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(255, 255, 255, 255)));
        assert!(c.contains(Ipv4Addr::new(0, 0, 0, 0)));
        assert_eq!(c.num_addresses(), 1 << 32);
    }

    #[test]
    fn slash32_contains_only_itself() {
        let c: Ipv4Cidr = "10.1.2.3/32".parse().unwrap();
        assert!(c.contains(Ipv4Addr::new(10, 1, 2, 3)));
        assert!(!c.contains(Ipv4Addr::new(10, 1, 2, 4)));
        assert_eq!(c.num_addresses(), 1);
    }

    #[test]
    fn addr_at_and_index_of_are_inverse() {
        let c: Ipv4Cidr = "198.51.100.0/24".parse().unwrap();
        for i in [0u64, 1, 100, 255] {
            let ip = c.addr_at(i);
            assert_eq!(c.index_of(ip), Some(i));
        }
        assert_eq!(c.index_of(Ipv4Addr::new(198, 51, 101, 0)), None);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn addr_at_out_of_range_panics() {
        let c: Ipv4Cidr = "198.51.100.0/24".parse().unwrap();
        let _ = c.addr_at(256);
    }

    #[test]
    fn iter_yields_all_addresses_in_order() {
        let c: Ipv4Cidr = "203.0.113.248/29".parse().unwrap();
        let got: Vec<Ipv4Addr> = c.iter().collect();
        assert_eq!(got.len(), 8);
        assert_eq!(got[0], Ipv4Addr::new(203, 0, 113, 248));
        assert_eq!(got[7], Ipv4Addr::new(203, 0, 113, 255));
        assert_eq!(c.iter().len(), 8);
    }

    #[test]
    fn subnets_partition_parent() {
        let c: Ipv4Cidr = "10.0.0.0/8".parse().unwrap();
        let subs = c.subnets(10).unwrap();
        assert_eq!(subs.len(), 4);
        assert_eq!(subs[0].to_string(), "10.0.0.0/10");
        assert_eq!(subs[3].to_string(), "10.192.0.0/10");
        for s in &subs {
            assert!(c.contains_cidr(s));
        }
        assert!(c.subnets(4).is_err());
        assert!(c.subnets(33).is_err());
    }

    #[test]
    fn contains_cidr_is_reflexive_and_respects_length() {
        let a: Ipv4Cidr = "10.0.0.0/8".parse().unwrap();
        let b: Ipv4Cidr = "10.20.0.0/16".parse().unwrap();
        assert!(a.contains_cidr(&a));
        assert!(a.contains_cidr(&b));
        assert!(!b.contains_cidr(&a));
    }

    #[test]
    fn broadcast_and_netmask() {
        let c: Ipv4Cidr = "192.0.2.0/24".parse().unwrap();
        assert_eq!(c.broadcast(), Ipv4Addr::new(192, 0, 2, 255));
        assert_eq!(c.netmask(), Ipv4Addr::new(255, 255, 255, 0));
    }

    proptest! {
        #[test]
        fn prop_contains_matches_index_of(ip: u32, net: u32, len in 0u8..=32) {
            let c = Ipv4Cidr::new(u32_to_ip(net), len).unwrap();
            let ip = u32_to_ip(ip);
            prop_assert_eq!(c.contains(ip), c.index_of(ip).is_some());
        }

        #[test]
        fn prop_addr_at_roundtrip(net: u32, len in 8u8..=32, idx: u64) {
            let c = Ipv4Cidr::new(u32_to_ip(net), len).unwrap();
            let idx = idx % c.num_addresses();
            let ip = c.addr_at(idx);
            prop_assert!(c.contains(ip));
            prop_assert_eq!(c.index_of(ip), Some(idx));
        }

        #[test]
        fn prop_parse_display_roundtrip(net: u32, len in 0u8..=32) {
            let c = Ipv4Cidr::new(u32_to_ip(net), len).unwrap();
            let back: Ipv4Cidr = c.to_string().parse().unwrap();
            prop_assert_eq!(c, back);
        }
    }
}
